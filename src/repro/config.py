"""The consolidated prover configuration.

Before this existed, the same knobs -- circuit ``k``, limb/value/key
bit widths, and more recently worker counts and cache directories --
were loose keyword arguments scattered across ``ProverNode.__init__``,
keygen call sites, and every benchmark.  :class:`ProverConfig` is the
one validated home for all of them; the old signatures survive as thin
deprecation shims (see :mod:`repro.system.prover_node`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field as dc_field, replace
from typing import Any

from repro.algebra.field import Field, SCALAR_FIELD
from repro.ecc.curve import Curve, PALLAS


@dataclass(frozen=True)
class ProverConfig:
    """Everything a proving session needs beyond the data itself.

    Attributes
    ----------
    k:
        log2 of the circuit row count (and the database-commitment
        basis size).  Public parameters must support at least ``2^k``.
    limb_bits / value_bits / key_bits:
        The encoding geometry: range-check limb width, encoded value
        width, and join-key width.  The paper's full-scale design is
        ``8 / 64 / 48``; tests and benchmarks shrink all three.
    workers:
        Worker processes for the parallel backend (0 or 1 = serial).
    cache_dir:
        Artifact-cache directory; ``None`` picks the default
        (``$REPRO_CACHE_DIR`` or ``~/.cache/poneglyphdb``).
    use_cache:
        Master switch for the on-disk artifact cache.
    scale:
        Workload scale for benchmark/TPC-H sessions (lineitem rows);
        ignored when an explicit database is supplied.
    telemetry:
        Enable the :mod:`repro.telemetry` tracer for the session's
        lifetime.  Proved responses then carry a ``report`` dict with
        per-phase wall times and counters; off (the default) the
        instrumentation is a no-op.
    field / curve:
        The circuit field and commitment curve (the paper's choices by
        default).
    """

    k: int = 8
    limb_bits: int = 8
    value_bits: int = 64
    key_bits: int = 48
    workers: int = 0
    cache_dir: str | os.PathLike[str] | None = None
    use_cache: bool = True
    scale: int = 64
    telemetry: bool = False
    field: Field = dc_field(default=SCALAR_FIELD, repr=False)
    curve: Curve = dc_field(default=PALLAS, repr=False)

    def __post_init__(self) -> None:
        if not 2 <= self.k <= self.field.two_adicity:
            raise ValueError(
                f"k must be in [2, {self.field.two_adicity}], got {self.k}"
            )
        for name in ("limb_bits", "value_bits", "key_bits"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.value_bits < self.limb_bits:
            raise ValueError(
                f"value_bits ({self.value_bits}) must be at least "
                f"limb_bits ({self.limb_bits})"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.scale < 0:
            raise ValueError(f"scale must be >= 0, got {self.scale}")

    @property
    def n_rows(self) -> int:
        return 1 << self.k

    def with_options(self, **changes: Any) -> "ProverConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)
