"""The consolidated configuration objects.

Before :class:`ProverConfig` existed, the same knobs -- circuit ``k``,
limb/value/key bit widths, and more recently worker counts and cache
directories -- were loose keyword arguments scattered across
``ProverNode.__init__``, keygen call sites, and every benchmark.
:class:`ProverConfig` is the one validated home for all of them, and
since the legacy loose-kwarg shims were retired it is the *only*
construction path for a prover.

:class:`ServiceConfig` plays the same role for the async proving
service (:mod:`repro.service`): worker-pool sizing, queue depth, and
the load-shedding policy.

Validation failures raise :class:`repro.errors.ConfigError` (a
``ValueError`` subclass, so historical ``except ValueError`` handlers
keep working).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field as dc_field, replace
from typing import Any

from repro.algebra.field import Field, SCALAR_FIELD
from repro.ecc.curve import Curve, PALLAS
from repro.errors import ConfigError


@dataclass(frozen=True)
class ProverConfig:
    """Everything a proving session needs beyond the data itself.

    Attributes
    ----------
    k:
        log2 of the circuit row count (and the database-commitment
        basis size).  Public parameters must support at least ``2^k``.
    limb_bits / value_bits / key_bits:
        The encoding geometry: range-check limb width, encoded value
        width, and join-key width.  The paper's full-scale design is
        ``8 / 64 / 48``; tests and benchmarks shrink all three.
    workers:
        Worker processes for the parallel backend (0 or 1 = serial).
    cache_dir:
        Artifact-cache directory; ``None`` picks the default
        (``$REPRO_CACHE_DIR`` or ``~/.cache/poneglyphdb``).
    use_cache:
        Master switch for the on-disk artifact cache.
    scale:
        Workload scale for benchmark/TPC-H sessions (lineitem rows);
        ignored when an explicit database is supplied.
    telemetry:
        Enable the :mod:`repro.telemetry` tracer for the session's
        lifetime.  Proved responses then carry a ``report`` dict with
        per-phase wall times and counters; off (the default) the
        instrumentation is a no-op.
    field_backend:
        Field-arithmetic engine for the session
        (:mod:`repro.algebra.backend`): ``auto`` (the default) picks
        the fastest available, ``python`` / ``numpy`` / ``gmpy2`` force
        one.  All engines produce bit-identical proofs; this is purely
        a performance knob.
    field / curve:
        The circuit field and commitment curve (the paper's choices by
        default).
    """

    k: int = 8
    limb_bits: int = 8
    value_bits: int = 64
    key_bits: int = 48
    workers: int = 0
    cache_dir: str | os.PathLike[str] | None = None
    use_cache: bool = True
    scale: int = 64
    telemetry: bool = False
    field_backend: str = "auto"
    field: Field = dc_field(default=SCALAR_FIELD, repr=False)
    curve: Curve = dc_field(default=PALLAS, repr=False)

    def __post_init__(self) -> None:
        if not 2 <= self.k <= self.field.two_adicity:
            raise ConfigError(
                f"k must be in [2, {self.field.two_adicity}], got {self.k}"
            )
        for name in ("limb_bits", "value_bits", "key_bits"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if self.value_bits < self.limb_bits:
            raise ConfigError(
                f"value_bits ({self.value_bits}) must be at least "
                f"limb_bits ({self.limb_bits})"
            )
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        if self.scale < 0:
            raise ConfigError(f"scale must be >= 0, got {self.scale}")
        if self.field_backend not in ("auto", "python", "numpy", "gmpy2"):
            raise ConfigError(
                "field_backend must be one of 'auto', 'python', 'numpy', "
                f"'gmpy2', got {self.field_backend!r}"
            )

    @property
    def n_rows(self) -> int:
        return 1 << self.k

    def with_options(self, **changes: Any) -> "ProverConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs for the async proving service
    (:class:`repro.service.ProvingService`).

    Attributes
    ----------
    workers:
        Long-lived prover workers.  Each worker keeps its own warm
        proving-key cache (one entry per circuit fingerprint), so a
        worker pays keygen/unpickling once per distinct query shape
        instead of once per job.
    max_queue_depth:
        Hard bound on jobs waiting in the queue.  A ``HIGH``-priority
        submission is shed only at this depth.
    high_priority_reserve:
        Queue slots held back for ``HIGH``-priority jobs: ``NORMAL`` /
        ``LOW`` submissions are shed once the queue reaches
        ``max_queue_depth - high_priority_reserve``, keeping headroom
        for latency-sensitive traffic during overload.
    warm_start:
        Prebuild the fixed-base MSM tables for the session's parameter
        set when the service starts (registry -> disk -> build, the
        same fallback chain the kernel fast path uses), so the first
        job does not pay the table build.
    poll_interval:
        Worker queue-poll period in seconds; bounds shutdown latency.
    shutdown_timeout:
        Seconds :meth:`~repro.service.ProvingService.close` waits for
        in-flight jobs before giving up the join.
    event_log_path:
        When set, every job lifecycle event (submitted / started /
        finished / failed / shed / cancelled) is appended as one JSON
        line to this file as it happens; the most recent events are
        always also buffered in memory (``ProvingService.events()``).
    event_log_capacity:
        How many recent events the in-memory ring retains.
    error_ring_size:
        How many recent job failures ``health()`` reports.
    journal_path:
        When set, every job lifecycle transition is appended to this
        durable write-ahead journal, and opening a service on an
        existing journal replays it: interrupted jobs are re-enqueued
        and re-proved (byte-identical under a pinned ``rng_seed``; see
        :mod:`repro.service.journal` and DESIGN.md section 5i).
    journal_fsync:
        ``fsync`` the journal after every append.  Off by default: a
        plain flush survives process crashes (SIGKILL included); fsync
        additionally survives machine/OS crashes at a large latency
        cost per transition.
    max_retries:
        How many times a job that *dies with its worker* (or fails
        non-deterministically) is re-enqueued before it is failed for
        good.  Deterministic failures -- the typed
        :class:`repro.errors.ReproError` hierarchy, bad SQL -- are
        never retried.  0 (the default) disables retries.
    retry_backoff_seconds:
        Base of the exponential retry backoff: attempt ``n`` waits
        ``base * 2**(n-1)`` seconds (plus jitter, capped by
        ``retry_backoff_max``) before re-enqueueing.
    retry_backoff_max:
        Upper bound on a single retry's backoff delay.
    default_deadline_seconds:
        Deadline applied to jobs submitted without an explicit
        ``deadline_seconds``.  ``None`` (default) = no deadline.
        Deadlines are enforced cooperatively: an expired queued job
        fails at dequeue, and a running job is aborted at its next
        telemetry span boundary (so mid-prove enforcement needs the
        session's telemetry enabled).
    supervisor_interval:
        Period of the supervisor thread that respawns dead workers and
        releases due retries.
    tenant_quotas:
        Per-tenant admission bounds: tenant name -> max jobs that may
        be queued or running at once.  A submission over its tenant's
        quota is rejected with a typed
        :class:`~repro.errors.ServiceOverloaded` carrying the tenant
        and quota, telling that tenant to back off while others keep
        being admitted.
    default_tenant_quota:
        Quota applied to tenants absent from ``tenant_quotas`` (the
        anonymous ``None`` tenant is never quota-limited).  ``None``
        disables the default bound.
    """

    workers: int = 2
    max_queue_depth: int = 64
    high_priority_reserve: int = 8
    warm_start: bool = True
    poll_interval: float = 0.05
    shutdown_timeout: float = 30.0
    event_log_path: str | os.PathLike[str] | None = None
    event_log_capacity: int = 256
    error_ring_size: int = 32
    journal_path: str | os.PathLike[str] | None = None
    journal_fsync: bool = False
    max_retries: int = 0
    retry_backoff_seconds: float = 0.1
    retry_backoff_max: float = 5.0
    default_deadline_seconds: float | None = None
    supervisor_interval: float = 0.05
    tenant_quotas: Any = None
    default_tenant_quota: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigError(
                f"service workers must be a positive integer, got "
                f"{self.workers!r}"
            )
        if not isinstance(self.max_queue_depth, int) or self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be a positive integer, got "
                f"{self.max_queue_depth!r}"
            )
        if (
            not isinstance(self.high_priority_reserve, int)
            or not 0 <= self.high_priority_reserve < self.max_queue_depth
        ):
            raise ConfigError(
                f"high_priority_reserve must be in [0, max_queue_depth), got "
                f"{self.high_priority_reserve!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigError(
                f"poll_interval must be positive, got {self.poll_interval!r}"
            )
        if self.shutdown_timeout <= 0:
            raise ConfigError(
                f"shutdown_timeout must be positive, got "
                f"{self.shutdown_timeout!r}"
            )
        for name in ("event_log_capacity", "error_ring_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}"
            )
        for name in (
            "retry_backoff_seconds", "retry_backoff_max", "supervisor_interval"
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigError(
                    f"{name} must be positive, got {value!r}"
                )
        if self.default_deadline_seconds is not None and (
            not isinstance(self.default_deadline_seconds, (int, float))
            or self.default_deadline_seconds <= 0
        ):
            raise ConfigError(
                f"default_deadline_seconds must be positive or None, got "
                f"{self.default_deadline_seconds!r}"
            )
        if self.tenant_quotas is not None:
            try:
                normalized = dict(self.tenant_quotas)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"tenant_quotas must be a mapping of tenant -> quota, "
                    f"got {self.tenant_quotas!r}"
                ) from None
            for tenant, quota in normalized.items():
                if not isinstance(tenant, str) or not tenant:
                    raise ConfigError(
                        f"tenant names must be non-empty strings, got "
                        f"{tenant!r}"
                    )
                if not isinstance(quota, int) or quota < 1:
                    raise ConfigError(
                        f"quota for tenant {tenant!r} must be a positive "
                        f"integer, got {quota!r}"
                    )
            object.__setattr__(self, "tenant_quotas", normalized)
        if self.default_tenant_quota is not None and (
            not isinstance(self.default_tenant_quota, int)
            or self.default_tenant_quota < 1
        ):
            raise ConfigError(
                f"default_tenant_quota must be a positive integer or None, "
                f"got {self.default_tenant_quota!r}"
            )

    def quota_for(self, tenant: str | None) -> int | None:
        """The admission quota applying to ``tenant`` (``None`` =
        unbounded; the anonymous tenant is never bounded)."""
        if tenant is None:
            return None
        if self.tenant_quotas and tenant in self.tenant_quotas:
            return self.tenant_quotas[tenant]
        return self.default_tenant_quota

    def with_options(self, **changes: Any) -> "ServiceConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)
