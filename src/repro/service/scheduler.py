"""The prover farm: long-lived workers draining the job queue.

Each :class:`ProverWorker` is a daemon thread owning a
:meth:`~repro.system.prover_node.ProverNode.worker_clone` of the
session's prover.  The clone shares the heavyweight read-only state
(database, public parameters, published commitment and its secrets, the
on-disk artifact cache) but carries a private warm-key mapping, so a
worker pays key generation -- or even just the disk-cache unpickle --
once per :meth:`~repro.plonkish.constraint_system.ConstraintSystem.fingerprint`
and serves every later job of the same query shape from memory.  The
fixed-base MSM tables live in the process-wide registry
(:mod:`repro.ecc.fixed_base`) with its registry -> disk -> build
fallback, so all workers share one warm copy.

A job failure (malformed SQL, a prover bug, an injected crash) is
caught at the worker loop, recorded on the job as ``FAILED`` with the
error string, and the worker moves on -- a crash can never wedge the
queue or leave a client blocked in ``wait()``.

Live phase progress comes from the telemetry span stream: while a
worker runs a job it registers a span observer filtered to its own
thread, mirroring every ``prove.*`` span begin/end onto the job record
(the same spans that later form the response's phase report).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Optional

from repro import telemetry
from repro.algebra.field import deterministic_rng
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.prover_node import ProverNode

#: ``on_event(event, job)`` callback the service installs to observe
#: job lifecycle transitions (``"started"`` / ``"finished"`` /
#: ``"failed"``) from the worker threads.
JobEventHook = Callable[[str, Job], None]


class ProverWorker(threading.Thread):
    """One long-lived prover worker thread."""

    def __init__(self, name: str, queue: JobQueue, prover: "ProverNode",
                 poll_interval: float = 0.05,
                 on_event: Optional[JobEventHook] = None):
        super().__init__(name=name, daemon=True)
        self._queue = queue
        self._prover = prover
        self._poll = poll_interval
        self._on_event = on_event
        self._stop_event = threading.Event()
        self._current: Job | None = None
        #: Per-worker completion counters surfaced by ``stats()``.
        self.completed = 0
        self.failed = 0

    # -- lifecycle -------------------------------------------------------

    def request_stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:  # pragma: no branch - loop structure
        while not self._stop_event.is_set():
            job = self._queue.pop(timeout=self._poll)
            if job is None:
                if self._queue.closed:
                    break
                continue
            self._execute(job)

    # -- job execution ---------------------------------------------------

    def _execute(self, job: Job) -> None:
        self._current = job
        job.state = JobState.RUNNING
        job.worker = self.name
        job.started_at = time.time()
        telemetry.observe(
            "service.queue_wait_seconds", job.started_at - job.submitted_at
        )
        self._emit("started", job)
        observer = self._phase_observer(job)
        telemetry.add_span_observer(observer)
        try:
            seed_scope = (
                deterministic_rng(job.rng_seed)
                if job.rng_seed is not None
                else nullcontext()
            )
            # Every root span the job opens here -- on this thread or a
            # fork-pool worker -- carries the job's trace identity, so
            # write_trace can stitch one tree per job afterwards.
            with telemetry.job_scope(
                job_id=str(job.job_id), trace_id=job.trace_id
            ), seed_scope:
                job.response = self._prover.answer(job.sql)
            job.finish(JobState.DONE)
            self.completed += 1
            telemetry.incr("service.jobs_done")
            self._emit("finished", job)
        except BaseException as exc:  # a job must never kill the worker
            job.finish(JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            self.failed += 1
            telemetry.incr("service.jobs_failed")
            self._emit("failed", job)
        finally:
            telemetry.remove_span_observer(observer)
            job.open_spans.clear()
            self._current = None

    def _emit(self, event: str, job: Job) -> None:
        """Deliver a lifecycle event to the service hook; a broken hook
        is the service's bug, never the job's failure."""
        if self._on_event is None:
            return
        try:
            self._on_event(event, job)
        except Exception:
            telemetry.incr("service.event_hook_errors")

    def _phase_observer(self, job: Job):
        """A span observer mirroring this thread's spans onto ``job``
        (other threads' spans are ignored): the live span path for
        ``status()``, plus the ``prove*`` phase bookkeeping."""
        thread_id = threading.get_ident()

        def observe(span, event: str) -> None:
            if threading.get_ident() != thread_id:
                return
            name = getattr(span, "name", "")
            if event == "begin":
                job.open_spans.append(name)
            else:
                if job.open_spans and job.open_spans[-1] == name:
                    job.open_spans.pop()
            if not name.startswith("prove"):
                return
            if event == "begin":
                job.phase = name
            else:
                job.phases[name] = job.phases.get(name, 0.0) + span.duration
                if job.phase == name:
                    job.phase = None

        return observe
