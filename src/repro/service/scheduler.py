"""The prover farm: long-lived workers draining the job queue, and
the supervisor that keeps the farm at full strength.

Each :class:`ProverWorker` is a daemon thread owning a
:meth:`~repro.system.prover_node.ProverNode.worker_clone` of the
session's prover.  The clone shares the heavyweight read-only state
(database, public parameters, published commitment and its secrets, the
on-disk artifact cache) but carries a private warm-key mapping, so a
worker pays key generation -- or even just the disk-cache unpickle --
once per :meth:`~repro.plonkish.constraint_system.ConstraintSystem.fingerprint`
and serves every later job of the same query shape from memory.  The
fixed-base MSM tables live in the process-wide registry
(:mod:`repro.ecc.fixed_base`) with its registry -> disk -> build
fallback, so all workers share one warm copy.

Failure handling is layered:

- A job exception is caught at the worker loop and *classified*: the
  typed :class:`~repro.errors.ReproError` hierarchy (plus
  ``ValueError`` / ``TypeError``-shaped input errors) is deterministic
  -- the same SQL would fail the same way -- so the job goes straight
  to ``FAILED``.  Anything else (a transient resource error, an
  injected crash) is offered to the service's retry policy, which may
  re-enqueue the job with exponential backoff.
- :class:`WorkerKilled` (a ``BaseException``, so no job-level handler
  swallows it) takes down the whole worker thread with its job still
  ``RUNNING`` -- the fault-injection model of a thread dying mid-job.
  The :class:`Supervisor` detects the dead thread, hands the orphaned
  job to the retry policy, and respawns a replacement so the farm
  returns to full capacity.
- Deadlines are enforced cooperatively through the telemetry span
  observer the worker already installs for live phase tracking: every
  span begin/end on the job's thread checks the wall-clock budget and
  aborts the prove with a :class:`~repro.errors.DeadlineExceeded`
  failure when it is spent (an internal ``BaseException`` carries the
  abort through the observer dispatch, which only swallows
  ``Exception``).

Live phase progress comes from the same span stream: while a worker
runs a job it mirrors every ``prove.*`` span begin/end onto the job
record (the same spans that later form the response's phase report).
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, Optional

from repro import telemetry
from repro.algebra.field import deterministic_rng
from repro.errors import RecoveryMismatch, ReproError
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.prover_node import ProverNode

#: ``on_event(event, job)`` callback the service installs to observe
#: job lifecycle transitions (``"started"`` / ``"finished"`` /
#: ``"failed"``) from the worker threads.
JobEventHook = Callable[[str, Job], None]

#: ``retry(job, error) -> bool`` policy hook: True when the service
#: re-enqueued the job (the worker must then not finish it).
RetryHook = Callable[[Job, str], bool]


class WorkerKilled(BaseException):
    """Kills a worker thread mid-job (fault injection).

    Deliberately a ``BaseException``: the per-job crash containment
    catches ``Exception``-shaped failures, but a *worker death* must
    leave the job ``RUNNING`` and orphaned for the supervisor to
    recover -- the scenario the chaos suite drives.
    """


class _DeadlineAbort(BaseException):
    """Internal cooperative-abort signal raised by the deadline check
    inside the worker's span observer.  A ``BaseException`` so it
    passes through the tracer's observer dispatch (which contains
    ``Exception`` only) and unwinds the prove."""


def response_digest(response) -> str:
    """BLAKE2b hex digest of a response's proof wire bytes -- the
    byte-identity anchor the journal records and recovery re-checks.
    Falls back to ``repr`` for stubbed responses in tests."""
    wire = getattr(response, "wire_bytes", None)
    data = wire() if callable(wire) else repr(response).encode()
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def is_deterministic_failure(exc: BaseException) -> bool:
    """Whether retrying the same SQL could possibly succeed.

    The typed hierarchy is the classifier: every intentional
    :class:`~repro.errors.ReproError` (config, wire format, state,
    verification) is a property of the input, as are ``ValueError`` /
    ``TypeError`` parse-shaped errors.  Everything else -- resource
    exhaustion, injected crashes, genuine prover bugs -- is treated as
    transient and eligible for bounded retry.
    """
    return isinstance(exc, (ReproError, ValueError, TypeError, KeyError))


class ProverWorker(threading.Thread):
    """One long-lived prover worker thread."""

    def __init__(self, name: str, queue: JobQueue, prover: "ProverNode",
                 poll_interval: float = 0.05,
                 on_event: Optional[JobEventHook] = None,
                 retry: Optional[RetryHook] = None,
                 chaos=None):
        super().__init__(name=name, daemon=True)
        self._queue = queue
        self._prover = prover
        self._poll = poll_interval
        self._on_event = on_event
        self._retry = retry
        self._chaos = chaos
        self._stop_event = threading.Event()
        self._current: Job | None = None
        #: Per-worker completion counters surfaced by ``stats()``.
        self.completed = 0
        self.failed = 0

    # -- lifecycle -------------------------------------------------------

    def request_stop(self) -> None:
        self._stop_event.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop_event.is_set()

    def run(self) -> None:  # pragma: no branch - loop structure
        try:
            while not self._stop_event.is_set():
                job = self._queue.pop(timeout=self._poll)
                if job is None:
                    if self._queue.closed:
                        break
                    continue
                self._execute(job)
        except WorkerKilled:
            # The thread dies with its job still RUNNING in
            # self._current; the supervisor recovers both.
            telemetry.incr("service.workers_killed")

    # -- job execution ---------------------------------------------------

    def _execute(self, job: Job) -> None:
        if not job.claim(self.name):
            # Duplicated pop or a cancel that won the race: the job is
            # owned elsewhere (or terminal) and must not run here.
            telemetry.incr("service.duplicate_pops_skipped")
            return
        self._current = job
        telemetry.observe(
            "service.queue_wait_seconds", job.started_at - job.submitted_at
        )
        if job.deadline_passed(job.started_at):
            # Expired while queued: fail at dequeue, never prove.
            telemetry.incr("service.deadline_exceeded")
            job.finish(
                JobState.FAILED,
                error=(
                    f"DeadlineExceeded: {job.deadline_seconds}s deadline "
                    "passed while queued"
                ),
            )
            self.failed += 1
            telemetry.incr("service.jobs_failed")
            self._emit("failed", job)
            self._current = None
            return
        self._emit("started", job)
        observer = self._phase_observer(job)
        telemetry.add_span_observer(observer)
        died = False
        try:
            if self._chaos is not None:
                self._chaos.on_prove(job, self.name)
            seed_scope = (
                deterministic_rng(job.rng_seed)
                if job.rng_seed is not None
                else nullcontext()
            )
            # Every root span the job opens here -- on this thread or a
            # fork-pool worker -- carries the job's trace identity, so
            # write_trace can stitch one tree per job afterwards.
            with telemetry.job_scope(
                job_id=str(job.job_id), trace_id=job.trace_id
            ), seed_scope:
                response = self._prover.answer(job.sql)
            digest = response_digest(response)
            if (
                job.expected_digest is not None
                and job.rng_seed is not None
                and digest != job.expected_digest
            ):
                raise RecoveryMismatch(
                    f"replayed proof digest {digest} != journaled "
                    f"{job.expected_digest} for {job.job_id}"
                )
            job.response = response
            job.result_digest = digest
            if job.finish(JobState.DONE):
                self.completed += 1
                telemetry.incr("service.jobs_done")
                self._emit("finished", job)
        except WorkerKilled:
            died = True
            raise
        except _DeadlineAbort:
            telemetry.incr("service.deadline_exceeded")
            if job.finish(
                JobState.FAILED,
                error=(
                    f"DeadlineExceeded: aborted mid-prove after its "
                    f"{job.deadline_seconds}s deadline"
                ),
            ):
                self.failed += 1
                telemetry.incr("service.jobs_failed")
                self._emit("failed", job)
        except BaseException as exc:  # a job must never kill the worker
            error = f"{type(exc).__name__}: {exc}"
            if (
                not is_deterministic_failure(exc)
                and self._retry is not None
                and self._retry(job, error)
            ):
                pass  # re-enqueued; the job is not terminal
            elif job.finish(JobState.FAILED, error=error):
                self.failed += 1
                telemetry.incr("service.jobs_failed")
                self._emit("failed", job)
        finally:
            telemetry.remove_span_observer(observer)
            job.open_spans.clear()
            if not died:
                self._current = None

    def _emit(self, event: str, job: Job) -> None:
        """Deliver a lifecycle event to the service hook; a broken hook
        is the service's bug, never the job's failure."""
        if self._on_event is None:
            return
        try:
            self._on_event(event, job)
        except Exception:
            telemetry.incr("service.event_hook_errors")

    def _phase_observer(self, job: Job):
        """A span observer mirroring this thread's spans onto ``job``
        (other threads' spans are ignored): the live span path for
        ``status()``, the ``prove*`` phase bookkeeping, and the
        cooperative deadline check."""
        thread_id = threading.get_ident()
        deadline = job.deadline_at

        def observe(span, event: str) -> None:
            if threading.get_ident() != thread_id:
                return
            if deadline is not None and time.time() > deadline:
                raise _DeadlineAbort()
            name = getattr(span, "name", "")
            if event == "begin":
                job.open_spans.append(name)
            else:
                if job.open_spans and job.open_spans[-1] == name:
                    job.open_spans.pop()
            if not name.startswith("prove"):
                return
            if event == "begin":
                job.phase = name
            else:
                job.phases[name] = job.phases.get(name, 0.0) + span.duration
                if job.phase == name:
                    job.phase = None

        return observe


class Supervisor(threading.Thread):
    """The farm's watchdog thread.

    Calls the service-provided ``tick`` every ``interval`` seconds;
    the service's tick respawns dead workers (recovering their
    orphaned jobs through the retry policy) and releases retry-backoff
    jobs whose delay has elapsed.  A raising tick is counted
    (``service.supervisor_errors``) and retried next period rather
    than allowed to kill supervision.
    """

    def __init__(self, tick: Callable[[], None], interval: float,
                 name: str = "service-supervisor"):
        super().__init__(name=name, daemon=True)
        self._tick = tick
        self._interval = interval
        self._stop_event = threading.Event()

    def request_stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:  # pragma: no branch - loop structure
        while not self._stop_event.wait(self._interval):
            try:
                self._tick()
            except Exception:
                telemetry.incr("service.supervisor_errors")
