"""The async proving service facade.

:class:`ProvingService` turns a committed :class:`~repro.api.Session`
into a job-oriented server: clients ``submit()`` SQL and get an opaque
:class:`~repro.service.jobs.JobId` back immediately, poll ``status()``
for queue position and live prover phase, and collect the
:class:`~repro.system.prover_node.QueryResponse` with ``result()`` or
the blocking ``wait()``.  Verification stays on the session/verifier
side; ``batch_verify()`` is re-exported here for symmetry so a serving
deployment can amortize its check MSMs across a drained batch.

Fault tolerance (DESIGN.md section 5i) is built from four coupled
pieces:

- a **durable job journal** (:mod:`repro.service.journal`): with
  ``journal_path`` set, every lifecycle transition is appended to a
  checksummed write-ahead log, and :meth:`ProvingService.open` on an
  existing journal replays it -- interrupted (and completed-in-memory)
  jobs are re-enqueued and re-proved, byte-identical to the journaled
  result digest under a pinned ``rng_seed``;
- a **supervisor** that respawns dead worker threads (recovering their
  orphaned jobs) and releases retry-backoff jobs;
- **retry with exponential backoff + jitter** for jobs that die with a
  worker or fail non-deterministically (never for typed deterministic
  failures), bounded by ``max_retries``;
- **per-tenant admission quotas** on top of the priority lanes.

The service is a context manager; ``close()`` stops admissions,
cancels still-queued jobs (their waiters are released with a
``CANCELLED`` terminal state, never left hanging), and joins the
worker threads.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from typing import TYPE_CHECKING, Any, Sequence

from repro import telemetry
from repro.config import ServiceConfig
from repro.errors import (
    JobFailed,
    JobNotFound,
    JobTimeout,
    ServiceClosed,
    ServiceOverloaded,
    StateError,
)
from repro.service import journal as journal_mod
from repro.service.journal import JobJournal
from repro.service.jobs import (
    Job,
    JobId,
    JobState,
    JobStatus,
    Priority,
    advance_seq,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import ProverWorker, Supervisor
from repro.telemetry import promtext
from repro.telemetry.obs import ErrorRing, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Session
    from repro.proving.aggregate import AggProof
    from repro.system.prover_node import QueryResponse
    from repro.system.verifier_node import AggReport, BatchReport


class ProvingService:
    """A pool of long-lived prover workers behind a priority queue.

    Construct directly, via :meth:`repro.api.Session.serve`, or --
    when a durable journal is wanted -- via :meth:`open`.  The session
    must outlive the service; the service commits the database on
    construction if the session has not already.

    ``chaos`` is the deterministic fault-injection port
    (:mod:`repro.service.chaos`); leave it ``None`` outside tests.
    """

    def __init__(
        self,
        session: "Session",
        config: ServiceConfig | None = None,
        *,
        journal_path=None,
        chaos=None,
    ):
        self.config = config or ServiceConfig()
        self.session = session
        self._chaos = chaos
        if session.prover.commitment is None:
            session.commit()
        if self.config.warm_start:
            self._warm_start()
        self.queue = JobQueue(
            self.config.max_queue_depth,
            self.config.high_priority_reserve,
            chaos=chaos,
        )
        self._jobs: dict[JobId, Job] = {}
        #: Jobs already folded into a previous :meth:`rollup` epoch.
        self._rolled: set[JobId] = set()
        self._lock = threading.Lock()
        self._closed = False
        self.started_at = time.time()
        self.events_log = EventLog(
            path=self.config.event_log_path,
            capacity=self.config.event_log_capacity,
        )
        self.errors = ErrorRing(capacity=self.config.error_ring_size)
        #: Retry backlog: ``(due_monotonic, seq, job)`` released by the
        #: supervisor once each backoff elapses.
        self._retries: list[tuple[float, int, Job]] = []
        self._retry_lock = threading.Lock()
        self.workers_restarted = 0
        self.recovered_jobs = 0
        self.journal: JobJournal | None = None
        self.replay: journal_mod.JournalReplay | None = None
        path = journal_path if journal_path is not None else self.config.journal_path
        if path is not None:
            self._open_journal(path)
        self.workers = [
            self._spawn_worker(i) for i in range(self.config.workers)
        ]
        for worker in self.workers:
            worker.start()
        self.supervisor = Supervisor(
            self._supervise, self.config.supervisor_interval
        )
        self.supervisor.start()

    @classmethod
    def open(
        cls,
        session: "Session",
        config: ServiceConfig | None = None,
        *,
        journal_path=None,
        chaos=None,
    ) -> "ProvingService":
        """Open a (possibly crash-recovering) proving service.

        With ``journal_path`` (or ``config.journal_path``) naming an
        existing journal, the service replays it before taking new
        work: jobs the previous incarnation accepted but did not
        terminally fail or cancel are re-enqueued ahead of new
        submissions and re-proved -- byte-identical to any journaled
        result digest when their ``rng_seed`` was pinned.  A torn
        final record (the crash signature) is tolerated; earlier
        corruption raises :class:`~repro.errors.JournalCorrupt`.
        """
        return cls(session, config, journal_path=journal_path, chaos=chaos)

    def _spawn_worker(self, index: int) -> ProverWorker:
        return ProverWorker(
            name=f"prover-worker-{index}",
            queue=self.queue,
            prover=self.session.prover.worker_clone(key_cache={}),
            poll_interval=self.config.poll_interval,
            on_event=self._on_job_event,
            retry=self._maybe_retry,
            chaos=self._chaos,
        )

    def _warm_start(self) -> None:
        """Pre-build shared process-wide artifacts before taking jobs.

        Fixed-base MSM tables are keyed by the session's public
        parameters and shared by every worker, so building them once
        here (registry -> disk cache -> fresh build) keeps the first
        job's latency in line with steady state.
        """
        try:
            from repro.ecc import fixed_base, kernels

            if kernels.fastpath_enabled():
                fixed_base.tables_for_params(self.session.params)
        except Exception:  # warm start is best-effort, never fatal
            telemetry.incr("service.warm_start_errors")

    # -- journal + crash recovery ----------------------------------------

    def _open_journal(self, path) -> None:
        """Replay any existing journal at ``path``, restore its jobs,
        and start appending to it."""
        replay_started = time.time()
        replay = journal_mod.replay(path)
        self.replay = replay
        self.journal = JobJournal(path, fsync=self.config.journal_fsync)
        advance_seq(replay.max_seq)
        for jj in replay.terminal():
            job = self._restore_job(jj)
            job.finish(
                JobState.CANCELLED if jj.state == "cancelled"
                else JobState.FAILED,
                error=jj.error,
            )
            with self._lock:
                self._jobs[job.job_id] = job
        for jj in replay.pending():
            job = self._restore_job(jj)
            if jj.state == "done":
                job.expected_digest = jj.digest
            with self._lock:
                self._jobs[job.job_id] = job
            self.queue.push(job, force=True)
            self.recovered_jobs += 1
            telemetry.incr("service.recoveries")
            self.events_log.emit(
                "recovered",
                job_id=job.job_id,
                prior_state=jj.state,
                attempts=jj.attempts,
                expected_digest=jj.digest,
            )
        telemetry.observe(
            "service.journal_replay_seconds", time.time() - replay_started
        )
        if replay.records or replay.torn_tail_bytes:
            self.events_log.emit(
                "journal_replayed",
                records=replay.records,
                torn_tail_bytes=replay.torn_tail_bytes,
                recovered=self.recovered_jobs,
                terminal=len(replay.terminal()),
            )

    def _restore_job(self, jj: journal_mod.JournaledJob) -> Job:
        """A live job rebuilt from its journaled final state.

        Deadlines restart from recovery time: a crash must not turn
        every queued deadline job into an instant failure.
        """
        job = Job(
            jj.sql,
            priority=Priority(jj.priority),
            rng_seed=jj.rng_seed,
            tenant=jj.tenant,
            deadline_seconds=jj.deadline_seconds,
            max_retries=jj.max_retries,
            job_id=JobId(jj.job_id),
            seq=jj.seq,
        )
        job.attempts = jj.attempts
        job.recovered = True
        return job

    def _journal_append(self, rec: str, job: Job, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(
                rec, str(job.job_id), ts=round(time.time(), 6), **fields
            )

    # -- client surface --------------------------------------------------

    def submit(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
        tenant: str | None = None,
        deadline_seconds: float | None = None,
        max_retries: int | None = None,
    ) -> JobId:
        """Enqueue ``sql`` for proving and return its job handle.

        Raises :class:`~repro.errors.ServiceOverloaded` when the
        priority lane's admission bound is reached -- or when
        ``tenant`` is at its configured quota of queued + running jobs
        (the exception then carries ``tenant`` and ``quota``) -- and
        :class:`~repro.errors.ServiceClosed` after :meth:`close`.
        ``rng_seed`` pins the proof's blinding randomness (see
        :func:`repro.algebra.field.deterministic_rng`) so a submitted
        job reproduces the synchronous path byte for byte; leave it
        ``None`` for cryptographically fresh blinds.  ``rng_seed`` is
        also what makes crash recovery *exact*: a journal-replayed job
        must reproduce the recorded proof digest.

        ``deadline_seconds`` bounds the job's total wall clock from
        submission (cooperatively enforced; requires telemetry for
        mid-prove aborts), and ``max_retries`` overrides the service
        default for this job.
        """
        if self._closed:
            raise ServiceClosed("proving service is shut down")
        if deadline_seconds is None:
            deadline_seconds = self.config.default_deadline_seconds
        job = Job(
            sql,
            priority=priority,
            rng_seed=rng_seed,
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            max_retries=(
                max_retries if max_retries is not None
                else self.config.max_retries
            ),
        )
        quota = self.config.quota_for(tenant)
        with self._lock:
            if quota is not None:
                active = sum(
                    1
                    for other in self._jobs.values()
                    if other.tenant == tenant and not other.state.finished
                )
                if active >= quota:
                    telemetry.incr("service.tenant_rejections")
                    self.events_log.emit(
                        "tenant_rejected",
                        job_id=job.job_id,
                        tenant=tenant,
                        quota=quota,
                        active=active,
                    )
                    raise ServiceOverloaded(
                        f"tenant {tenant!r} has {active} active jobs at its "
                        f"quota of {quota}; back off and retry later",
                        queue_depth=len(self.queue),
                        tenant=tenant,
                        quota=quota,
                    )
            self._jobs[job.job_id] = job
        try:
            self.queue.push(job)
        except Exception as exc:
            with self._lock:
                self._jobs.pop(job.job_id, None)
            self.events_log.emit(
                "shed",
                job_id=job.job_id,
                priority=job.priority.name,
                queue_depth=len(self.queue),
                reason=f"{type(exc).__name__}: {exc}",
            )
            raise
        self._journal_append(
            "submitted",
            job,
            sql=job.sql,
            priority=int(job.priority),
            rng_seed=job.rng_seed,
            tenant=job.tenant,
            deadline_seconds=job.deadline_seconds,
            max_retries=job.max_retries,
            seq=job.seq,
        )
        self.events_log.emit(
            "submitted",
            job_id=job.job_id,
            trace_id=job.trace_id,
            priority=job.priority.name,
            tenant=job.tenant,
            queue_depth=len(self.queue),
        )
        return job.job_id

    def cancel(self, job_id: JobId) -> None:
        """Cancel a still-queued job.

        The job is withdrawn from the queue, finished as ``CANCELLED``
        (releasing any :meth:`wait` callers, whose :meth:`result` then
        raises :class:`~repro.errors.JobFailed`), and the cancellation
        is journaled.  Raises :class:`~repro.errors.StateError` when
        the job is already running or finished -- a running prove
        cannot be revoked -- and :class:`~repro.errors.JobNotFound`
        for an unknown id.
        """
        job = self._get(job_id)
        if not job.mark_cancelled_if_queued():
            raise StateError(
                f"{job_id} is {job.state.value}; only queued jobs can be "
                "cancelled"
            )
        self.queue.remove(job)
        with self._retry_lock:
            self._retries = [
                entry for entry in self._retries if entry[2] is not job
            ]
            heapq.heapify(self._retries)
        job.finish(JobState.CANCELLED, error="cancelled by client")
        telemetry.incr("service.jobs_cancelled")
        self._journal_append("cancelled", job, error="cancelled by client")
        self.events_log.emit(
            "cancelled", job_id=job.job_id, trace_id=job.trace_id
        )

    def _on_job_event(self, event: str, job: Job) -> None:
        """Worker-thread hook: one call per job lifecycle transition
        (``started`` / ``finished`` / ``failed``)."""
        if event == "started":
            self._journal_append(
                "running", job, worker=job.worker, attempt=job.attempts
            )
            self.events_log.emit(
                "started",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                attempt=job.attempts,
                queue_wait_seconds=round(
                    (job.started_at or 0.0) - job.submitted_at, 6
                ),
            )
            return
        run_seconds = 0.0
        if job.finished_at is not None and job.started_at is not None:
            run_seconds = job.finished_at - job.started_at
        if event == "finished":
            telemetry.observe("service.prove_seconds", run_seconds)
            self._journal_append("done", job, digest=job.result_digest)
            self.events_log.emit(
                "finished",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                run_seconds=round(run_seconds, 6),
                digest=job.result_digest,
            )
        elif event == "failed":
            self.errors.record(
                job.error or "unknown error",
                job_id=job.job_id,
                worker=job.worker or "",
            )
            self._journal_append("failed", job, error=job.error)
            self.events_log.emit(
                "failed",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                error=job.error,
                run_seconds=round(run_seconds, 6),
            )

    # -- retry + supervision ---------------------------------------------

    def _maybe_retry(self, job: Job, error: str) -> bool:
        """The retry policy: re-enqueue ``job`` after exponential
        backoff with deterministic jitter, bounded by its
        ``max_retries``.  Returns False (caller fails the job) when the
        budget is spent or the service is closing."""
        if self._closed or job.attempts >= job.max_retries:
            return False
        if not job.requeue():
            return False
        job.attempts += 1
        base = self.config.retry_backoff_seconds * (2 ** (job.attempts - 1))
        # Deterministic jitter (seeded by the job's identity and
        # attempt) keeps chaos runs reproducible while still spreading
        # synchronized retry herds in production.
        jitter = 1.0 + 0.25 * random.Random(
            (job.seq << 8) | job.attempts
        ).random()
        backoff = min(base * jitter, self.config.retry_backoff_max)
        telemetry.incr("service.jobs_retried")
        telemetry.observe("service.retry_backoff_seconds", backoff)
        self._journal_append(
            "retry",
            job,
            attempt=job.attempts,
            error=error,
            backoff_seconds=round(backoff, 6),
        )
        self.events_log.emit(
            "retry",
            job_id=job.job_id,
            attempt=job.attempts,
            max_retries=job.max_retries,
            backoff_seconds=round(backoff, 6),
            error=error,
        )
        with self._retry_lock:
            heapq.heappush(
                self._retries, (time.monotonic() + backoff, job.seq, job)
            )
        return True

    def _supervise(self) -> None:
        """One supervisor tick: respawn dead workers (recovering their
        orphaned jobs) and release retries whose backoff elapsed."""
        if self._closed:
            return
        for i, worker in enumerate(self.workers):
            if worker.is_alive() or worker.stop_requested or not worker.ident:
                continue
            orphan = worker._current
            if orphan is not None and not orphan.done.is_set():
                error = f"worker {worker.name} died mid-job"
                if not self._maybe_retry(orphan, error):
                    if orphan.finish(JobState.FAILED, error=error):
                        telemetry.incr("service.jobs_failed")
                        self._on_job_event("failed", orphan)
            replacement = self._spawn_worker(i)
            self.workers[i] = replacement
            replacement.start()
            self.workers_restarted += 1
            telemetry.incr("service.workers_restarted")
            self.events_log.emit(
                "worker_restarted",
                worker=worker.name,
                orphaned_job=(
                    str(orphan.job_id) if orphan is not None else None
                ),
            )
        now = time.monotonic()
        due: list[Job] = []
        with self._retry_lock:
            while self._retries and self._retries[0][0] <= now:
                due.append(heapq.heappop(self._retries)[2])
        for job in due:
            try:
                self.queue.push(job, force=True)
            except ServiceClosed:
                job.finish(
                    JobState.CANCELLED, error="cancelled at service shutdown"
                )

    def status(self, job_id: JobId) -> JobStatus:
        """A point-in-time snapshot of the job's state, queue position,
        and live prover phase."""
        job = self._get(job_id)
        position = (
            self.queue.position(job) if job.state == JobState.QUEUED else None
        )
        return job.snapshot(queue_position=position)

    def result(self, job_id: JobId) -> "QueryResponse":
        """The finished job's response.

        Raises :class:`~repro.errors.JobFailed` for failed or
        cancelled jobs and :class:`~repro.errors.StateError` when the
        job has not reached a terminal state yet (use :meth:`wait` to
        block).
        """
        job = self._get(job_id)
        if job.state == JobState.DONE:
            assert job.response is not None
            return job.response
        if job.state == JobState.FAILED:
            raise JobFailed(job_id, job.error or "unknown error")
        if job.state == JobState.CANCELLED:
            raise JobFailed(job_id, job.error or "cancelled")
        raise StateError(
            f"{job_id} is {job.state.value}; wait() for it to finish"
        )

    def wait(self, job_id: JobId, timeout: float | None = None) -> "QueryResponse":
        """Block until the job finishes, then return :meth:`result`.

        Raises :class:`~repro.errors.JobTimeout` (a ``TimeoutError``)
        if ``timeout`` seconds elapse first (the job keeps running;
        poll or ``wait`` again).
        """
        job = self._get(job_id)
        if not job.done.wait(timeout=timeout):
            raise JobTimeout(
                job_id, f"{job_id} still {job.state.value} after {timeout}s"
            )
        return self.result(job_id)

    def batch_verify(self, responses: Sequence["QueryResponse"]) -> "BatchReport":
        """Verify many responses with one folded accumulator check
        (delegates to the session's verifier)."""
        return self.session.verifier().batch_verify(responses)

    # -- aggregation -----------------------------------------------------

    def submit_aggregate(
        self,
        sqls: Sequence[str],
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
    ) -> list[JobId]:
        """Fan a batch of queries out to the prover farm for later
        :meth:`rollup` into one aggregated claim.

        Each query becomes an independent job (they prove in parallel
        across the workers); when ``rng_seed`` is given, job ``i`` pins
        its blinds to ``rng_seed + i`` so the whole batch reproduces
        byte for byte."""
        if not sqls:
            raise ValueError("cannot submit an empty aggregate batch")
        return [
            self.submit(
                sql,
                priority=priority,
                rng_seed=None if rng_seed is None else rng_seed + i,
            )
            for i, sql in enumerate(sqls)
        ]

    def rollup(
        self,
        job_ids: Sequence[JobId] | None = None,
        timeout: float | None = None,
    ) -> "AggProof":
        """Fold finished jobs into one transportable aggregated claim.

        With ``job_ids``, waits for exactly those jobs (``timeout`` per
        :meth:`wait`) and folds them in the given order.  Without, this
        is the *epoch* hook: every completed job not folded by a
        previous rollup is swept in submission order, so calling
        ``rollup()`` at an interval partitions the service's traffic
        into disjoint aggregated epochs.  Raises
        :class:`~repro.errors.StateError` when there is nothing to roll
        up, and :class:`~repro.errors.JobFailed` if a requested job
        failed."""
        from repro.proving.aggregate import aggregate

        if job_ids is None:
            with self._lock:
                candidates = sorted(
                    (
                        job
                        for job in self._jobs.values()
                        if job.state == JobState.DONE
                        and job.job_id not in self._rolled
                    ),
                    key=lambda job: job.seq,
                )
            job_ids = [job.job_id for job in candidates]
            if not job_ids:
                raise StateError("no completed jobs to roll up")
        elif not job_ids:
            raise StateError("cannot roll up an empty job list")
        responses = [self.wait(job_id, timeout=timeout) for job_id in job_ids]
        agg = aggregate(responses, self.session.params)
        with self._lock:
            self._rolled.update(job_ids)
        telemetry.incr("service.rollups")
        return agg

    def verify_aggregate(self, agg: "AggProof | bytes") -> "AggReport":
        """Check an aggregated claim with one accumulator finalize
        (delegates to the session's verifier)."""
        return self.session.verifier().verify_aggregate(agg)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service counters: queue depth, shed count, per-state job
        totals, per-tenant activity, and per-worker completion
        counts."""
        with self._lock:
            states: dict[str, int] = {}
            tenants: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
                if job.tenant is not None and not job.state.finished:
                    tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
        with self._retry_lock:
            retries_pending = len(self._retries)
        return {
            "queue_depth": len(self.queue),
            "shed_count": self.queue.shed_count,
            "jobs": states,
            "tenants": tenants,
            "retries_pending": retries_pending,
            "workers_restarted": self.workers_restarted,
            "recovered_jobs": self.recovered_jobs,
            "workers": {
                worker.name: {
                    "completed": worker.completed,
                    "failed": worker.failed,
                }
                for worker in self.workers
            },
        }

    def health(self) -> dict[str, Any]:
        """An operational snapshot for liveness probes and dashboards.

        Built from the service's own records (worker threads, queue,
        job table, error ring), so it is meaningful even with telemetry
        disabled.  Shape::

            {
              "healthy": bool,            # every worker thread alive
              "closed": bool,
              "uptime_seconds": float,
              "workers": {name: {"alive", "current_job", "completed",
                                 "failed"}},
              "workers_restarted": int,
              "supervisor_alive": bool,
              "queue": {"depth", "depths": {lane: n}, "max_depth",
                        "shed_count"},
              "jobs": {state: count},
              "retries_pending": int,
              "journal": {"path", "active", "appended",
                          "records_replayed", "torn_tail_bytes",
                          "recovered_jobs"} | None,
              "keygen": {"requests", "warm_hits", "warm_hit_ratio"},
              "last_errors": [...recent failures, oldest first...],
            }
        """
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        workers = {}
        for worker in self.workers:
            current = worker._current
            workers[worker.name] = {
                "alive": worker.is_alive(),
                "current_job": str(current.job_id) if current else None,
                "completed": worker.completed,
                "failed": worker.failed,
            }
        with self._retry_lock:
            retries_pending = len(self._retries)
        journal_info = None
        if self.journal is not None:
            replay = self.replay
            journal_info = {
                "path": str(self.journal.path),
                "active": self.journal.active,
                "appended": self.journal.appended,
                "records_replayed": replay.records if replay else 0,
                "torn_tail_bytes": replay.torn_tail_bytes if replay else 0,
                "recovered_jobs": self.recovered_jobs,
            }
        counters = telemetry.metrics_registry().counters_snapshot()
        requests = int(counters.get("keygen.requests", 0))
        warm_hits = int(counters.get("keygen.warm_hits", 0))
        return {
            "healthy": (not self._closed)
            and all(info["alive"] for info in workers.values()),
            "closed": self._closed,
            "uptime_seconds": time.time() - self.started_at,
            "workers": workers,
            "workers_restarted": self.workers_restarted,
            "supervisor_alive": self.supervisor.is_alive(),
            "queue": {
                "depth": len(self.queue),
                "depths": self.queue.depths(),
                "max_depth": self.queue.max_depth,
                "shed_count": self.queue.shed_count,
            },
            "jobs": states,
            "retries_pending": retries_pending,
            "journal": journal_info,
            "keygen": {
                "requests": requests,
                "warm_hits": warm_hits,
                "warm_hit_ratio": (
                    warm_hits / requests if requests else 0.0
                ),
            },
            "last_errors": self.errors.snapshot(),
        }

    def metrics_text(self) -> str:
        """The ambient metrics registry in Prometheus text exposition
        format, with the service's live gauges refreshed first (see
        :mod:`repro.telemetry.promtext`)."""
        registry = telemetry.metrics_registry()
        registry.gauge("service.queue_depth", len(self.queue))
        for lane, depth in self.queue.depths().items():
            registry.gauge(f"service.queue_depth.{lane.lower()}", depth)
        registry.gauge(
            "service.workers_alive",
            sum(1 for worker in self.workers if worker.is_alive()),
        )
        registry.gauge("service.uptime_seconds", time.time() - self.started_at)
        return promtext.render_registry(registry)

    def events(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent job lifecycle events, oldest first (the
        in-memory ring; see ``config.event_log_path`` for the on-disk
        stream)."""
        return self.events_log.tail(n)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admissions, cancel queued jobs, and join the workers.

        Running jobs are allowed to finish (bounded by
        ``config.shutdown_timeout`` per worker join); queued and
        retry-pending jobs are finished as ``CANCELLED`` so every
        waiter is released.
        """
        if self._closed:
            return
        self._closed = True
        self.supervisor.request_stop()
        with self._retry_lock:
            pending_retries = [job for _, _, job in self._retries]
            self._retries.clear()
        for job in self.queue.close() + pending_retries:
            if job.finish(
                JobState.CANCELLED, error="cancelled at service shutdown"
            ):
                telemetry.incr("service.jobs_cancelled")
                self._journal_append(
                    "cancelled", job, error="cancelled at service shutdown"
                )
                self.events_log.emit(
                    "cancelled", job_id=job.job_id, trace_id=job.trace_id
                )
        for worker in self.workers:
            worker.request_stop()
        for worker in self.workers:
            worker.join(timeout=self.config.shutdown_timeout)
        self.supervisor.join(timeout=self.config.shutdown_timeout)
        self.events_log.emit("closed", uptime_seconds=round(
            time.time() - self.started_at, 6
        ))
        self.events_log.close()
        if self.journal is not None:
            self.journal.close()

    def abort(self) -> None:
        """Hard-stop the service *without* the graceful drain -- the
        closest an in-process API can come to a crash.

        Queued jobs are left un-cancelled (exactly as a killed process
        would leave them) and nothing further is journaled, so a
        subsequent :meth:`open` on the same journal exercises real
        recovery.  A test/chaos aid; production code wants
        :meth:`close`.
        """
        if self._closed:
            return
        self._closed = True
        self.supervisor.request_stop()
        for worker in self.workers:
            worker.request_stop()
        self.queue.close()
        if self.journal is not None:
            self.journal.close()
        self.events_log.close()

    def __enter__(self) -> "ProvingService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _get(self, job_id: JobId) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(job_id)
        return job
