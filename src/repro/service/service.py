"""The async proving service facade.

:class:`ProvingService` turns a committed :class:`~repro.api.Session`
into a job-oriented server: clients ``submit()`` SQL and get an opaque
:class:`~repro.service.jobs.JobId` back immediately, poll ``status()``
for queue position and live prover phase, and collect the
:class:`~repro.system.prover_node.QueryResponse` with ``result()`` or
the blocking ``wait()``.  Verification stays on the session/verifier
side; ``batch_verify()`` is re-exported here for symmetry so a serving
deployment can amortize its check MSMs across a drained batch.

The service is a context manager; ``close()`` stops admissions,
cancels still-queued jobs (their waiters are released with a
``CANCELLED`` terminal state, never left hanging), and joins the
worker threads.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Sequence

from repro import telemetry
from repro.config import ServiceConfig
from repro.errors import JobFailed, JobNotFound, ServiceClosed, StateError
from repro.service.jobs import Job, JobId, JobState, JobStatus, Priority
from repro.service.queue import JobQueue
from repro.service.scheduler import ProverWorker
from repro.telemetry import promtext
from repro.telemetry.obs import ErrorRing, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Session
    from repro.proving.aggregate import AggProof
    from repro.system.prover_node import QueryResponse
    from repro.system.verifier_node import AggReport, BatchReport


class ProvingService:
    """A pool of long-lived prover workers behind a priority queue.

    Construct directly or via :meth:`repro.api.Session.serve`.  The
    session must outlive the service; the service commits the database
    on construction if the session has not already.
    """

    def __init__(self, session: "Session", config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.session = session
        if session.prover.commitment is None:
            session.commit()
        if self.config.warm_start:
            self._warm_start()
        self.queue = JobQueue(
            self.config.max_queue_depth, self.config.high_priority_reserve
        )
        self._jobs: dict[JobId, Job] = {}
        #: Jobs already folded into a previous :meth:`rollup` epoch.
        self._rolled: set[JobId] = set()
        self._lock = threading.Lock()
        self._closed = False
        self.started_at = time.time()
        self.events_log = EventLog(
            path=self.config.event_log_path,
            capacity=self.config.event_log_capacity,
        )
        self.errors = ErrorRing(capacity=self.config.error_ring_size)
        self.workers = [
            ProverWorker(
                name=f"prover-worker-{i}",
                queue=self.queue,
                prover=session.prover.worker_clone(key_cache={}),
                poll_interval=self.config.poll_interval,
                on_event=self._on_job_event,
            )
            for i in range(self.config.workers)
        ]
        for worker in self.workers:
            worker.start()

    def _warm_start(self) -> None:
        """Pre-build shared process-wide artifacts before taking jobs.

        Fixed-base MSM tables are keyed by the session's public
        parameters and shared by every worker, so building them once
        here (registry -> disk cache -> fresh build) keeps the first
        job's latency in line with steady state.
        """
        try:
            from repro.ecc import fixed_base, kernels

            if kernels.fastpath_enabled():
                fixed_base.tables_for_params(self.session.params)
        except Exception:  # warm start is best-effort, never fatal
            telemetry.incr("service.warm_start_errors")

    # -- client surface --------------------------------------------------

    def submit(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
    ) -> JobId:
        """Enqueue ``sql`` for proving and return its job handle.

        Raises :class:`~repro.errors.ServiceOverloaded` when the
        priority lane's admission bound is reached and
        :class:`~repro.errors.ServiceClosed` after :meth:`close`.
        ``rng_seed`` pins the proof's blinding randomness (see
        :func:`repro.algebra.field.deterministic_rng`) so a submitted
        job reproduces the synchronous path byte for byte; leave it
        ``None`` for cryptographically fresh blinds.
        """
        if self._closed:
            raise ServiceClosed("proving service is shut down")
        job = Job(sql, priority=priority, rng_seed=rng_seed)
        with self._lock:
            self._jobs[job.job_id] = job
        try:
            self.queue.push(job)
        except Exception as exc:
            with self._lock:
                self._jobs.pop(job.job_id, None)
            self.events_log.emit(
                "shed",
                job_id=job.job_id,
                priority=job.priority.name,
                queue_depth=len(self.queue),
                reason=f"{type(exc).__name__}: {exc}",
            )
            raise
        self.events_log.emit(
            "submitted",
            job_id=job.job_id,
            trace_id=job.trace_id,
            priority=job.priority.name,
            queue_depth=len(self.queue),
        )
        return job.job_id

    def _on_job_event(self, event: str, job: Job) -> None:
        """Worker-thread hook: one call per job lifecycle transition
        (``started`` / ``finished`` / ``failed``)."""
        if event == "started":
            self.events_log.emit(
                "started",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                queue_wait_seconds=round(
                    (job.started_at or 0.0) - job.submitted_at, 6
                ),
            )
            return
        run_seconds = 0.0
        if job.finished_at is not None and job.started_at is not None:
            run_seconds = job.finished_at - job.started_at
        if event == "finished":
            telemetry.observe("service.prove_seconds", run_seconds)
            self.events_log.emit(
                "finished",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                run_seconds=round(run_seconds, 6),
            )
        elif event == "failed":
            self.errors.record(
                job.error or "unknown error",
                job_id=job.job_id,
                worker=job.worker or "",
            )
            self.events_log.emit(
                "failed",
                job_id=job.job_id,
                trace_id=job.trace_id,
                worker=job.worker,
                error=job.error,
                run_seconds=round(run_seconds, 6),
            )

    def status(self, job_id: JobId) -> JobStatus:
        """A point-in-time snapshot of the job's state, queue position,
        and live prover phase."""
        job = self._get(job_id)
        position = (
            self.queue.position(job) if job.state == JobState.QUEUED else None
        )
        return job.snapshot(queue_position=position)

    def result(self, job_id: JobId) -> "QueryResponse":
        """The finished job's response.

        Raises :class:`~repro.errors.JobFailed` for failed jobs and
        :class:`~repro.errors.StateError` when the job has not reached
        a terminal state yet (use :meth:`wait` to block).
        """
        job = self._get(job_id)
        if job.state == JobState.DONE:
            assert job.response is not None
            return job.response
        if job.state == JobState.FAILED:
            raise JobFailed(job_id, job.error or "unknown error")
        if job.state == JobState.CANCELLED:
            raise JobFailed(job_id, "cancelled at service shutdown")
        raise StateError(
            f"{job_id} is {job.state.value}; wait() for it to finish"
        )

    def wait(self, job_id: JobId, timeout: float | None = None) -> "QueryResponse":
        """Block until the job finishes, then return :meth:`result`.

        Raises :class:`TimeoutError` if ``timeout`` seconds elapse
        first (the job keeps running; poll or ``wait`` again).
        """
        job = self._get(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"{job_id} still {job.state.value} after {timeout}s"
            )
        return self.result(job_id)

    def batch_verify(self, responses: Sequence["QueryResponse"]) -> "BatchReport":
        """Verify many responses with one folded accumulator check
        (delegates to the session's verifier)."""
        return self.session.verifier().batch_verify(responses)

    # -- aggregation -----------------------------------------------------

    def submit_aggregate(
        self,
        sqls: Sequence[str],
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
    ) -> list[JobId]:
        """Fan a batch of queries out to the prover farm for later
        :meth:`rollup` into one aggregated claim.

        Each query becomes an independent job (they prove in parallel
        across the workers); when ``rng_seed`` is given, job ``i`` pins
        its blinds to ``rng_seed + i`` so the whole batch reproduces
        byte for byte."""
        if not sqls:
            raise ValueError("cannot submit an empty aggregate batch")
        return [
            self.submit(
                sql,
                priority=priority,
                rng_seed=None if rng_seed is None else rng_seed + i,
            )
            for i, sql in enumerate(sqls)
        ]

    def rollup(
        self,
        job_ids: Sequence[JobId] | None = None,
        timeout: float | None = None,
    ) -> "AggProof":
        """Fold finished jobs into one transportable aggregated claim.

        With ``job_ids``, waits for exactly those jobs (``timeout`` per
        :meth:`wait`) and folds them in the given order.  Without, this
        is the *epoch* hook: every completed job not folded by a
        previous rollup is swept in submission order, so calling
        ``rollup()`` at an interval partitions the service's traffic
        into disjoint aggregated epochs.  Raises
        :class:`~repro.errors.StateError` when there is nothing to roll
        up, and :class:`~repro.errors.JobFailed` if a requested job
        failed."""
        from repro.proving.aggregate import aggregate

        if job_ids is None:
            with self._lock:
                candidates = sorted(
                    (
                        job
                        for job in self._jobs.values()
                        if job.state == JobState.DONE
                        and job.job_id not in self._rolled
                    ),
                    key=lambda job: job.seq,
                )
            job_ids = [job.job_id for job in candidates]
            if not job_ids:
                raise StateError("no completed jobs to roll up")
        elif not job_ids:
            raise StateError("cannot roll up an empty job list")
        responses = [self.wait(job_id, timeout=timeout) for job_id in job_ids]
        agg = aggregate(responses, self.session.params)
        with self._lock:
            self._rolled.update(job_ids)
        telemetry.incr("service.rollups")
        return agg

    def verify_aggregate(self, agg: "AggProof | bytes") -> "AggReport":
        """Check an aggregated claim with one accumulator finalize
        (delegates to the session's verifier)."""
        return self.session.verifier().verify_aggregate(agg)

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service counters: queue depth, shed count, per-state job
        totals, and per-worker completion counts."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "queue_depth": len(self.queue),
            "shed_count": self.queue.shed_count,
            "jobs": states,
            "workers": {
                worker.name: {
                    "completed": worker.completed,
                    "failed": worker.failed,
                }
                for worker in self.workers
            },
        }

    def health(self) -> dict[str, Any]:
        """An operational snapshot for liveness probes and dashboards.

        Built from the service's own records (worker threads, queue,
        job table, error ring), so it is meaningful even with telemetry
        disabled.  Shape::

            {
              "healthy": bool,            # every worker thread alive
              "closed": bool,
              "uptime_seconds": float,
              "workers": {name: {"alive", "current_job", "completed",
                                 "failed"}},
              "queue": {"depth", "depths": {lane: n}, "max_depth",
                        "shed_count"},
              "jobs": {state: count},
              "keygen": {"requests", "warm_hits", "warm_hit_ratio"},
              "last_errors": [...recent failures, oldest first...],
            }
        """
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        workers = {}
        for worker in self.workers:
            current = worker._current
            workers[worker.name] = {
                "alive": worker.is_alive(),
                "current_job": str(current.job_id) if current else None,
                "completed": worker.completed,
                "failed": worker.failed,
            }
        counters = telemetry.metrics_registry().counters_snapshot()
        requests = int(counters.get("keygen.requests", 0))
        warm_hits = int(counters.get("keygen.warm_hits", 0))
        return {
            "healthy": (not self._closed)
            and all(info["alive"] for info in workers.values()),
            "closed": self._closed,
            "uptime_seconds": time.time() - self.started_at,
            "workers": workers,
            "queue": {
                "depth": len(self.queue),
                "depths": self.queue.depths(),
                "max_depth": self.queue.max_depth,
                "shed_count": self.queue.shed_count,
            },
            "jobs": states,
            "keygen": {
                "requests": requests,
                "warm_hits": warm_hits,
                "warm_hit_ratio": (
                    warm_hits / requests if requests else 0.0
                ),
            },
            "last_errors": self.errors.snapshot(),
        }

    def metrics_text(self) -> str:
        """The ambient metrics registry in Prometheus text exposition
        format, with the service's live gauges refreshed first (see
        :mod:`repro.telemetry.promtext`)."""
        registry = telemetry.metrics_registry()
        registry.gauge("service.queue_depth", len(self.queue))
        for lane, depth in self.queue.depths().items():
            registry.gauge(f"service.queue_depth.{lane.lower()}", depth)
        registry.gauge(
            "service.workers_alive",
            sum(1 for worker in self.workers if worker.is_alive()),
        )
        registry.gauge("service.uptime_seconds", time.time() - self.started_at)
        return promtext.render_registry(registry)

    def events(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent job lifecycle events, oldest first (the
        in-memory ring; see ``config.event_log_path`` for the on-disk
        stream)."""
        return self.events_log.tail(n)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admissions, cancel queued jobs, and join the workers.

        Running jobs are allowed to finish (bounded by
        ``config.shutdown_timeout`` per worker join); queued jobs are
        finished as ``CANCELLED`` so every waiter is released.
        """
        if self._closed:
            return
        self._closed = True
        for job in self.queue.close():
            job.finish(JobState.CANCELLED, error="service shut down")
            telemetry.incr("service.jobs_cancelled")
            self.events_log.emit(
                "cancelled", job_id=job.job_id, trace_id=job.trace_id
            )
        for worker in self.workers:
            worker.request_stop()
        for worker in self.workers:
            worker.join(timeout=self.config.shutdown_timeout)
        self.events_log.emit("closed", uptime_seconds=round(
            time.time() - self.started_at, 6
        ))
        self.events_log.close()

    def __enter__(self) -> "ProvingService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _get(self, job_id: JobId) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(job_id)
        return job
