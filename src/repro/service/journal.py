"""The durable job journal: a crash-safe write-ahead log for the
proving service.

Every job lifecycle transition (``submitted`` -> ``running`` ->
``done`` / ``failed`` / ``cancelled``, plus ``retry`` re-enqueues)
becomes one appended record, so a :class:`~repro.service.ProvingService`
opened on an existing journal can reconstruct exactly which jobs were
accepted and which of them still owe the client a proof.  Because
proofs are byte-deterministic under a pinned ``rng_seed``, recovery is
*exact*: a replayed job must reproduce the very proof bytes whose
digest the journal recorded before the crash (enforced by the worker;
see :class:`~repro.errors.RecoveryMismatch`).

Wire format
-----------

The file starts with the 6-byte magic ``PDBJ1\\n``; each record after
it is a self-checking frame::

    length:u32-le | crc32(payload):u32-le | payload (UTF-8 JSON)

A crash mid-append leaves at most one *torn* final frame (short
header, short payload, or a checksum mismatch running to EOF); replay
tolerates it by stopping at the last intact frame, exactly the
recovery contract of classic WAL designs.  Damage *before* the final
frame -- a checksum failure with more framed data behind it -- cannot
be explained by a torn append and raises
:class:`~repro.errors.JournalCorrupt` instead of silently replaying a
wrong prefix.

Replay (:func:`replay`) folds the record stream into one
:class:`JournaledJob` per job id, which the service turns back into
live jobs: non-terminal jobs (and ``done`` jobs, whose responses only
ever lived in memory) are re-enqueued; ``failed`` / ``cancelled`` jobs
are restored as terminal records so ``status()`` keeps answering for
them.  See DESIGN.md section 5i.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro import telemetry
from repro.errors import JournalCorrupt, JournalError

MAGIC = b"PDBJ1\n"

_HEADER = struct.Struct("<II")

#: Hard sanity bound on one record's payload; a length field beyond it
#: with intact framed data behind is corruption, not a real record.
MAX_RECORD_BYTES = 1 << 24

#: The record types replay understands.  Unknown types are skipped so
#: a newer writer's journal stays replayable by an older reader.
RECORD_TYPES = (
    "submitted", "running", "done", "failed", "cancelled", "retry",
)

#: Job-terminal record types (nothing left to recover for the job).
TERMINAL_RECORDS = ("failed", "cancelled")


def encode_record(record: dict[str, Any]) -> bytes:
    """One framed journal record (header + checksummed JSON payload)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_records(
    path: str | os.PathLike[str],
) -> tuple[list[dict[str, Any]], int]:
    """Every intact record in ``path``, plus the count of torn tail
    bytes ignored (0 for a cleanly closed journal).

    Missing or empty files read as an empty journal.  Raises
    :class:`~repro.errors.JournalCorrupt` for a bad magic or any
    damaged frame that is *not* the file's final one.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return [], 0
    if not data:
        return [], 0
    if len(data) < len(MAGIC) and MAGIC.startswith(data):
        # A crash during journal creation: partial magic, no records.
        return [], len(data)
    if not data.startswith(MAGIC):
        raise JournalCorrupt(
            f"{path}: bad journal magic {data[:6]!r}", offset=0
        )
    records: list[dict[str, Any]] = []
    offset = len(MAGIC)
    size = len(data)
    while offset < size:
        if size - offset < _HEADER.size:
            return records, size - offset  # torn header at EOF
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES:
            if body_start + length > size:
                return records, size - offset  # giant len, runs past EOF
            raise JournalCorrupt(
                f"{path}: record at offset {offset} claims {length} bytes",
                offset=offset,
            )
        if body_start + length > size:
            return records, size - offset  # torn payload at EOF
        payload = data[body_start:body_start + length]
        end = body_start + length
        if zlib.crc32(payload) != crc:
            if end >= size:
                # Checksum failure running to EOF: the signature of a
                # frame that was being overwritten when the process
                # died.  Tolerated, like a short tail.
                return records, size - offset
            raise JournalCorrupt(
                f"{path}: checksum mismatch at offset {offset} with "
                f"{size - end} intact bytes after it",
                offset=offset,
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise JournalCorrupt(
                f"{path}: undecodable record at offset {offset}: {exc}",
                offset=offset,
            ) from None
        if not isinstance(record, dict):
            raise JournalCorrupt(
                f"{path}: non-object record at offset {offset}",
                offset=offset,
            )
        records.append(record)
        offset = end
    return records, 0


@dataclass
class JournaledJob:
    """The folded final state of one job id after replay."""

    job_id: str
    sql: str = ""
    priority: int = 1
    rng_seed: int | None = None
    tenant: str | None = None
    deadline_seconds: float | None = None
    seq: int = 0
    max_retries: int = 0
    attempts: int = 0
    state: str = "submitted"
    worker: str | None = None
    error: str | None = None
    #: BLAKE2b hex digest of the completed proof's wire bytes, present
    #: once a ``done`` record was appended.
    digest: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_RECORDS

    @property
    def needs_replay(self) -> bool:
        """Whether the service still owes this job a proof.  ``done``
        jobs count too: their responses only ever lived in memory, so
        recovery re-proves them and checks the recorded digest."""
        return not self.terminal


@dataclass
class JournalReplay:
    """Everything :func:`replay` learned from one journal file."""

    jobs: dict[str, JournaledJob] = field(default_factory=dict)
    records: int = 0
    torn_tail_bytes: int = 0
    max_seq: int = 0

    def pending(self) -> list[JournaledJob]:
        """The jobs recovery must re-enqueue, in submission order."""
        return sorted(
            (job for job in self.jobs.values() if job.needs_replay),
            key=lambda job: job.seq,
        )

    def terminal(self) -> list[JournaledJob]:
        """Jobs that finished for good (failed / cancelled), in
        submission order."""
        return sorted(
            (job for job in self.jobs.values() if job.terminal),
            key=lambda job: job.seq,
        )


def replay(path: str | os.PathLike[str]) -> JournalReplay:
    """Fold the journal at ``path`` into per-job final states."""
    records, torn = read_records(path)
    out = JournalReplay(torn_tail_bytes=torn, records=len(records))
    for record in records:
        rec = record.get("rec")
        job_id = record.get("job")
        if rec not in RECORD_TYPES or not isinstance(job_id, str):
            continue  # forward compatibility: skip unknown shapes
        if rec == "submitted":
            job = JournaledJob(
                job_id=job_id,
                sql=str(record.get("sql", "")),
                priority=int(record.get("priority", 1)),
                rng_seed=record.get("rng_seed"),
                tenant=record.get("tenant"),
                deadline_seconds=record.get("deadline_seconds"),
                seq=int(record.get("seq", 0)),
                max_retries=int(record.get("max_retries", 0)),
            )
            out.jobs[job.job_id] = job
            out.max_seq = max(out.max_seq, job.seq)
            continue
        job = out.jobs.get(job_id)
        if job is None:
            continue  # transition for a job whose submit frame was torn
        if rec == "running":
            job.state = "running"
            job.worker = record.get("worker")
        elif rec == "retry":
            job.state = "retry"
            job.attempts = int(record.get("attempt", job.attempts))
        elif rec == "done":
            job.state = "done"
            job.digest = record.get("digest")
        elif rec == "failed":
            job.state = "failed"
            job.error = record.get("error")
        elif rec == "cancelled":
            job.state = "cancelled"
            job.error = record.get("error")
    return out


class JobJournal:
    """An append-only, checksummed journal of job transitions.

    Thread-safe: workers, the supervisor, and the client-facing
    service surface all append concurrently.  Every append is flushed
    to the OS immediately (surviving a SIGKILL of the process);
    ``fsync=True`` additionally pushes each record to stable storage.
    Append failures after a successful open never raise into the
    proving hot path -- they disable the journal and bump the
    ``service.journal_errors`` counter, mirroring the event log's
    self-disabling sink.
    """

    def __init__(self, path: str | os.PathLike[str], fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self.write_errors = 0
        self.appended = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        try:
            self._handle = open(self.path, "ab")
            if fresh:
                self._handle.write(MAGIC)
                self._handle.flush()
        except OSError as exc:
            raise JournalError(
                f"cannot open job journal {self.path}: {exc}"
            ) from exc

    def append(self, rec: str, job_id: str, **fields: Any) -> dict[str, Any]:
        """Append one transition record; returns it (or ``{}`` when the
        journal has self-disabled after a write error)."""
        record: dict[str, Any] = {"rec": rec, "job": job_id}
        for key, value in fields.items():
            if value is None or isinstance(value, (str, int, float, bool)):
                record[key] = value
            else:
                record[key] = str(value)
        frame = encode_record(record)
        with self._lock:
            if self._handle is None:
                return {}
            try:
                self._handle.write(frame)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                self.appended += 1
            except Exception:
                self.write_errors += 1
                telemetry.incr("service.journal_errors")
                try:
                    self._handle.close()
                except Exception:
                    pass
                self._handle = None
                return {}
        return record

    @property
    def active(self) -> bool:
        return self._handle is not None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except Exception:
                    pass
                self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """The intact records currently on disk (reads the file; safe
        while the journal is open for append)."""
        records, _ = read_records(self.path)
        return iter(records)
