"""The service's priority job queue with queue-depth load shedding.

A single binary heap ordered by ``(priority, submission seq)`` gives
strict priority lanes with FIFO order inside each lane.  Shedding is
depth-based and lane-aware: ``NORMAL`` / ``LOW`` submissions are
rejected once the queue reaches ``max_depth - high_priority_reserve``,
while ``HIGH`` jobs may fill the reserved headroom up to ``max_depth``
-- so under overload the service keeps accepting latency-sensitive
traffic while pushing back on the bulk lanes (the classic
admission-control shape; DESIGN.md section 5f).

Rejection is a typed :class:`~repro.errors.ServiceOverloaded` carrying
the observed depth, so clients can distinguish "back off and retry"
from a hard failure.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro import telemetry
from repro.errors import ServiceClosed, ServiceOverloaded
from repro.service.jobs import Job, JobState, Priority


class JobQueue:
    """A bounded, priority-ordered queue of :class:`Job` records.

    ``chaos`` is the fault-injection port (``None`` in production, zero
    cost): an object that may delay a pop or ask for it to be
    duplicated -- see :mod:`repro.service.chaos`.
    """

    def __init__(
        self,
        max_depth: int,
        high_priority_reserve: int = 0,
        chaos=None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if not 0 <= high_priority_reserve < max_depth:
            raise ValueError("high_priority_reserve must be in [0, max_depth)")
        self.max_depth = max_depth
        self.high_priority_reserve = high_priority_reserve
        self._heap: list[tuple[tuple[int, int], Job]] = []
        self._cond = threading.Condition()
        self._closed = False
        self.shed_count = 0
        self._chaos = chaos

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def depth_limit(self, priority: Priority) -> int:
        """The admission bound for ``priority``: HIGH may use the full
        depth, everything else stops short of the reserved headroom."""
        if priority == Priority.HIGH:
            return self.max_depth
        return self.max_depth - self.high_priority_reserve

    def push(self, job: Job, force: bool = False) -> None:
        """Admit ``job`` or shed it with :class:`ServiceOverloaded`.

        ``force`` bypasses the depth bound (never the closed check):
        retry re-enqueues and journal recovery re-admit jobs the
        service already accepted once, so shedding them would break the
        no-lost-jobs contract.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosed("proving service is shut down")
            depth = len(self._heap)
            if not force and depth >= self.depth_limit(job.priority):
                self.shed_count += 1
                telemetry.incr("service.jobs_shed")
                raise ServiceOverloaded(
                    f"queue depth {depth} at {job.priority.name} admission "
                    f"bound {self.depth_limit(job.priority)}; job shed",
                    queue_depth=depth,
                )
            heapq.heappush(self._heap, (job.order_key, job))
            telemetry.incr("service.jobs_queued")
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """The next job in priority order, blocking up to ``timeout``
        seconds; ``None`` on timeout or when the queue is closed and
        drained."""
        with self._cond:
            while not self._heap:
                if self._closed or not self._cond.wait(timeout=timeout):
                    return None
            job = heapq.heappop(self._heap)[1]
            if self._chaos is not None and self._chaos.duplicate_pop(job):
                # Fault injection: leave a second copy in the heap so
                # another worker pops the same job.  Job.claim() is the
                # guard that must make this harmless.
                heapq.heappush(self._heap, (job.order_key, job))
                self._cond.notify()
        if self._chaos is not None:
            delay = self._chaos.pop_delay(job)
            if delay > 0:
                time.sleep(delay)
        return job

    def remove(self, job: Job) -> bool:
        """Withdraw a specific queued job (client cancellation); False
        when it is no longer in the heap (already popped or drained)."""
        with self._cond:
            for i, (_, queued) in enumerate(self._heap):
                if queued is job:
                    self._heap[i] = self._heap[-1]
                    self._heap.pop()
                    if i < len(self._heap):
                        heapq.heapify(self._heap)
                    return True
        return False

    def depths(self) -> dict[str, int]:
        """Current queued-job count per priority lane (all lanes always
        present, zero when empty) -- the ``health()`` snapshot shape."""
        with self._cond:
            counts = {lane.name: 0 for lane in Priority}
            for _, job in self._heap:
                counts[job.priority.name] += 1
            return counts

    def position(self, job: Job) -> int | None:
        """0-based dispatch rank of a queued job (``None`` if it is no
        longer queued)."""
        with self._cond:
            entries = [entry for entry, _ in self._heap]
            for entry, queued in self._heap:
                if queued is job:
                    return sum(1 for other in entries if other < entry)
        return None

    def close(self) -> list[Job]:
        """Stop admissions, wake every waiter, and drain the backlog.

        Returns the still-queued jobs (the service cancels them) so no
        submitted job is ever silently dropped.
        """
        with self._cond:
            self._closed = True
            drained = [job for _, job in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        return drained

    @property
    def closed(self) -> bool:
        return self._closed
