"""``repro.service`` -- the async proving service.

Layered on the :class:`~repro.api.Session` facade: submit SQL queries
as jobs, fan them out to a farm of long-lived prover workers with warm
proving keys, track progress live through telemetry spans, and verify
the resulting proofs in amortized batches.  See DESIGN.md section 5f.
"""

from repro.config import ServiceConfig
from repro.service.jobs import JobId, JobState, JobStatus, Priority
from repro.service.queue import JobQueue
from repro.service.scheduler import ProverWorker
from repro.service.service import ProvingService

__all__ = [
    "JobId",
    "JobQueue",
    "JobState",
    "JobStatus",
    "Priority",
    "ProverWorker",
    "ProvingService",
    "ServiceConfig",
]
