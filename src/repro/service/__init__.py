"""``repro.service`` -- the async proving service.

Layered on the :class:`~repro.api.Session` facade: submit SQL queries
as jobs, fan them out to a farm of long-lived prover workers with warm
proving keys, track progress live through telemetry spans, and verify
the resulting proofs in amortized batches.  See DESIGN.md section 5f.

Fault tolerance (DESIGN.md section 5i): a durable, checksummed job
journal (:mod:`repro.service.journal`) makes the service crash-safe --
:meth:`ProvingService.open` replays it and re-proves interrupted jobs
byte-identically under their pinned ``rng_seed`` -- while a supervisor
respawns dead workers, bounded retries with exponential backoff absorb
transient failures, deadlines bound per-job wall clock, and per-tenant
quotas fence admissions.  :mod:`repro.service.chaos` is the seeded
fault-injection harness that proves those properties hold.
"""

from repro.config import ServiceConfig
from repro.service.jobs import JobId, JobState, JobStatus, Priority
from repro.service.journal import JobJournal, JournalReplay, replay
from repro.service.queue import JobQueue
from repro.service.scheduler import ProverWorker, Supervisor, WorkerKilled
from repro.service.service import ProvingService

__all__ = [
    "JobId",
    "JobJournal",
    "JobQueue",
    "JobState",
    "JobStatus",
    "JournalReplay",
    "Priority",
    "ProverWorker",
    "ProvingService",
    "ServiceConfig",
    "Supervisor",
    "WorkerKilled",
    "replay",
]
