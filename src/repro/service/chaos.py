"""Deterministic fault injection for the proving service.

Crash safety is a claim about *every* interleaving, but tests only run
a few -- so this module makes the dangerous interleavings first-class
and reproducible.  A :class:`ChaosInjector` is handed to the service
(``ProvingService(session, config, chaos=...)``) and, driven by a
seeded RNG, it:

- **kills workers mid-prove** (raising
  :class:`~repro.service.scheduler.WorkerKilled`, the thread-death
  model the supervisor must recover from),
- **duplicates queue pops** (two workers receive the same job;
  :meth:`~repro.service.jobs.Job.claim` must make that harmless),
- **delays pops** (widening the race windows the atomic state machine
  has to close),
- and, in the crash scenario, **tears the journal tail** the way a
  process dying between ``write()`` and completion would.

:func:`run_chaos_suite` drives four scenarios over a real (small-``k``)
session and asserts the service's core invariants after each:

1. no accepted job is ever lost (every submitted job reaches a
   terminal state with its waiter released),
2. no job completes twice (``Job.completions == 1``),
3. recovered and retried proofs are **byte-identical** to the
   journaled/baseline digests under their pinned ``rng_seed``,
4. the worker farm returns to full strength after every kill.

Run it from the command line (the CI ``chaos-smoke`` job)::

    python -m repro.service.chaos --seed 3

``--child`` mode is the victim half of the SIGKILL end-to-end test
(``tests/test_chaos.py``): it opens a journaled service, submits jobs,
prints ``READY`` once one is mid-prove with the rest queued, and waits
to be killed -- for real, by signal 9, from the test process.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Any, Sequence

from repro import telemetry
from repro.config import ProverConfig, ServiceConfig
from repro.service.jobs import JobState
from repro.service.journal import encode_record
from repro.service.scheduler import WorkerKilled, response_digest

#: The chaos workload: small aggregates over the tiny fixture table,
#: each with a pinned blinding seed so every proof is byte-reproducible.
CHAOS_QUERIES: tuple[tuple[str, int], ...] = (
    ("select sum(v) as s from t where v < 40", 0x5EED0),
    ("select count(*) as n from t", 0x5EED1),
    ("select sum(v) as s from t", 0x5EED2),
)


class ChaosInjector:
    """Seeded fault decisions, injected at the service's chaos ports.

    All knobs are *budgets*: ``kills`` worker deaths (only ever on a
    job's first attempt, so bounded retries always converge),
    ``dup_pops`` duplicated queue pops, ``delayed_pops`` pops slowed by
    a seeded fraction of ``max_delay`` seconds.  Thread-safe; every
    decision is logged in ``events`` for the suite's report.
    """

    def __init__(
        self,
        seed: int,
        kills: int = 0,
        dup_pops: int = 0,
        delayed_pops: int = 0,
        max_delay: float = 0.01,
    ):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.kills_left = kills
        self.dups_left = dup_pops
        self.delays_left = delayed_pops
        self.max_delay = max_delay
        self.events: list[str] = []

    # -- ports the service calls ----------------------------------------

    def on_prove(self, job, worker: str) -> None:
        """Called by a worker as it starts proving ``job``; may raise
        :class:`WorkerKilled` to take the worker thread down."""
        with self._lock:
            if self.kills_left <= 0 or job.attempts > 0:
                return
            self.kills_left -= 1
            self.events.append(f"kill {worker} proving {job.job_id}")
        raise WorkerKilled(f"chaos: killing {worker} mid-prove")

    def duplicate_pop(self, job) -> bool:
        with self._lock:
            if self.dups_left <= 0:
                return False
            self.dups_left -= 1
            self.events.append(f"dup pop {job.job_id}")
            return True

    def pop_delay(self, job) -> float:
        with self._lock:
            if self.delays_left <= 0:
                return 0.0
            self.delays_left -= 1
            delay = self._rng.random() * self.max_delay
            self.events.append(f"delay pop {job.job_id} {delay:.4f}s")
            return delay


# -- the tiny real-crypto fixture ---------------------------------------------


def build_session(k: int = 6):
    """A committed session over the five-row fixture table -- the same
    shape the service tests use, kept here so the suite is runnable
    straight from the CLI."""
    from repro.api import PoneglyphDB
    from repro.db import ColumnDef, Database, TableSchema
    from repro.db.types import INT, STRING

    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("grp", STRING), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [
            (1, "x", 10),
            (2, "y", 20),
            (3, "x", 30),
            (4, "y", 40),
            (5, "x", 50),
        ],
    )
    config = ProverConfig(
        k=k, limb_bits=4, value_bits=16, key_bits=16, use_cache=False,
        telemetry=True,
    )
    session = PoneglyphDB.open(db, config)
    session.commit()
    return session


def baseline_digests(session) -> dict[str, str]:
    """Synchronous-path proof digests for :data:`CHAOS_QUERIES` --
    the byte-identity ground truth every scenario compares against."""
    from repro.algebra.field import deterministic_rng

    digests: dict[str, str] = {}
    for sql, seed in CHAOS_QUERIES:
        with deterministic_rng(seed):
            digests[sql] = response_digest(session.prove(sql))
    return digests


# -- invariant checks ---------------------------------------------------------


def _assert_invariants(
    service, expected: dict[str, str], scenario: str
) -> None:
    """The suite's core contract, checked after every scenario: no job
    lost, none double-completed, every proof byte-identical."""
    with service._lock:
        jobs = list(service._jobs.values())
    for job in jobs:
        assert job.state.finished and job.done.is_set(), (
            f"{scenario}: {job.job_id} lost in state {job.state.value}"
        )
        assert job.completions == 1, (
            f"{scenario}: {job.job_id} completed {job.completions} times"
        )
        if job.state == JobState.DONE:
            assert job.result_digest == expected[job.sql], (
                f"{scenario}: {job.job_id} proof digest "
                f"{job.result_digest} != baseline {expected[job.sql]}"
            )


def _submit_all(service, deadline: float = 300.0) -> list:
    job_ids = [
        service.submit(sql, rng_seed=seed) for sql, seed in CHAOS_QUERIES
    ]
    for job_id in job_ids:
        service.wait(job_id, timeout=deadline)
    return job_ids


# -- scenarios ----------------------------------------------------------------


def scenario_worker_kill(session, expected, seed: int) -> dict[str, Any]:
    """A worker thread dies mid-prove; the supervisor must hand the
    orphaned job to the retry policy and respawn the worker, and the
    retried proof must still be byte-identical."""
    chaos = ChaosInjector(seed, kills=2)
    config = ServiceConfig(
        workers=2,
        max_retries=2,
        retry_backoff_seconds=0.01,
        retry_backoff_max=0.05,
        supervisor_interval=0.02,
    )
    from repro.service.service import ProvingService

    with ProvingService(session, config, chaos=chaos) as service:
        _submit_all(service)
        deadline = time.time() + 30
        while service.workers_restarted < 2 and time.time() < deadline:
            time.sleep(0.01)
        _assert_invariants(service, expected, "worker-kill")
        health = service.health()
        assert service.workers_restarted >= 2, (
            f"worker-kill: only {service.workers_restarted} respawns"
        )
        assert all(
            info["alive"] for info in health["workers"].values()
        ), "worker-kill: farm not back at full capacity"
        assert len(health["workers"]) == config.workers
        return {
            "kills": 2 - chaos.kills_left,
            "workers_restarted": service.workers_restarted,
            "events": list(chaos.events),
        }


def scenario_duplicate_pops(session, expected, seed: int) -> dict[str, Any]:
    """The queue hands the same job to two workers (duplicated pop) and
    slows others down; ``Job.claim`` must serialize them so each job
    still completes exactly once."""
    chaos = ChaosInjector(seed, dup_pops=2, delayed_pops=3, max_delay=0.02)
    config = ServiceConfig(workers=2, supervisor_interval=0.02)
    from repro.service.service import ProvingService

    with ProvingService(session, config, chaos=chaos) as service:
        _submit_all(service)
        _assert_invariants(service, expected, "duplicate-pop")
        return {"events": list(chaos.events)}


def scenario_crash_recovery(
    session, expected, seed: int, workdir: Path
) -> dict[str, Any]:
    """Crash between journal appends, then recover.

    Incarnation one journals every transition, completes one job, and
    is ``abort()``-ed (no graceful drain -- queued jobs stay queued,
    exactly like a dead process).  The journal tail is then torn by
    appending a partial frame, the byte pattern of a process dying
    mid-``write``.  Incarnation two must replay the journal, tolerate
    the torn tail, re-enqueue every non-terminal job *and* the
    completed one (its response only lived in memory), and re-prove
    them all byte-identically -- the completed job against the digest
    journaled before the crash.
    """
    from repro.service.service import ProvingService

    journal_path = workdir / f"chaos-{seed}.journal"
    rng = random.Random(seed)

    service = ProvingService(
        session,
        ServiceConfig(workers=1, supervisor_interval=0.02),
        journal_path=journal_path,
    )
    first_sql, first_seed = CHAOS_QUERIES[0]
    first = service.submit(first_sql, rng_seed=first_seed)
    done_digest = response_digest(service.wait(first, timeout=300))
    assert done_digest == expected[first_sql]
    queued = [
        service.submit(sql, rng_seed=s) for sql, s in CHAOS_QUERIES[1:]
    ]
    service.abort()  # the crash: no drain, no cancels, journal just stops

    # Tear the tail: a partial frame, cut at a seeded offset, exactly
    # what a mid-append death leaves behind.
    torn_frame = encode_record(
        {"rec": "running", "job": str(queued[0]), "worker": "prover-worker-0"}
    )
    cut = rng.randrange(1, len(torn_frame))
    with open(journal_path, "ab") as handle:
        handle.write(torn_frame[:cut])

    with ProvingService.open(
        session,
        ServiceConfig(workers=2, supervisor_interval=0.02),
        journal_path=journal_path,
    ) as recovered:
        assert recovered.replay is not None
        assert recovered.replay.torn_tail_bytes == cut
        assert recovered.recovered_jobs == 3, (
            f"crash-recovery: {recovered.recovered_jobs} of 3 jobs recovered"
        )
        done_job = recovered._get(first)
        assert done_job.expected_digest == done_digest
        for job_id in [first, *queued]:
            recovered.wait(job_id, timeout=300)
        _assert_invariants(recovered, expected, "crash-recovery")
        return {
            "torn_tail_bytes": cut,
            "recovered_jobs": recovered.recovered_jobs,
            "replayed_records": recovered.replay.records,
        }


def scenario_cache_corruption(seed: int, workdir: Path) -> dict[str, Any]:
    """Artifact-cache files are damaged at seeded offsets; every read
    must detect the damage, evict, and recompute -- corruption degrades
    to a rebuild, never to a wrong artifact."""
    from repro.cache import ArtifactCache, cache_key

    rng = random.Random(seed)
    cache = ArtifactCache(workdir / "chaos-cache")
    evictions = 0
    for i in range(4):
        payload = {"artifact": i, "rows": list(range(32 + i))}
        cache.fetch("chaos", (i,), lambda p=payload: p)
        path = cache.path_for(cache_key("chaos", i))
        raw = bytearray(path.read_bytes())
        if i % 2 == 0:
            raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(raw))
        else:
            path.write_bytes(bytes(raw[: rng.randrange(1, len(raw))]))
        rebuilt, hit = cache.fetch("chaos", (i,), lambda p=payload: p)
        assert not hit, f"cache-corruption: damaged artifact {i} served"
        assert rebuilt == payload
        evictions += 1
        value, hit = cache.fetch("chaos", (i,), lambda p=payload: p)
        assert hit and value == payload, (
            f"cache-corruption: artifact {i} not repaired on disk"
        )
    return {"corrupted": 4, "evicted": evictions}


# -- the suite ----------------------------------------------------------------


def run_chaos_suite(
    seed: int = 0xC0FFEE,
    workdir: str | Path | None = None,
    k: int = 6,
    session=None,
) -> dict[str, Any]:
    """Run every chaos scenario against one small real session.

    Raises ``AssertionError`` the moment an invariant breaks; returns a
    JSON-able report otherwise.  Fully deterministic for a given
    ``seed`` (proof bytes, fault schedule, torn-tail offsets).
    """
    import tempfile

    started = time.monotonic()
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    owns_session = session is None
    if session is None:
        session = build_session(k=k)
    try:
        expected = baseline_digests(session)
        report: dict[str, Any] = {
            "seed": seed,
            "k": k,
            "queries": len(CHAOS_QUERIES),
            "scenarios": {},
        }
        report["scenarios"]["worker_kill"] = scenario_worker_kill(
            session, expected, seed
        )
        report["scenarios"]["duplicate_pops"] = scenario_duplicate_pops(
            session, expected, seed + 1
        )
        report["scenarios"]["crash_recovery"] = scenario_crash_recovery(
            session, expected, seed + 2, workdir
        )
        report["scenarios"]["cache_corruption"] = scenario_cache_corruption(
            seed + 3, workdir
        )
        report["elapsed_seconds"] = round(time.monotonic() - started, 3)
        report["ok"] = True
        return report
    finally:
        if owns_session:
            session.close()


# -- CLI ----------------------------------------------------------------------


def _child_main(journal: str, k: int) -> int:
    """The SIGKILL victim: open a journaled single-worker service,
    submit the chaos workload, report READY once the first job is
    mid-prove with the rest queued, then wait to be killed."""
    session = build_session(k=k)
    service = session.serve(
        ServiceConfig(workers=1, supervisor_interval=0.05),
        journal_path=journal,
    )
    job_ids = [
        service.submit(sql, rng_seed=seed) for sql, seed in CHAOS_QUERIES
    ]
    deadline = time.time() + 60
    while time.time() < deadline:
        states = [service.status(j).state for j in job_ids]
        if states[0] == JobState.RUNNING and all(
            s == JobState.QUEUED for s in states[1:]
        ):
            break
        if any(s.finished for s in states):  # pragma: no cover - timing
            break
        time.sleep(0.002)
    print(
        "READY " + json.dumps({"jobs": [str(j) for j in job_ids]}),
        flush=True,
    )
    time.sleep(120)  # killed long before this returns
    return 1  # pragma: no cover - only reached if the parent forgot us


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Deterministic chaos suite for the proving service"
    )
    parser.add_argument("--seed", type=int, default=0xC0FFEE)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument(
        "--workdir", default=None, help="scratch dir for journals/caches"
    )
    parser.add_argument(
        "--child",
        action="store_true",
        help="SIGKILL-victim mode used by the crash-recovery e2e test",
    )
    parser.add_argument(
        "--journal", default=None, help="journal path (with --child)"
    )
    args = parser.parse_args(argv)
    if args.child:
        if not args.journal:
            parser.error("--child requires --journal")
        return _child_main(args.journal, args.k)
    telemetry.enable(True)
    report = run_chaos_suite(
        seed=args.seed, workdir=args.workdir, k=args.k
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
