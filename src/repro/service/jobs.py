"""Job records for the async proving service.

A *job* is one ``submit()``-ed SQL query working its way through the
queue and a prover worker.  :class:`Job` is the internal mutable
record (its state machine guarded by a per-job lock plus a completion
event); :class:`JobStatus` is the immutable snapshot handed to
clients, and :class:`JobState` / :class:`Priority` are the public
enums both sides share.

State transitions go through :meth:`Job.claim` / :meth:`Job.requeue` /
:meth:`Job.finish`, which are atomic and idempotent: a job that two
workers race to start (a duplicated queue pop under fault injection)
is claimed exactly once, and a job can never reach a terminal state
twice -- the invariants the chaos suite asserts.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import TYPE_CHECKING, NewType, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.prover_node import QueryResponse

#: Opaque job handle returned by ``ProvingService.submit``.
JobId = NewType("JobId", str)

_JOB_SEQ = itertools.count(1)
_SEQ_LOCK = threading.Lock()


def next_seq() -> int:
    with _SEQ_LOCK:
        return next(_JOB_SEQ)


def advance_seq(floor: int) -> None:
    """Ensure future sequence numbers exceed ``floor``.

    Journal recovery restores jobs with their original sequence
    numbers (they encode FIFO order inside a priority lane); new
    submissions in the recovered process must sort after them even
    though this process's counter started back at 1.
    """
    global _JOB_SEQ
    with _SEQ_LOCK:
        current = next(_JOB_SEQ)
        _JOB_SEQ = itertools.count(max(current, floor + 1))


class JobState(str, Enum):
    """Lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> DONE | FAILED`` is the normal path; a
    retried job moves ``RUNNING -> QUEUED`` again (bounded by
    ``max_retries``); ``CANCELLED`` is reached via
    ``ProvingService.cancel`` or at service shutdown with the job
    still queued.
    """

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Priority(IntEnum):
    """Scheduling lanes; lower value drains first.  ``HIGH`` jobs also
    get exclusive use of the queue's reserved headroom under load
    (see :class:`~repro.config.ServiceConfig.high_priority_reserve`)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class JobStatus:
    """An immutable point-in-time view of one job.

    ``queue_position`` is 0-based among queued jobs in dispatch order
    (``None`` once running); ``phase`` is the innermost ``prove.*``
    telemetry span currently open on the job's worker (``None`` when
    telemetry is disabled or the job is not running); ``phases`` maps
    completed prover phases to their wall seconds so far.
    """

    job_id: JobId
    state: JobState
    sql: str
    priority: Priority
    queue_position: Optional[int] = None
    phase: Optional[str] = None
    phases: dict[str, float] = field(default_factory=dict)
    worker: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: The job-scoped trace id stamped on every telemetry root span the
    #: job produces (prover thread and fork-pool workers alike).
    trace_id: str = ""
    #: The live span path on the job's worker, root first (e.g.
    #: ``"prove/prove.multiopen"``); ``""`` unless running with
    #: telemetry enabled.
    span_path: str = ""
    #: The submitting tenant (admission-quota accounting key).
    tenant: Optional[str] = None
    #: Wall-clock budget from submission; ``None`` = unbounded.
    deadline_seconds: Optional[float] = None
    #: How many retry re-enqueues the job has consumed so far.
    attempts: int = 0
    #: True when this job was restored from a journal replay.
    recovered: bool = False

    @property
    def elapsed_seconds(self) -> float:
        """Queue wait plus run time so far (or total, once finished)."""
        end = self.finished_at if self.finished_at is not None else time.time()
        return max(0.0, end - self.submitted_at)


class Job:
    """The service-internal mutable record for one submission."""

    __slots__ = (
        "job_id",
        "sql",
        "priority",
        "seq",
        "rng_seed",
        "tenant",
        "deadline_seconds",
        "max_retries",
        "attempts",
        "expected_digest",
        "recovered",
        "result_digest",
        "state",
        "response",
        "error",
        "phase",
        "phases",
        "worker",
        "submitted_at",
        "started_at",
        "finished_at",
        "done",
        "trace_id",
        "open_spans",
        "_lock",
        "completions",
    )

    def __init__(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
        tenant: str | None = None,
        deadline_seconds: float | None = None,
        max_retries: int = 0,
        job_id: JobId | None = None,
        seq: int | None = None,
    ):
        self.seq = seq if seq is not None else next_seq()
        self.job_id = (
            job_id
            if job_id is not None
            else JobId(f"job-{self.seq:06d}-{secrets.token_hex(4)}")
        )
        #: One trace per job: stamped onto every root span the job's
        #: prover thread (and its fork-pool tasks) opens.
        self.trace_id = f"trace-{secrets.token_hex(8)}"
        #: Names of the currently-open spans on the job's worker
        #: thread, root first (maintained by the scheduler's observer).
        self.open_spans: list[str] = []
        self.sql = sql
        self.priority = Priority(priority)
        self.rng_seed = rng_seed
        self.tenant = tenant
        self.deadline_seconds = deadline_seconds
        self.max_retries = max_retries
        self.attempts = 0
        #: Journal-recorded proof digest a replayed job must reproduce
        #: (checked only when ``rng_seed`` pins the blinds).
        self.expected_digest: str | None = None
        self.recovered = False
        #: Digest of the completed proof's wire bytes (set at DONE).
        self.result_digest: str | None = None
        self.state = JobState.QUEUED
        self.response: "QueryResponse | None" = None
        self.error: str | None = None
        self.phase: str | None = None
        self.phases: dict[str, float] = {}
        self.worker: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Set exactly once, when the job reaches a terminal state.
        self.done = threading.Event()
        #: Guards every state transition (claim/requeue/finish/cancel).
        self._lock = threading.Lock()
        #: Terminal-transition count; >1 would mean a double completion
        #: (the chaos suite's core invariant) and is made impossible by
        #: :meth:`finish`'s idempotency.
        self.completions = 0

    @property
    def order_key(self) -> tuple[int, int]:
        """Heap key: priority lane first, then submission order."""
        return (int(self.priority), self.seq)

    @property
    def deadline_at(self) -> float | None:
        """Absolute wall-clock deadline, or ``None``."""
        if self.deadline_seconds is None:
            return None
        return self.submitted_at + self.deadline_seconds

    def deadline_passed(self, now: float | None = None) -> bool:
        deadline = self.deadline_at
        if deadline is None:
            return False
        return (now if now is not None else time.time()) > deadline

    # -- atomic state transitions ----------------------------------------

    def claim(self, worker: str) -> bool:
        """Atomically move QUEUED -> RUNNING for ``worker``.

        Returns False when the job is not claimable (already running
        elsewhere after a duplicated pop, cancelled, or finished) --
        the caller must then skip it.
        """
        with self._lock:
            if self.state is not JobState.QUEUED:
                return False
            self.state = JobState.RUNNING
            self.worker = worker
            self.started_at = time.time()
            return True

    def requeue(self) -> bool:
        """Move a non-terminal job back to QUEUED for a retry."""
        with self._lock:
            if self.done.is_set():
                return False
            self.state = JobState.QUEUED
            self.worker = None
            self.phase = None
            return True

    def mark_cancelled_if_queued(self) -> bool:
        """Atomically reserve a queued job for cancellation (so a
        racing ``claim`` loses); the caller completes with
        :meth:`finish`."""
        with self._lock:
            if self.state is not JobState.QUEUED or self.done.is_set():
                return False
            self.state = JobState.CANCELLED
            return True

    def finish(self, state: JobState, error: str | None = None) -> bool:
        """Move to a terminal state exactly once; False if already
        terminal (the double-completion guard)."""
        with self._lock:
            if self.done.is_set():
                return False
            self.state = state
            self.error = error
            self.finished_at = time.time()
            self.phase = None
            self.completions += 1
            self.done.set()
            return True

    def snapshot(self, queue_position: int | None = None) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            sql=self.sql,
            priority=self.priority,
            queue_position=queue_position,
            phase=self.phase,
            phases=dict(self.phases),
            worker=self.worker,
            error=self.error,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            trace_id=self.trace_id,
            span_path="/".join(self.open_spans),
            tenant=self.tenant,
            deadline_seconds=self.deadline_seconds,
            attempts=self.attempts,
            recovered=self.recovered,
        )
