"""Job records for the async proving service.

A *job* is one ``submit()``-ed SQL query working its way through the
queue and a prover worker.  :class:`Job` is the internal mutable
record (guarded by its owning service's lock plus a per-job completion
event); :class:`JobStatus` is the immutable snapshot handed to
clients, and :class:`JobState` / :class:`Priority` are the public
enums both sides share.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import TYPE_CHECKING, NewType, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.prover_node import QueryResponse

#: Opaque job handle returned by ``ProvingService.submit``.
JobId = NewType("JobId", str)

_JOB_SEQ = itertools.count(1)


class JobState(str, Enum):
    """Lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> DONE | FAILED`` is the normal path;
    ``CANCELLED`` is reached only when the service shuts down with the
    job still queued.
    """

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Priority(IntEnum):
    """Scheduling lanes; lower value drains first.  ``HIGH`` jobs also
    get exclusive use of the queue's reserved headroom under load
    (see :class:`~repro.config.ServiceConfig.high_priority_reserve`)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class JobStatus:
    """An immutable point-in-time view of one job.

    ``queue_position`` is 0-based among queued jobs in dispatch order
    (``None`` once running); ``phase`` is the innermost ``prove.*``
    telemetry span currently open on the job's worker (``None`` when
    telemetry is disabled or the job is not running); ``phases`` maps
    completed prover phases to their wall seconds so far.
    """

    job_id: JobId
    state: JobState
    sql: str
    priority: Priority
    queue_position: Optional[int] = None
    phase: Optional[str] = None
    phases: dict[str, float] = field(default_factory=dict)
    worker: Optional[str] = None
    error: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: The job-scoped trace id stamped on every telemetry root span the
    #: job produces (prover thread and fork-pool workers alike).
    trace_id: str = ""
    #: The live span path on the job's worker, root first (e.g.
    #: ``"prove/prove.multiopen"``); ``""`` unless running with
    #: telemetry enabled.
    span_path: str = ""

    @property
    def elapsed_seconds(self) -> float:
        """Queue wait plus run time so far (or total, once finished)."""
        end = self.finished_at if self.finished_at is not None else time.time()
        return max(0.0, end - self.submitted_at)


class Job:
    """The service-internal mutable record for one submission."""

    __slots__ = (
        "job_id",
        "sql",
        "priority",
        "seq",
        "rng_seed",
        "state",
        "response",
        "error",
        "phase",
        "phases",
        "worker",
        "submitted_at",
        "started_at",
        "finished_at",
        "done",
        "trace_id",
        "open_spans",
    )

    def __init__(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        rng_seed: int | None = None,
    ):
        self.seq = next(_JOB_SEQ)
        self.job_id = JobId(f"job-{self.seq:06d}-{secrets.token_hex(4)}")
        #: One trace per job: stamped onto every root span the job's
        #: prover thread (and its fork-pool tasks) opens.
        self.trace_id = f"trace-{secrets.token_hex(8)}"
        #: Names of the currently-open spans on the job's worker
        #: thread, root first (maintained by the scheduler's observer).
        self.open_spans: list[str] = []
        self.sql = sql
        self.priority = Priority(priority)
        self.rng_seed = rng_seed
        self.state = JobState.QUEUED
        self.response: "QueryResponse | None" = None
        self.error: str | None = None
        self.phase: str | None = None
        self.phases: dict[str, float] = {}
        self.worker: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Set exactly once, when the job reaches a terminal state.
        self.done = threading.Event()

    @property
    def order_key(self) -> tuple[int, int]:
        """Heap key: priority lane first, then submission order."""
        return (int(self.priority), self.seq)

    def snapshot(self, queue_position: int | None = None) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            sql=self.sql,
            priority=self.priority,
            queue_position=queue_position,
            phase=self.phase,
            phases=dict(self.phases),
            worker=self.worker,
            error=self.error,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            trace_id=self.trace_id,
            span_path="/".join(self.open_spans),
        )

    def finish(self, state: JobState, error: str | None = None) -> None:
        self.state = state
        self.error = error
        self.finished_at = time.time()
        self.phase = None
        self.done.set()
