"""Worker-pool parallelism with a serial fallback.

The paper's prover is embarrassingly parallel in several hot spots --
Pippenger bucket windows, per-column FFTs and commitments, generator
derivation -- and the Rust artifact exploits every core.  This module
is the single place the pure-Python stack goes parallel: a persistent
process pool plus ``pmap``, a deterministic ordered map over argument
tuples.

Design rules (every consumer relies on them):

- **Serial fallback.**  With ``workers <= 1`` (the default), no pool
  exists and ``pmap`` runs inline, so single-core environments and
  debugging sessions pay zero overhead.
- **Determinism.**  Tasks must be pure functions of their (picklable)
  arguments; ``pmap`` preserves submission order, so parallel results
  are bit-identical to the serial path.
- **No nesting.**  A forked worker inherits this module's globals; the
  parent-PID guard makes ``pmap`` inside a worker run serially instead
  of deadlocking on the inherited pool.
- **Thread-safe dispatch.**  The proving service's worker threads call
  ``pmap`` concurrently; pool creation is locked so exactly one
  process pool ever exists, and ``ProcessPoolExecutor`` serializes the
  submissions themselves.  ``configure``/``parallelism`` remain
  process-global settings -- scope them at session setup, not from
  concurrent jobs.

Configure globally with :func:`configure` (or the ``REPRO_WORKERS``
environment variable), or per-scope with the :func:`parallelism`
context manager.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence, TypeVar

T = TypeVar("T")

#: Below this many tasks, pool dispatch overhead beats the win.
MIN_TASKS = 2


def _env_workers() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_WORKERS", "0") or "0"))
    except ValueError:
        return 0


class WorkerPool:
    """A lazily started process pool mapping functions over argument
    tuples in submission order.

    The pool prefers the ``fork`` start method (workers inherit the
    curve/field singletons for free); on platforms without it the
    default context is used.  If the pool cannot start at all, the
    pool degrades permanently to serial execution.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ProcessPoolExecutor | None = None
        self._parent_pid = os.getpid()
        self._broken = False
        self._start_lock = threading.Lock()

    @property
    def usable(self) -> bool:
        """True when dispatching to workers is possible and sensible."""
        return (
            self.workers > 1
            and not self._broken
            and os.getpid() == self._parent_pid
        )

    def _executor_or_none(self) -> ProcessPoolExecutor | None:
        with self._start_lock:
            if self._executor is None and not self._broken:
                try:
                    try:
                        ctx = multiprocessing.get_context("fork")
                    except ValueError:  # pragma: no cover - non-POSIX
                        ctx = multiprocessing.get_context()
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=ctx
                    )
                except OSError:  # pragma: no cover - fork refused
                    self._broken = True
            return self._executor

    def starmap(
        self, fn: Callable[..., T], tasks: Sequence[tuple]
    ) -> list[T]:
        """Apply ``fn(*args)`` to every tuple; results keep task order."""
        if not self.usable or len(tasks) < MIN_TASKS:
            return [fn(*args) for args in tasks]
        executor = self._executor_or_none()
        if executor is None:  # pragma: no cover - fork refused
            return [fn(*args) for args in tasks]
        futures = [executor.submit(fn, *args) for args in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


_workers: int = _env_workers()
_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def configure(workers: int | None) -> None:
    """Set the global worker count.  ``0``/``1``/``None`` mean serial."""
    global _workers, _pool
    count = max(0, int(workers or 0))
    with _pool_lock:
        if _pool is not None and _pool.workers != max(1, count):
            _pool.close()
            _pool = None
        _workers = count


def workers() -> int:
    """The configured worker count (0 = serial)."""
    return _workers


def is_parallel() -> bool:
    """True when pmap would actually fan out to worker processes."""
    return _workers > 1 and (_pool is None or _pool.usable)


def _traced_task(
    fn: Callable[..., T], args: tuple, context: dict | None = None
) -> tuple[T, Any]:
    """Worker-side wrapper: run the task under a telemetry capture so
    its spans/counters travel back to the parent with the result.
    ``context`` is the dispatching thread's job-scoped trace context
    (job_id/trace_id), re-entered inside the worker."""
    from repro import telemetry

    return telemetry.run_captured(fn, args, context=context)


def pmap(fn: Callable[..., T], tasks: Sequence[tuple]) -> list[T]:
    """Ordered parallel starmap over ``tasks`` (serial fallback).

    With telemetry enabled, each worker's spans and counters are
    captured and merged into the parent trace tagged by chunk index,
    so counter totals match the serial path exactly.
    """
    global _pool
    if _workers <= 1 or len(tasks) < MIN_TASKS:
        return [fn(*args) for args in tasks]
    with _pool_lock:
        if _pool is None:
            _pool = WorkerPool(_workers)
        pool = _pool
    from repro import telemetry

    if telemetry.enabled():
        context = telemetry.current_context() or None
        tagged = pool.starmap(
            _traced_task, [(fn, args, context) for args in tasks]
        )
        return telemetry.absorb_task_results(tagged)
    return pool.starmap(fn, tasks)


def shutdown() -> None:
    """Tear down the global pool (tests; atexit-safe to skip)."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.close()
            _pool = None


@contextmanager
def parallelism(workers_: int) -> Iterator[None]:
    """Temporarily run with ``workers_`` workers (context manager)."""
    previous = _workers
    configure(workers_)
    try:
        yield
    finally:
        configure(previous)


# -- work splitting helpers -------------------------------------------------


def chunk_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced
    ``(start, stop)`` ranges (never empty)."""
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def chunked(items: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split a sequence into at most ``parts`` contiguous balanced runs."""
    return [list(items[lo:hi]) for lo, hi in chunk_bounds(len(items), parts)]
