"""Column-store tables holding already-encoded field integers."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.db.encoding import Encoder
from repro.db.schema import TableSchema
from repro.db.types import SqlType


class Table:
    """An encoded, columnar table.

    All cell values are nonnegative integers (see
    :mod:`repro.db.encoding`); raw-value ingestion goes through
    :meth:`from_rows`, which also builds string dictionaries.
    """

    def __init__(self, schema: TableSchema, columns: dict[str, list[int]]):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged columns")
        if set(columns) != set(schema.column_names()):
            raise ValueError("columns do not match schema")
        self.schema = schema
        self.columns = columns
        self.num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]],
        encoder: Encoder,
    ) -> "Table":
        """Encode raw python rows (build dictionaries for string
        columns first)."""
        materialized = [list(r) for r in rows]
        names = schema.column_names()
        for row in materialized:
            if len(row) != len(names):
                raise ValueError(
                    f"row arity {len(row)} != schema arity {len(names)}"
                )
        for idx, col in enumerate(schema.columns):
            if col.type.base is SqlType.STRING:
                encoder.build_dictionary(
                    f"{schema.name}.{col.name}",
                    [row[idx] for row in materialized],
                )
        columns: dict[str, list[int]] = {name: [] for name in names}
        for row in materialized:
            for col, value in zip(schema.columns, row):
                columns[col.name].append(
                    encoder.encode(f"{schema.name}.{col.name}", col.type, value)
                )
        return cls(schema, columns)

    def column(self, name: str) -> list[int]:
        return self.columns[name]

    def row(self, index: int) -> tuple[int, ...]:
        return tuple(self.columns[n][index] for n in self.schema.column_names())

    def iter_rows(self) -> Iterable[tuple[int, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.schema.name}, rows={self.num_rows})"
