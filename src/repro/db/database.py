"""The database: a catalog of encoded tables plus the shared encoder."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.db.encoding import Encoder
from repro.db.schema import TableSchema
from repro.db.table import Table


class Database:
    """Named tables plus the encoder holding string dictionaries.

    The encoder is shared deliberately: query literals must encode with
    the same dictionaries the data used.
    """

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.encoder = Encoder()

    def create_table(
        self, schema: TableSchema, rows: Iterable[Sequence[Any]]
    ) -> Table:
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = Table.from_rows(schema, rows, self.encoder)
        self.tables[schema.name] = table
        return table

    def add_table(self, table: Table) -> None:
        if table.schema.name in self.tables:
            raise ValueError(f"table {table.schema.name!r} already exists")
        self.tables[table.schema.name] = table

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise KeyError(f"no table {name!r}")
        return self.tables[name]

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    @property
    def total_rows(self) -> int:
        return sum(len(t) for t in self.tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{n}={len(t)}" for n, t in self.tables.items())
        return f"Database({parts})"
