"""The database commitment (paper workflow phase 2, Table 3).

Every table column is committed with the IPA/Pedersen scheme over the
same generator basis the query circuits use; a Merkle tree over the
column commitments yields a single digest the prover publishes
irrevocably (e.g. on a blockchain) and an auditor can validate against
the raw database.

Binding queries to the commitment: a query circuit loads a table column
into an advice column and commits it with fresh blinding.  Because both
commitments use the same basis ``G``, they differ only in the blinding
component, and the prover reveals ``delta = advice_blind - column_blind``
so the verifier checks ``C_advice == C_column + delta * W`` -- a
perfectly hiding, computationally binding link from the proof back to
the committed database (see :mod:`repro.system.prover_node`).

To keep that link exact, the commitment bakes in the same ``ZK_ROWS``
random tail rows the proving system reserves for blinding; the prover
replays them in every scan.  (Re-randomizing tails per proof would need
a commitment-shift argument; see DESIGN.md limitations.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro import parallel, telemetry
from repro.algebra.domain import EvaluationDomain, fft_in_place
from repro.algebra.field import Field, SCALAR_FIELD
from repro.commit.ipa import commit_polynomial
from repro.commit.params import PublicParams
from repro.db.database import Database
from repro.ecc.curve import (
    Point,
    curve_by_name,
    points_from_affine_tuples,
    points_to_affine_tuples,
)
from repro.ecc.msm import msm
from repro.plonkish.assignment import ZK_ROWS
from repro.wire import ByteReader, WireFormatError, point_wire_size

#: Wire-format header for a published database commitment.
COMMITMENT_WIRE_MAGIC = b"PDBC"


@dataclass
class ColumnSecret:
    """Prover-private randomness behind one column commitment."""

    blind: int
    tail: list[int] = field(repr=False)


@dataclass
class DatabaseCommitment:
    """The public commitment: per-column points plus the Merkle root."""

    k: int
    column_commitments: dict[tuple[str, str], Point]
    root: bytes

    def commitment_for(self, table: str, column: str) -> Point:
        return self.column_commitments[(table, column)]

    def to_bytes(self) -> bytes:
        """Canonical wire serialization of the published commitment
        (format ``PDBC``): the circuit size ``k``, every column
        commitment in sorted key order, then the Merkle root."""
        out = [
            COMMITMENT_WIRE_MAGIC,
            self.k.to_bytes(4, "little"),
            len(self.column_commitments).to_bytes(4, "little"),
        ]
        for (table, column), pt in sorted(self.column_commitments.items()):
            for name in (table, column):
                encoded = name.encode()
                out.append(len(encoded).to_bytes(2, "little"))
                out.append(encoded)
            out.append(pt.to_bytes())
        out.append(self.root)
        return b"".join(out)

    @classmethod
    def from_bytes(cls, curve, data: bytes) -> "DatabaseCommitment":
        """Strict inverse of :meth:`to_bytes`.

        Rejects malformed points, non-sorted or duplicate column keys,
        trailing bytes, and -- crucially -- a root that does not match
        the recomputed Merkle tree over the parsed commitments, so a
        relayed commitment cannot smuggle in unrooted columns.
        """
        point_size = point_wire_size(curve)
        reader = ByteReader(data)
        reader.expect(COMMITMENT_WIRE_MAGIC, "commitment header")
        k = reader.u32("commitment k")
        n_columns = reader.count(
            "column commitments",
            element_size=4 + point_size,
            max_count=reader.remaining // (4 + point_size) + 1,
        )
        commitments: dict[tuple[str, str], Point] = {}
        previous: tuple[str, str] | None = None
        for _ in range(n_columns):
            names = []
            for what in ("table name", "column name"):
                length = int.from_bytes(reader.take(2, what), "little")
                try:
                    names.append(reader.take(length, what).decode())
                except UnicodeDecodeError:
                    raise WireFormatError(f"invalid utf-8 in {what}") from None
            key = (names[0], names[1])
            if previous is not None and key <= previous:
                raise WireFormatError("column keys not strictly ascending")
            previous = key
            commitments[key] = reader.point(curve, f"column {key}")
        root = reader.take(32, "merkle root")
        reader.finish()
        leaves = [
            key[0].encode() + b"." + key[1].encode() + b":" + pt.to_bytes()
            for key, pt in sorted(commitments.items())
        ]
        if _merkle_root(leaves) != root:
            raise WireFormatError("merkle root does not match commitments")
        return cls(k=k, column_commitments=commitments, root=root)


@dataclass
class CommitmentSecrets:
    """Everything the prover must retain to link proofs to the
    commitment (never shared with verifiers)."""

    k: int
    columns: dict[tuple[str, str], ColumnSecret]


def _merkle_root(leaves: list[bytes]) -> bytes:
    """A plain binary Merkle tree (duplicate last node on odd levels)."""
    if not leaves:
        return hashlib.blake2b(b"empty", digest_size=32).digest()
    level = [
        hashlib.blake2b(b"leaf:" + leaf, digest_size=32).digest()
        for leaf in leaves
    ]
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            hashlib.blake2b(
                b"node:" + level[i] + level[i + 1], digest_size=32
            ).digest()
            for i in range(0, len(level), 2)
        ]
    return level[0]


def padded_column(
    values: list[int], k: int, tail: list[int]
) -> list[int]:
    """The exact vector that gets committed: data, zero padding up to
    the usable region, then the ZK tail rows."""
    n = 1 << k
    usable = n - ZK_ROWS
    if len(values) > usable:
        raise ValueError(
            f"column of {len(values)} rows exceeds usable rows {usable} "
            f"at k={k}"
        )
    if len(tail) != ZK_ROWS:
        raise ValueError(f"tail must have {ZK_ROWS} entries")
    return list(values) + [0] * (usable - len(values)) + list(tail)


def _column_commit_task(
    curve_name: str,
    g_coords: list[tuple[int, int]],
    w_coord: tuple[int, int],
    p: int,
    omega_inv: int,
    size_inv: int,
    jobs: list[tuple[list[int], int]],
) -> list[tuple[int, int]]:
    """Worker task: IFFT + Pedersen/IPA commitment of each padded column
    vector.  Pure in its arguments (the parent draws all randomness)."""
    curve = curve_by_name(curve_name)
    bases = points_from_affine_tuples(curve, g_coords) + points_from_affine_tuples(
        curve, [w_coord]
    )
    out = []
    for vector, blind in jobs:
        values = list(vector)
        fft_in_place(values, omega_inv, p)
        coeffs = [v * size_inv % p for v in values]
        out.append(msm(bases, coeffs + [blind]).to_affine())
    return out


def _commit_all_columns(
    db: Database,
    fit: PublicParams,
    k: int,
    field_: Field,
    secrets: dict[tuple[str, str], ColumnSecret],
) -> dict[tuple[str, str], Point]:
    """Commit every column (coefficient form) using the per-column
    randomness in ``secrets``; columns fan out across the worker pool.

    Commitment happens in coefficient form -- the same form the proving
    system commits advice columns in, so a scan links to this commitment
    through the blinding delta alone.
    """
    domain = EvaluationDomain(field_, k)
    keys: list[tuple[str, str]] = []
    jobs: list[tuple[list[int], int]] = []
    for table_name in sorted(db.tables):
        table = db.tables[table_name]
        for column_name in table.schema.column_names():
            secret = secrets[(table_name, column_name)]
            vector = padded_column(table.column(column_name), k, secret.tail)
            keys.append((table_name, column_name))
            jobs.append((vector, secret.blind))

    with telemetry.span("db.commit_columns", columns=len(jobs), k=k):
        points = _commit_column_jobs(domain, fit, field_, jobs)
    return dict(zip(keys, points))


def _commit_column_jobs(
    domain: EvaluationDomain,
    fit: PublicParams,
    field_: Field,
    jobs: list[tuple[list[int], int]],
) -> list[Point]:
    if parallel.is_parallel() and len(jobs) >= 2:
        g_coords = points_to_affine_tuples(list(fit.g))
        w_coord = fit.w.to_affine()
        tasks = [
            (
                fit.curve.name,
                g_coords,
                w_coord,
                field_.p,
                domain.omega_inv,
                domain.size_inv,
                chunk,
            )
            for chunk in parallel.chunked(jobs, parallel.workers())
        ]
        points: list[Point] = []
        for chunk in parallel.pmap(_column_commit_task, tasks):
            points.extend(points_from_affine_tuples(fit.curve, chunk))
    else:
        points = [
            commit_polynomial(fit, domain.ifft(vector), blind)
            for vector, blind in jobs
        ]
    return points


def commit_database(
    db: Database,
    params: PublicParams,
    k: int,
    field_: Field = SCALAR_FIELD,
) -> tuple[DatabaseCommitment, CommitmentSecrets]:
    """Commit every column of every table.

    ``k`` must be the circuit size queries will run at (the link checks
    require a shared basis) and large enough for the biggest table.
    """
    if (1 << k) > params.n:
        raise ValueError("k exceeds the public parameters' capacity")
    fit = params.truncated(k) if params.k > k else params
    secrets: dict[tuple[str, str], ColumnSecret] = {}
    for table_name in sorted(db.tables):
        table = db.tables[table_name]
        for column_name in table.schema.column_names():
            tail = [field_.rand() for _ in range(ZK_ROWS)]
            blind = field_.rand()
            secrets[(table_name, column_name)] = ColumnSecret(blind, tail)
    commitments = _commit_all_columns(db, fit, k, field_, secrets)
    leaves = [
        key[0].encode() + b"." + key[1].encode() + b":" + pt.to_bytes()
        for key, pt in sorted(commitments.items())
    ]
    return (
        DatabaseCommitment(k=k, column_commitments=commitments, root=_merkle_root(leaves)),
        CommitmentSecrets(k=k, columns=secrets),
    )


def audit_commitment(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> bool:
    """The auditor's check (trust model, paper section 3.3): given raw
    data and the prover's randomness, recompute and compare every
    column commitment and the root."""
    recomputed, _ = _recommit_with(db, params, commitment.k, secrets)
    if set(recomputed.column_commitments) != set(commitment.column_commitments):
        return False
    for key, pt in recomputed.column_commitments.items():
        if commitment.column_commitments[key] != pt:
            return False
    return recomputed.root == commitment.root


def _recommit_with(
    db: Database,
    params: PublicParams,
    k: int,
    secrets: CommitmentSecrets,
) -> tuple[DatabaseCommitment, CommitmentSecrets]:
    fit = params.truncated(k) if params.k > k else params
    commitments = _commit_all_columns(db, fit, k, SCALAR_FIELD, secrets.columns)
    leaves = [
        key[0].encode() + b"." + key[1].encode() + b":" + pt.to_bytes()
        for key, pt in sorted(commitments.items())
    ]
    return (
        DatabaseCommitment(k=k, column_commitments=commitments, root=_merkle_root(leaves)),
        secrets,
    )
