"""The database commitment (paper workflow phase 2, Table 3).

Every table column is committed with the IPA/Pedersen scheme over the
same generator basis the query circuits use; a Merkle tree over the
column commitments yields a single digest the prover publishes
irrevocably (e.g. on a blockchain) and an auditor can validate against
the raw database.

Binding queries to the commitment: a query circuit loads a table column
into an advice column and commits it with fresh blinding.  Because both
commitments use the same basis ``G``, they differ only in the blinding
component, and the prover reveals ``delta = advice_blind - column_blind``
so the verifier checks ``C_advice == C_column + delta * W`` -- a
perfectly hiding, computationally binding link from the proof back to
the committed database (see :mod:`repro.system.prover_node`).

To keep that link exact, the commitment bakes in the same ``ZK_ROWS``
random tail rows the proving system reserves for blinding; the prover
replays them in every scan.  (Re-randomizing tails per proof would need
a commitment-shift argument; see DESIGN.md limitations.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.algebra.field import Field, SCALAR_FIELD
from repro.commit.ipa import commit_polynomial
from repro.commit.params import PublicParams
from repro.db.database import Database
from repro.ecc.curve import Point
from repro.plonkish.assignment import ZK_ROWS


@dataclass
class ColumnSecret:
    """Prover-private randomness behind one column commitment."""

    blind: int
    tail: list[int] = field(repr=False)


@dataclass
class DatabaseCommitment:
    """The public commitment: per-column points plus the Merkle root."""

    k: int
    column_commitments: dict[tuple[str, str], Point]
    root: bytes

    def commitment_for(self, table: str, column: str) -> Point:
        return self.column_commitments[(table, column)]


@dataclass
class CommitmentSecrets:
    """Everything the prover must retain to link proofs to the
    commitment (never shared with verifiers)."""

    k: int
    columns: dict[tuple[str, str], ColumnSecret]


def _merkle_root(leaves: list[bytes]) -> bytes:
    """A plain binary Merkle tree (duplicate last node on odd levels)."""
    if not leaves:
        return hashlib.blake2b(b"empty", digest_size=32).digest()
    level = [
        hashlib.blake2b(b"leaf:" + leaf, digest_size=32).digest()
        for leaf in leaves
    ]
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            hashlib.blake2b(
                b"node:" + level[i] + level[i + 1], digest_size=32
            ).digest()
            for i in range(0, len(level), 2)
        ]
    return level[0]


def padded_column(
    values: list[int], k: int, tail: list[int]
) -> list[int]:
    """The exact vector that gets committed: data, zero padding up to
    the usable region, then the ZK tail rows."""
    n = 1 << k
    usable = n - ZK_ROWS
    if len(values) > usable:
        raise ValueError(
            f"column of {len(values)} rows exceeds usable rows {usable} "
            f"at k={k}"
        )
    if len(tail) != ZK_ROWS:
        raise ValueError(f"tail must have {ZK_ROWS} entries")
    return list(values) + [0] * (usable - len(values)) + list(tail)


def commit_database(
    db: Database,
    params: PublicParams,
    k: int,
    field_: Field = SCALAR_FIELD,
) -> tuple[DatabaseCommitment, CommitmentSecrets]:
    """Commit every column of every table.

    ``k`` must be the circuit size queries will run at (the link checks
    require a shared basis) and large enough for the biggest table.
    """
    if (1 << k) > params.n:
        raise ValueError("k exceeds the public parameters' capacity")
    from repro.algebra.domain import EvaluationDomain

    domain = EvaluationDomain(field_, k)
    fit = params.truncated(k) if params.k > k else params
    commitments: dict[tuple[str, str], Point] = {}
    secrets: dict[tuple[str, str], ColumnSecret] = {}
    for table_name in sorted(db.tables):
        table = db.tables[table_name]
        for column_name in table.schema.column_names():
            tail = [field_.rand() for _ in range(ZK_ROWS)]
            blind = field_.rand()
            vector = padded_column(table.column(column_name), k, tail)
            # Commit in coefficient form -- the same form the proving
            # system commits advice columns in, so a scan links to this
            # commitment through the blinding delta alone.
            commitments[(table_name, column_name)] = commit_polynomial(
                fit, domain.ifft(vector), blind
            )
            secrets[(table_name, column_name)] = ColumnSecret(blind, tail)
    leaves = [
        key[0].encode() + b"." + key[1].encode() + b":" + pt.to_bytes()
        for key, pt in sorted(commitments.items())
    ]
    return (
        DatabaseCommitment(k=k, column_commitments=commitments, root=_merkle_root(leaves)),
        CommitmentSecrets(k=k, columns=secrets),
    )


def audit_commitment(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> bool:
    """The auditor's check (trust model, paper section 3.3): given raw
    data and the prover's randomness, recompute and compare every
    column commitment and the root."""
    recomputed, _ = _recommit_with(db, params, commitment.k, secrets)
    if set(recomputed.column_commitments) != set(commitment.column_commitments):
        return False
    for key, pt in recomputed.column_commitments.items():
        if commitment.column_commitments[key] != pt:
            return False
    return recomputed.root == commitment.root


def _recommit_with(
    db: Database,
    params: PublicParams,
    k: int,
    secrets: CommitmentSecrets,
) -> tuple[DatabaseCommitment, CommitmentSecrets]:
    from repro.algebra.domain import EvaluationDomain

    domain = EvaluationDomain(SCALAR_FIELD, k)
    fit = params.truncated(k) if params.k > k else params
    commitments: dict[tuple[str, str], Point] = {}
    for table_name in sorted(db.tables):
        table = db.tables[table_name]
        for column_name in table.schema.column_names():
            secret = secrets.columns[(table_name, column_name)]
            vector = padded_column(table.column(column_name), k, secret.tail)
            commitments[(table_name, column_name)] = commit_polynomial(
                fit, domain.ifft(vector), secret.blind
            )
    leaves = [
        key[0].encode() + b"." + key[1].encode() + b":" + pt.to_bytes()
        for key, pt in sorted(commitments.items())
    ]
    return (
        DatabaseCommitment(k=k, column_commitments=commitments, root=_merkle_root(leaves)),
        secrets,
    )
