"""SQL value types and their integer semantics.

Following the paper's evaluation setup ("we converted all floating
point operations to 64-bit integer ones"), every SQL value is
represented as a nonnegative integer inside the circuit:

- ``INT``: the value itself (must be >= 0; TPC-H has no negatives),
- ``DECIMAL``: fixed-point, scaled by 100 (two digits),
- ``DATE``: days since 1970-01-01 (always >= 1 for TPC-H dates),
- ``STRING``: dictionary code >= 1, assigned in lexicographic order so
  code comparisons realize string ORDER BY.

Multiplying two DECIMALs multiplies the scales; the planner tracks the
scale of every expression so results decode correctly.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

#: Fixed-point scale for DECIMAL columns (two fractional digits).
DECIMAL_SCALE = 100

_EPOCH = datetime.date(1970, 1, 1)


class SqlType(enum.Enum):
    INT = "int"
    DECIMAL = "decimal"
    DATE = "date"
    STRING = "string"


@dataclass(frozen=True)
class ColumnType:
    """A type plus its fixed-point scale (1 for non-decimals)."""

    base: SqlType

    @property
    def scale(self) -> int:
        return DECIMAL_SCALE if self.base is SqlType.DECIMAL else 1


INT = ColumnType(SqlType.INT)
DECIMAL = ColumnType(SqlType.DECIMAL)
DATE = ColumnType(SqlType.DATE)
STRING = ColumnType(SqlType.STRING)


def date_to_int(value: datetime.date | str) -> int:
    """Encode a date as days since the epoch."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    days = (value - _EPOCH).days
    if days < 1:
        raise ValueError(f"dates before 1970-01-02 unsupported: {value}")
    return days


def int_to_date(days: int) -> datetime.date:
    return _EPOCH + datetime.timedelta(days=days)


def decimal_to_int(value: float | int) -> int:
    """Fixed-point encode with two digits (banker's issues avoided by
    round-half-away handled upstream; TPC-H generates exact cents)."""
    scaled = round(value * DECIMAL_SCALE)
    if scaled < 0:
        raise ValueError(f"negative decimals unsupported: {value}")
    return int(scaled)


def int_to_decimal(value: int, scale: int = DECIMAL_SCALE) -> float:
    return value / scale
