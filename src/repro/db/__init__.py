"""Database substrate: typed column-store tables, value encoding into
the circuit field, and the cryptographic database commitment of the
paper's workflow phase 2."""

from repro.db.types import SqlType, ColumnType
from repro.db.schema import ColumnDef, TableSchema
from repro.db.table import Table
from repro.db.database import Database
from repro.db.encoding import Encoder
from repro.db.commitment import DatabaseCommitment, commit_database

__all__ = [
    "SqlType",
    "ColumnType",
    "ColumnDef",
    "TableSchema",
    "Table",
    "Database",
    "Encoder",
    "DatabaseCommitment",
    "commit_database",
]
