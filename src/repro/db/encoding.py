"""Value encoding between SQL space and the circuit field.

The :class:`Encoder` owns the string dictionaries (one per column) and
converts raw Python values into the nonnegative integers the circuits
operate on, and back for result presentation.

Encoding invariants the gates rely on:

- all encoded values are nonnegative and fit in 64 bits,
- join keys, group keys and string codes are >= 1 (zero is reserved for
  dummy/padding rows).
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.db.schema import TableSchema
from repro.db.types import (
    ColumnType,
    SqlType,
    date_to_int,
    decimal_to_int,
    int_to_date,
    int_to_decimal,
)

#: All encoded values must stay below this (the comparison gates
#: decompose differences into 8 byte-limbs).
VALUE_BOUND = 1 << 62


class Encoder:
    """Encodes/decodes values and maintains per-column dictionaries."""

    def __init__(self) -> None:
        # column qualified name -> {string: code}, {code: string}
        self._dicts: dict[str, dict[str, int]] = {}
        self._rev: dict[str, dict[int, str]] = {}

    def build_dictionary(self, qualified: str, values: list[str]) -> None:
        """Assign codes 1..n to the distinct strings, sorted, so code
        order realizes lexicographic order."""
        codes = {s: i + 1 for i, s in enumerate(sorted(set(values)))}
        self._dicts[qualified] = codes
        self._rev[qualified] = {c: s for s, c in codes.items()}

    def encode(self, qualified: str, col_type: ColumnType, value: Any) -> int:
        base = col_type.base
        if base is SqlType.INT:
            encoded = int(value)
        elif base is SqlType.DECIMAL:
            encoded = decimal_to_int(value) if not isinstance(value, int) else value
        elif base is SqlType.DATE:
            if isinstance(value, int):
                encoded = value
            else:
                encoded = date_to_int(value)
        elif base is SqlType.STRING:
            codes = self._dicts.get(qualified)
            if codes is None or value not in codes:
                raise KeyError(
                    f"string {value!r} not in dictionary for {qualified}"
                )
            encoded = codes[value]
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown type {base}")
        if not 0 <= encoded < VALUE_BOUND:
            raise ValueError(f"encoded value {encoded} out of range")
        return encoded

    def decode(self, qualified: str, col_type: ColumnType, value: int) -> Any:
        base = col_type.base
        if base is SqlType.INT:
            return value
        if base is SqlType.DECIMAL:
            return int_to_decimal(value)
        if base is SqlType.DATE:
            return int_to_date(value)
        if base is SqlType.STRING:
            return self._rev[qualified][value]
        raise TypeError(f"unknown type {base}")  # pragma: no cover

    def decode_literal(self, qualified: str, value: str) -> int:
        """Encode a query literal against a column's dictionary (for
        predicates like ``c_mktsegment = 'BUILDING'``)."""
        codes = self._dicts.get(qualified, {})
        if value not in codes:
            # Literal not present in the data: map to an impossible code.
            return VALUE_BOUND - 1
        return codes[value]

    def dictionary(self, qualified: str) -> dict[str, int]:
        return dict(self._dicts.get(qualified, {}))
