"""Table schemas and the catalog metadata the planner needs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.types import ColumnType


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: ColumnType


@dataclass
class TableSchema:
    """Schema of one table.

    ``primary_key`` names the single-attribute primary key (compound
    keys are modelled by a synthetic key column, as TPC-H's ``lineitem``
    does with ``l_rowid``).  ``foreign_keys`` maps a local column to
    ``(table, column)`` it references -- the planner uses this to pick
    the PK-FK join gate.
    """

    name: str
    columns: list[ColumnDef]
    primary_key: str | None = None
    foreign_keys: dict[str, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {self.name}")
        if self.primary_key is not None and self.primary_key not in names:
            raise ValueError(
                f"primary key {self.primary_key} not a column of {self.name}"
            )
        for local in self.foreign_keys:
            if local not in names:
                raise ValueError(f"foreign key {local} not a column of {self.name}")

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)
