"""Radix-2 FFT evaluation domains.

A PLONKish circuit with ``2^k`` rows is interpolated over the
multiplicative subgroup ``H = <omega>`` of order ``2^k``.  The quotient
(vanishing) argument needs evaluations on an *extended* coset domain of
size ``2^(k + extension)`` so that products of column polynomials -- whose
degree exceeds ``2^k`` -- are still uniquely determined.

All transforms operate in place on lists of raw ints.
"""

from __future__ import annotations

from repro import kernels, parallel, telemetry
from repro.algebra import backend as field_backend
from repro.algebra import fft_plan
from repro.algebra.field import Field

#: Batched transforms only fan out to workers when each vector is at
#: least this long -- below it, pickling the data costs more than the
#: transform.
PARALLEL_MIN_SIZE = 256


def _bit_reverse_permute(values: list[int]) -> None:
    """Reorder ``values`` (length a power of two) in bit-reversed index
    order, in place."""
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def fft_in_place(values: list[int], omega: int, p: int) -> None:
    """Iterative Cooley-Tukey NTT over GF(p).

    ``omega`` must be a primitive n-th root of unity for n = len(values).
    With the kernel fast path enabled the bit-reversal indices and
    per-stage twiddle ladders come from the per-``(n, omega, p)`` plan
    cache (:mod:`repro.algebra.fft_plan`) instead of being rebuilt per
    call; the butterflies are identical, so outputs match exactly.  The
    active field backend may take the transform over entirely (numpy
    limb-vector butterflies); its output is bit-identical to the plan
    path, so proofs do not depend on which engine ran.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("fft size must be a power of two")
    telemetry.incr("fft.calls")
    telemetry.incr("fft.points", n)
    telemetry.observe("fft.points_per_call", n)
    if kernels.fastpath_enabled():
        out = field_backend.active().ntt(values, omega, p)
        if out is not None:
            values[:] = out
            return
        fft_plan.ntt_in_place(values, fft_plan.plan_for(n, omega, p))
        return
    _bit_reverse_permute(values)
    # Precompute the twiddle ladder: omega^(n/2m) for each stage.
    length = 2
    while length <= n:
        w_m = pow(omega, n // length, p)
        half = length // 2
        # Twiddles for this stage.
        ws = [1] * half
        for i in range(1, half):
            ws[i] = ws[i - 1] * w_m % p
        for start in range(0, n, length):
            for i in range(half):
                lo = values[start + i]
                hi = values[start + i + half] * ws[i] % p
                values[start + i] = (lo + hi) % p
                values[start + i + half] = (lo - hi) % p
        length *= 2


def _fft_task(vectors: list[list[int]], omega: int, p: int) -> list[list[int]]:
    """Worker task: forward NTT of every vector (top-level, picklable)."""
    out = []
    for vec in vectors:
        values = list(vec)
        fft_in_place(values, omega, p)
        out.append(values)
    return out


def _ifft_task(
    vectors: list[list[int]], omega_inv: int, size_inv: int, p: int
) -> list[list[int]]:
    """Worker task: inverse NTT + 1/n scaling of every vector."""
    out = []
    for vec in vectors:
        values = list(vec)
        fft_in_place(values, omega_inv, p)
        out.append([v * size_inv % p for v in values])
    return out


class EvaluationDomain:
    """The order-``2^k`` multiplicative subgroup of a field, with
    forward/inverse NTTs and coset transforms.

    Parameters
    ----------
    field:
        The prime field (two-adicity must be at least ``k``).
    k:
        log2 of the domain size.
    """

    __slots__ = (
        "field",
        "k",
        "size",
        "omega",
        "omega_inv",
        "size_inv",
        "_shift_ladders",
    )

    def __init__(self, field: Field, k: int):
        if k > field.two_adicity:
            raise ValueError(
                f"domain 2^{k} exceeds field two-adicity {field.two_adicity}"
            )
        self.field = field
        self.k = k
        self.size = 1 << k
        self.omega = field.root_of_unity_of_order(self.size)
        self.omega_inv = field.inv(self.omega)
        self.size_inv = field.inv(self.size)
        # Cached coset power ladders [1, shift, shift^2, ..] keyed by
        # shift (kernel fast path; a domain sees one or two shifts).
        self._shift_ladders: dict[int, list[int]] = {}

    def _shift_powers(self, shift: int) -> list[int]:
        """The full-size power ladder of ``shift``, cached per domain."""
        p = self.field.p
        shift %= p
        ladder = self._shift_ladders.get(shift)
        if ladder is None:
            ladder = [1] * self.size
            for i in range(1, self.size):
                ladder[i] = ladder[i - 1] * shift % p
            self._shift_ladders[shift] = ladder
        return ladder

    # -- transforms -----------------------------------------------------

    def fft(self, coeffs: list[int]) -> list[int]:
        """Coefficients -> evaluations over H.  Input shorter than the
        domain is zero-padded; longer input is rejected."""
        if len(coeffs) > self.size:
            raise ValueError("polynomial larger than domain")
        values = list(coeffs) + [0] * (self.size - len(coeffs))
        fft_in_place(values, self.omega, self.field.p)
        return values

    def ifft(self, evals: list[int]) -> list[int]:
        """Evaluations over H -> coefficients."""
        if len(evals) != self.size:
            raise ValueError("evaluation vector must match domain size")
        values = list(evals)
        fft_in_place(values, self.omega_inv, self.field.p)
        p, n_inv = self.field.p, self.size_inv
        return [v * n_inv % p for v in values]

    def _coset_scale(self, values: list[int], count: int, shift: int) -> None:
        """Scale ``values[i] *= shift^i`` for ``i < count`` in place,
        through the cached ladder on the kernel fast path."""
        p = self.field.p
        if kernels.fastpath_enabled():
            ladder = self._shift_powers(shift)
            for i in range(count):
                values[i] = values[i] * ladder[i] % p
            return
        power = 1
        for i in range(count):
            values[i] = values[i] * power % p
            power = power * shift % p

    def coset_fft(self, coeffs: list[int], shift: int) -> list[int]:
        """Coefficients -> evaluations over the coset ``shift * H``."""
        scaled = list(coeffs) + [0] * (self.size - len(coeffs))
        self._coset_scale(scaled, len(coeffs), shift)
        fft_in_place(scaled, self.omega, self.field.p)
        return scaled

    def coset_ifft(self, evals: list[int], shift: int) -> list[int]:
        """Evaluations over ``shift * H`` -> coefficients."""
        coeffs = self.ifft(evals)
        shift_inv = self.field.inv(shift)
        self._coset_scale(coeffs, len(coeffs), shift_inv)
        return coeffs

    # -- batched transforms -----------------------------------------------

    def _dispatch_many(self, task, vectors: list[list[int]], *extra):
        """Chunk ``vectors`` across the worker pool (order-preserving;
        serial fallback runs the identical task function inline)."""
        if (
            not vectors
            or len(vectors) < 2
            or self.size < PARALLEL_MIN_SIZE
            or not parallel.is_parallel()
        ):
            return task(vectors, *extra)
        chunks = parallel.chunked(vectors, parallel.workers())
        out: list[list[int]] = []
        for part in parallel.pmap(task, [(c, *extra) for c in chunks]):
            out.extend(part)
        return out

    def fft_many(self, coeffs_list: list[list[int]]) -> list[list[int]]:
        """:meth:`fft` of many polynomials, in parallel when configured."""
        padded = []
        for coeffs in coeffs_list:
            if len(coeffs) > self.size:
                raise ValueError("polynomial larger than domain")
            padded.append(list(coeffs) + [0] * (self.size - len(coeffs)))
        return self._dispatch_many(_fft_task, padded, self.omega, self.field.p)

    def ifft_many(self, evals_list: list[list[int]]) -> list[list[int]]:
        """:meth:`ifft` of many evaluation vectors, in parallel when
        configured (bit-identical to the serial path)."""
        for evals in evals_list:
            if len(evals) != self.size:
                raise ValueError("evaluation vector must match domain size")
        return self._dispatch_many(
            _ifft_task,
            [list(e) for e in evals_list],
            self.omega_inv,
            self.size_inv,
            self.field.p,
        )

    def coset_fft_many(
        self, coeffs_list: list[list[int]], shift: int
    ) -> list[list[int]]:
        """:meth:`coset_fft` of many polynomials: the coset scaling runs
        in the parent (cheap), the NTTs fan out across workers."""
        p = self.field.p
        scaled_list = []
        for coeffs in coeffs_list:
            if len(coeffs) > self.size:
                raise ValueError("polynomial larger than domain")
            scaled = list(coeffs) + [0] * (self.size - len(coeffs))
            self._coset_scale(scaled, len(coeffs), shift)
            scaled_list.append(scaled)
        return self._dispatch_many(_fft_task, scaled_list, self.omega, p)

    # -- helpers ----------------------------------------------------------

    def elements(self) -> list[int]:
        """All domain elements ``[1, omega, omega^2, ...]`` in order."""
        p = self.field.p
        out = [1] * self.size
        for i in range(1, self.size):
            out[i] = out[i - 1] * self.omega % p
        return out

    def vanishing_eval(self, x: int) -> int:
        """Evaluate the vanishing polynomial ``Z_H(X) = X^n - 1`` at x."""
        return (pow(x, self.size, self.field.p) - 1) % self.field.p

    def rotated_point(self, x: int, rotation: int) -> int:
        """``x * omega^rotation`` -- the query point for a column opened
        at a row offset (PLONK "rotation")."""
        p = self.field.p
        if rotation >= 0:
            return x * pow(self.omega, rotation, p) % p
        return x * pow(self.omega_inv, -rotation, p) % p

    def lagrange_basis_evals(self, x: int, count: int) -> list[int]:
        """Evaluate the first ``count`` Lagrange basis polynomials
        ``L_0(x) .. L_{count-1}(x)`` with ONE batch inversion.

        Matches ``[self.lagrange_basis_eval(i, x) for i in range(count)]``
        but replaces the per-basis field inversion (a ~254-bit modexp
        each) with a single Montgomery batch inversion -- the verifier
        uses this to evaluate instance columns at each distinct opening
        point (see ``proving/verifier.py``).

        The active field backend may fuse the whole computation: the
        identity ``L_i(x) = (z/n) / (x * omega^-i - 1)`` (multiply the
        numerator and denominator by ``omega^-i``) lets a vector engine
        generate the denominators, invert them with a resident product
        tree, and scale them without crossing the int boundary between
        steps.  Same field elements out either way.
        """
        p = self.field.p
        count = min(count, self.size)
        x = x % p
        z = self.vanishing_eval(x)
        if z == 0:
            # x lies in the domain: L_i(omega^j) = [i == j].
            w = 1
            out = []
            for _ in range(count):
                out.append(1 if x == w else 0)
                w = w * self.omega % p
            return out
        n_inv = self.size_inv
        fused = field_backend.active().lagrange_evals(
            x,
            count,
            p=p,
            omega=self.omega,
            omega_inv=self.omega_inv,
            size=self.size,
            kk=z * n_inv % p,
        )
        if fused is not None:
            # The reference path counts one inversion per basis via
            # Field.batch_inv; keep the counters backend-independent.
            telemetry.incr("field.inversions", count)
            return fused
        omegas = [1] * count
        for i in range(1, count):
            omegas[i] = omegas[i - 1] * self.omega % p
        denominators = [(x - w) % p for w in omegas]
        inverses = self.field.batch_inv(denominators)
        return [
            z * w % p * n_inv % p * inv % p
            for w, inv in zip(omegas, inverses)
        ]

    def lagrange_basis_eval(self, i: int, x: int) -> int:
        """Evaluate the i-th Lagrange basis polynomial L_i(X) over H at
        an arbitrary point x (used by the verifier for instance columns).

        L_i(x) = (omega^i / n) * (x^n - 1) / (x - omega^i).
        """
        p = self.field.p
        omega_i = pow(self.omega, i, p)
        num = self.vanishing_eval(x) * omega_i % p * self.size_inv % p
        den = (x - omega_i) % p
        if den == 0:
            # x is in the domain: L_i(omega^j) = [i == j].
            return 1 if x == omega_i else 0
        return num * self.field.inv(den) % p

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EvaluationDomain(k={self.k}, n={self.size})"
