"""Prime-field arithmetic for the Pasta curves.

Two fields are provided as module-level singletons:

- :data:`BASE_FIELD` -- the Pallas base field ``Fp`` (the coordinate
  field of Pallas points),
- :data:`SCALAR_FIELD` -- the Pallas scalar field ``Fq`` (the field the
  PLONKish circuits are arithmetized over; equals the Vesta base field).

Both primes have two-adicity 32 (``2^32 | p - 1``), which is what makes
radix-2 FFTs over them possible -- the property Halo2 and this
reproduction rely on for the vanishing argument.

Design note: raw field elements are plain Python ``int`` values in
``[0, p)``.  A :class:`Field` object is the arithmetic context (it knows
the modulus and caches derived constants such as roots of unity), and
:class:`Felt` is a thin operator-overloaded wrapper used at public API
boundaries and in tests.  Hot loops in the prover work directly on ints.
"""

from __future__ import annotations

import hashlib
import random as _random
import secrets
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro import telemetry
from repro.algebra import backend as field_backend
from repro.errors import BatchInversionError

#: Thread-local override stream for :meth:`Field.rand` (see
#: :func:`deterministic_rng`).  Thread-local so concurrent proving jobs
#: with independent seeds never interleave their draws.
_RNG_LOCAL = threading.local()


@contextmanager
def deterministic_rng(seed: int) -> Iterator[None]:
    """Route every ``Field.rand()`` call on this thread through a
    PRNG seeded with ``seed`` for the duration of the scope.

    This exists for *reproducibility*, not security: two proves of the
    same statement under the same seed draw identical blinding factors
    and therefore serialize to identical wire bytes.  The proving
    service uses it to let clients cross-check an async proof against a
    synchronous one (and tests to pin proof bytes).  Production proving
    must run outside this scope, where :meth:`Field.rand` keeps using
    the ``secrets`` CSPRNG.

    Scopes nest; each ``with`` installs a fresh stream and restores the
    previous one on exit.  A forked worker inherits the installing
    thread's stream, but all blinding draws happen on the proving
    thread itself, so parallel-backend fan-out does not perturb the
    sequence.
    """
    previous = getattr(_RNG_LOCAL, "rng", None)
    _RNG_LOCAL.rng = _random.Random(seed)
    try:
        yield
    finally:
        _RNG_LOCAL.rng = previous

# The Pasta primes (as used by zcash/halo2).
PALLAS_BASE_MODULUS = (
    0x40000000000000000000000000000000224698FC094CF91B992D30ED00000001
)
PALLAS_SCALAR_MODULUS = (
    0x40000000000000000000000000000000224698FC0994A8DD8C46EB2100000001
)


#: Minimum vector length before batch inversion fans out to workers
#: (below it the per-chunk pickle + modexp overhead dominates).
_PARALLEL_INV_MIN = 8192


def montgomery_batch_inv(values: Sequence[int], p: int) -> list[int]:
    """Montgomery batch inversion: O(n) multiplications, one modexp.

    Does NOT feed the ``field.inversions`` telemetry counter -- use
    :meth:`Field.batch_inv` for workload inversions.  This raw form is
    for bookkeeping conversions (point normalization, worker chunks)
    whose call count depends on the execution backend, which would make
    serial and parallel counter totals disagree.

    A zero input raises :class:`~repro.errors.BatchInversionError`
    naming the offending index (detected up front, before any work).
    The active field backend may take over the ladder (gmpy2's GMP
    multiply); results are identical either way.
    """
    n = len(values)
    vals = [v % p for v in values]
    if 0 in vals:
        raise BatchInversionError(vals.index(0))
    out = field_backend.active().batch_inv(vals, p)
    if out is not None:
        return out
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(vals):
        prefix[i] = acc
        acc = acc * v % p
    inv_acc = pow(acc, p - 2, p)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = prefix[i] * inv_acc % p
        inv_acc = inv_acc * vals[i] % p
    return out


def _batch_inv_task(values: list[int], p: int) -> list[int]:
    """Worker task: Montgomery batch inversion of one chunk."""
    return montgomery_batch_inv(values, p)


class Field:
    """An arithmetic context for a prime field GF(p).

    All methods take and return plain integers reduced modulo ``p``.
    The context precomputes the field's two-adicity and a maximal-order
    2-power root of unity, which the FFT domains build on.
    """

    __slots__ = (
        "p",
        "name",
        "two_adicity",
        "root_of_unity",
        "multiplicative_generator",
        "_byte_length",
        "_tonelli_q",
    )

    def __init__(self, modulus: int, name: str = "Fp"):
        if modulus < 3 or modulus % 2 == 0:
            raise ValueError(f"modulus must be an odd prime, got {modulus}")
        self.p = modulus
        self.name = name
        self._byte_length = (modulus.bit_length() + 7) // 8

        # Two-adicity: the largest s with 2^s | p - 1.  The odd part t
        # is kept as well: it is the q of the p - 1 = q * 2^s Tonelli-
        # Shanks decomposition, which sqrt() would otherwise re-derive
        # on every call (hash-to-curve does one sqrt per attempt).
        t = modulus - 1
        s = 0
        while t % 2 == 0:
            t //= 2
            s += 1
        self.two_adicity = s
        self._tonelli_q = t

        # A quadratic non-residue g gives a root of unity of exact
        # order 2^s via g^t.  Small candidates are tested with the
        # Euler criterion.
        generator = 0
        for candidate in range(2, 1000):
            if pow(candidate, (modulus - 1) // 2, modulus) == modulus - 1:
                generator = candidate
                break
        if not generator:
            raise ValueError("could not find a quadratic non-residue")
        self.multiplicative_generator = generator
        self.root_of_unity = pow(generator, t, modulus)

    # -- basic ops ----------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def square(self, a: int) -> int:
        return (a * a) % self.p

    def pow(self, a: int, e: int) -> int:
        if e < 0:
            return pow(self.inv(a), -e, self.p)
        return pow(a, e, self.p)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on 0."""
        if a % self.p == 0:
            raise ZeroDivisionError(f"0 has no inverse in {self.name}")
        telemetry.incr("field.inversions")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return (a * self.inv(b)) % self.p

    def reduce(self, a: int) -> int:
        return a % self.p

    # -- batch operations ----------------------------------------------

    def batch_inv(self, values: Sequence[int]) -> list[int]:
        """Invert many nonzero elements with a single field inversion.

        Montgomery's trick: O(n) multiplications plus one inversion.
        Zero inputs raise :class:`~repro.errors.BatchInversionError`
        naming the offending index (callers in the prover guarantee
        nonzero denominators by construction; when that contract breaks
        the error says exactly where).

        Large inputs are inverted in chunks across the worker pool when
        one is configured (one extra modexp per chunk; the inverses
        themselves are unique, so results are identical either way).
        """
        p = self.p
        n = len(values)
        if n == 0:
            return []
        # Counted once per element here, before any parallel dispatch,
        # so serial and parallel totals agree (the per-chunk modexps in
        # workers are an implementation detail, not a workload metric).
        telemetry.incr("field.inversions", n)
        if n >= _PARALLEL_INV_MIN:
            from repro import parallel

            if parallel.is_parallel():
                chunks = parallel.chunked(list(values), parallel.workers())
                out: list[int] = []
                for part in parallel.pmap(
                    _batch_inv_task, [(chunk, p) for chunk in chunks]
                ):
                    out.extend(part)
                return out
        return montgomery_batch_inv(values, p)

    def sum(self, values: Iterable[int]) -> int:
        total = 0
        for v in values:
            total += v
        return total % self.p

    def product(self, values: Iterable[int]) -> int:
        acc = 1
        p = self.p
        for v in values:
            acc = acc * v % p
        return acc

    # -- square roots (needed for hash-to-curve) ------------------------

    def legendre(self, a: int) -> int:
        """Legendre symbol: 1 for QR, -1 for non-residue, 0 for zero."""
        a %= self.p
        if a == 0:
            return 0
        r = pow(a, (self.p - 1) // 2, self.p)
        return 1 if r == 1 else -1

    def sqrt(self, a: int) -> int | None:
        """Tonelli-Shanks square root, or None when ``a`` is a non-residue."""
        p = self.p
        a %= p
        if a == 0:
            return 0
        if self.legendre(a) != 1:
            return None
        # p - 1 = q * 2^s with q odd, decomposed once in __init__; the
        # non-residue power z^q is exactly root_of_unity.
        q, s = self._tonelli_q, self.two_adicity
        m, c, t, r = s, self.root_of_unity, pow(a, q, p), pow(a, (q + 1) // 2, p)
        while t != 1:
            # Find least i with t^(2^i) == 1.
            i, t2i = 0, t
            while t2i != 1:
                t2i = t2i * t2i % p
                i += 1
            b = pow(c, 1 << (m - i - 1), p)
            m, c = i, b * b % p
            t, r = t * c % p, r * b % p
        return min(r, p - r)

    # -- element construction -------------------------------------------

    def rand(self) -> int:
        """A uniformly random field element (cryptographic randomness,
        unless the calling thread is inside :func:`deterministic_rng`)."""
        rng = getattr(_RNG_LOCAL, "rng", None)
        if rng is not None:
            return rng.randrange(self.p)
        return secrets.randbelow(self.p)

    def from_signed(self, v: int) -> int:
        """Embed a signed integer, mapping negatives to ``p - |v|``."""
        return v % self.p

    def to_signed(self, a: int) -> int:
        """Lift back to a signed integer, choosing the representative
        closest to zero (used to decode small query outputs)."""
        a %= self.p
        return a - self.p if a > self.p // 2 else a

    def from_bytes(self, data: bytes) -> int:
        return int.from_bytes(data, "little") % self.p

    def to_bytes(self, a: int) -> bytes:
        return (a % self.p).to_bytes(self._byte_length, "little")

    def hash_to_field(self, *chunks: bytes) -> int:
        """Hash arbitrary bytes to a field element (64-byte expand to
        keep the output statistically uniform)."""
        h = hashlib.blake2b(digest_size=64)
        for chunk in chunks:
            h.update(chunk)
        return int.from_bytes(h.digest(), "little") % self.p

    # -- roots of unity ---------------------------------------------------

    def root_of_unity_of_order(self, order: int) -> int:
        """A primitive ``order``-th root of unity; order must be a power
        of two not exceeding ``2^two_adicity``."""
        if order <= 0 or order & (order - 1):
            raise ValueError(f"order must be a power of two, got {order}")
        log_order = order.bit_length() - 1
        if log_order > self.two_adicity:
            raise ValueError(
                f"no root of unity of order 2^{log_order} in {self.name} "
                f"(two-adicity {self.two_adicity})"
            )
        omega = self.root_of_unity
        for _ in range(self.two_adicity - log_order):
            omega = omega * omega % self.p
        return omega

    # -- misc ------------------------------------------------------------

    def felt(self, v: int) -> "Felt":
        return Felt(self, v % self.p)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Field({self.name}, 2^{self.p.bit_length() - 1}-ish modulus)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Field) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("Field", self.p))


class Felt:
    """Operator-overloaded field element bound to a :class:`Field`.

    Arithmetic between a ``Felt`` and a plain ``int`` is supported and
    returns a ``Felt``; mixing elements of different fields raises.
    """

    __slots__ = ("field", "n")

    def __init__(self, field: Field, n: int):
        self.field = field
        self.n = n % field.p

    def _coerce(self, other: "Felt | int") -> int:
        if isinstance(other, Felt):
            if other.field.p != self.field.p:
                raise ValueError("field mismatch")
            return other.n
        if isinstance(other, int):
            return other % self.field.p
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self.n + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self.n - self._coerce(other))

    def __rsub__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self._coerce(other) - self.n)

    def __mul__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self.n * self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self.n * self.field.inv(self._coerce(other)))

    def __rtruediv__(self, other: "Felt | int") -> "Felt":
        return Felt(self.field, self._coerce(other) * self.field.inv(self.n))

    def __pow__(self, e: int) -> "Felt":
        return Felt(self.field, self.field.pow(self.n, e))

    def __neg__(self) -> "Felt":
        return Felt(self.field, -self.n)

    def inv(self) -> "Felt":
        return Felt(self.field, self.field.inv(self.n))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Felt):
            return other.field.p == self.field.p and other.n == self.n
        if isinstance(other, int):
            return self.n == other % self.field.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.n))

    def __int__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Felt({self.n})"


#: Pallas base field -- coordinates of Pallas curve points live here.
BASE_FIELD = Field(PALLAS_BASE_MODULUS, name="Fp")

#: Pallas scalar field -- the circuit field used throughout PoneglyphDB.
SCALAR_FIELD = Field(PALLAS_SCALAR_MODULUS, name="Fq")
