"""Dense univariate polynomials over a prime field.

Coefficients are stored little-endian (``coeffs[i]`` multiplies ``X^i``)
as raw ints.  The class is used at API boundaries (commitments, opening
proofs, tests); the prover's hot paths manipulate coefficient lists
directly through :mod:`repro.algebra.domain`.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.domain import EvaluationDomain
from repro.algebra.field import Field


class Polynomial:
    """A dense polynomial with coefficients in ``field``."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: Field, coeffs: Sequence[int]):
        p = field.p
        trimmed = [c % p for c in coeffs]
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        self.field = field
        self.coeffs = trimmed

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        return cls(field, [])

    @classmethod
    def constant(cls, field: Field, c: int) -> "Polynomial":
        return cls(field, [c])

    @classmethod
    def monomial(cls, field: Field, degree: int, c: int = 1) -> "Polynomial":
        return cls(field, [0] * degree + [c])

    @classmethod
    def interpolate(
        cls, field: Field, xs: Sequence[int], ys: Sequence[int]
    ) -> "Polynomial":
        """Lagrange interpolation through distinct points (x_i, y_i).

        O(n^2); used for small verifier-side polynomials, not the prover.
        """
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        p = field.p
        n = len(xs)
        if n == 0:
            return cls.zero(field)
        # full(X) = prod (X - x_j), computed once; basis_i = full / (X - x_i).
        full = [1]
        for x in xs:
            nxt = [0] * (len(full) + 1)
            for i, c in enumerate(full):
                nxt[i + 1] = (nxt[i + 1] + c) % p
                nxt[i] = (nxt[i] - c * x) % p
            full = nxt
        result = [0] * n
        denoms = []
        bases = []
        for i in range(n):
            basis = _divide_by_linear(full, xs[i], p)
            denom = _eval_raw(basis, xs[i], p)
            bases.append(basis)
            denoms.append(denom)
        inv_denoms = field.batch_inv(denoms)
        for i in range(n):
            scale = ys[i] * inv_denoms[i] % p
            basis = bases[i]
            for j, c in enumerate(basis):
                result[j] = (result[j] + c * scale) % p
        return cls(field, result)

    @classmethod
    def vanishing(cls, field: Field, xs: Sequence[int]) -> "Polynomial":
        """prod (X - x_i)."""
        p = field.p
        acc = [1]
        for x in xs:
            nxt = [0] * (len(acc) + 1)
            for i, c in enumerate(acc):
                nxt[i + 1] = (nxt[i + 1] + c) % p
                nxt[i] = (nxt[i] - c * x) % p
            acc = nxt
        return cls(field, acc)

    # -- queries ----------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree; the zero polynomial reports -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def evaluate(self, x: int) -> int:
        return _eval_raw(self.coeffs, x, self.field.p)

    def evaluate_many(self, xs: Sequence[int]) -> list[int]:
        return [self.evaluate(x) for x in xs]

    # -- arithmetic ---------------------------------------------------------

    def _check(self, other: "Polynomial") -> None:
        if other.field.p != self.field.p:
            raise ValueError("field mismatch")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        p = self.field.p
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = (out[i] + c) % p
        return Polynomial(self.field, out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __neg__(self) -> "Polynomial":
        p = self.field.p
        return Polynomial(self.field, [(-c) % p for c in self.coeffs])

    def scale(self, k: int) -> "Polynomial":
        p = self.field.p
        k %= p
        return Polynomial(self.field, [c * k % p for c in self.coeffs])

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        n_out = len(self.coeffs) + len(other.coeffs) - 1
        # FFT multiplication once the result is large enough to pay for it.
        if n_out >= 64 and n_out <= (1 << self.field.two_adicity):
            k = max(1, (n_out - 1).bit_length())
            domain = EvaluationDomain(self.field, k)
            p = self.field.p
            ea = domain.fft(self.coeffs)
            eb = domain.fft(other.coeffs)
            prod = [x * y % p for x, y in zip(ea, eb)]
            return Polynomial(self.field, domain.ifft(prod))
        return Polynomial(self.field, _mul_schoolbook(self.coeffs, other.coeffs, self.field.p))

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Euclidean division: returns (quotient, remainder)."""
        self._check(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        p = self.field.p
        rem = list(self.coeffs)
        div = divisor.coeffs
        q_len = len(rem) - len(div) + 1
        if q_len <= 0:
            return Polynomial.zero(self.field), Polynomial(self.field, rem)
        quot = [0] * q_len
        lead_inv = self.field.inv(div[-1])
        for i in range(q_len - 1, -1, -1):
            coeff = rem[i + len(div) - 1] * lead_inv % p
            quot[i] = coeff
            if coeff:
                for j, d in enumerate(div):
                    rem[i + j] = (rem[i + j] - coeff * d) % p
        return Polynomial(self.field, quot), Polynomial(self.field, rem)

    def divide_by_linear(self, root: int) -> tuple["Polynomial", int]:
        """Divide by ``(X - root)`` via synthetic division.

        Returns (quotient, remainder-value); remainder is zero iff
        ``root`` is a root.  This is the witness computation for IPA
        opening proofs.
        """
        quot = _divide_by_linear(self.coeffs, root, self.field.p)
        rem = self.evaluate(root)
        return Polynomial(self.field, quot), rem

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field.p == other.field.p and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.field.p, tuple(self.coeffs)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Polynomial(degree={self.degree})"


def evaluate_coeffs(coeffs: Sequence[int], x: int, p: int) -> int:
    """Horner evaluation on a raw little-endian coefficient list."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


# Internal alias kept for the module's own helpers.
_eval_raw = evaluate_coeffs


def _mul_schoolbook(a: Sequence[int], b: Sequence[int], p: int) -> list[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if not ai:
            continue
        for j, bj in enumerate(b):
            out[i + j] += ai * bj
    return [c % p for c in out]


def _divide_by_linear(coeffs: Sequence[int], root: int, p: int) -> list[int]:
    """Synthetic division of a raw coefficient list by (X - root); the
    remainder is discarded."""
    n = len(coeffs)
    if n <= 1:
        return []
    quot = [0] * (n - 1)
    acc = 0
    for i in range(n - 1, 0, -1):
        acc = (acc * root + coeffs[i]) % p
        quot[i - 1] = acc
    return quot
