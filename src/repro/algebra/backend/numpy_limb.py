"""numpy limb-vector field arithmetic (the ``numpy`` backend).

A batch of field elements is a C-contiguous ``(L, n)`` int64 array of
``W = 28``-bit limbs, limb-major: each limb row is contiguous, so the
schoolbook product accumulates with ``L`` contiguous block adds and the
carry/fold passes are whole-array ops.  The boundary representation
stays plain Python ints; :meth:`_Ctx.lift` / :meth:`_Ctx.lower` convert
whole batches at once through little-endian byte buffers.

Reduction uses the *fold dgemm* trick rather than Montgomery form: the
high product limbs are mapped back into ``L`` limbs by two exact
float64 matrix products against the fold matrix split into 14-bit
halves (every partial sum stays far below 2^53, so float64 arithmetic
is exact), followed by bulk carry rounds.  Outputs are *bounded*, not
canonical -- ``|limb| <= OUT_LIM`` -- and chain directly into further
muls/adds; :meth:`_Ctx.canon` produces canonical limbs only at the
boundary.  Because inverses, NTT outputs, and expression values are
unique field elements, everything this backend returns is identical to
the scalar reference path bit for bit.

Magnitude contract: callers track a per-array bound ``mag`` on
``max |limb|`` and must keep ``L * mag_a * mag_b <= 2^62`` for every
product (``_Ctx.normalize`` restores ``mag <= OUT_LIM`` in two carry
rounds).  The fast path only supports sparse primes ``p = 2^s + c``
with small ``c`` (both Pasta fields qualify); other moduli are
declined and fall back to the reference path.
"""

from __future__ import annotations

import os
import threading

from repro.errors import BatchInversionError

try:  # the backend registers as unavailable when numpy is absent
    import numpy as np
except ImportError:  # pragma: no cover - exercised via availability flag
    np = None

#: limb width in bits; 10 limbs cover the 255-bit Pasta primes with
#: headroom for bounded (non-canonical) intermediate limbs.
W = 28
MASK = (1 << W) - 1
#: the fold matrix is split into HALF_W-bit halves so the float64
#: dgemm partial sums stay exact (< 2^53).
HALF_W = 14
#: int64 lanes per element in the conversion byte buffers.
LANES = 5
NBYTES = 8 * LANES
#: mul block width (empirically fastest on streaming cores; chunking
#: finer than this costs more in ufunc dispatch than it saves in cache).
CHUNK = 4096
#: bound on |limb| of every mul output / normalized array (the
#: three-round finalizes land at 2^29 + ~100 in the worst chains).
OUT_LIM = (1 << 29) + 128
#: product certification: L * mag_a * mag_b must stay below this.
MAX_PROD = 1 << 62
#: largest |limb| any array may reach before it must be normalized
#: (canonicalization is certified from this bound).
ADD_LIM = 1 << 31

#: NTT stages with length <= EARLY_B run on a transposed layout so
#: every ufunc keeps a long contiguous inner dimension.
EARLY_B = 64

#: vector paths only engage at or above these batch sizes -- below
#: them ufunc dispatch overhead beats the scalar loop.
MIN_INV = 2048
MIN_NTT = 2048
MIN_EXPR = 1024
#: product-tree level width at which inversion switches to the scalar
#: Montgomery core.
TREE_CUTOFF = 256

#: opt-in magnitude self-checks (certified unnecessary; see _mul_chunk).
_DEBUG = bool(os.environ.get("REPRO_NUMPY_DEBUG"))


def available() -> bool:
    return np is not None


# -- per-modulus context ------------------------------------------------------

_CTXS: dict = {}


def ctx_for(p: int):
    """The limb context for modulus ``p``, or None when unsupported."""
    ctx = _CTXS.get(p)
    if ctx is None and p not in _CTXS:
        ctx = _Ctx(p) if _supported(p) else None
        _CTXS[p] = ctx
    return ctx


def _supported(p: int) -> bool:
    """Sparse-prime test: p = 2^s + c, c small, s inside the top limb."""
    if np is None or p < 3 or p % 2 == 0:
        return False
    s = p.bit_length() - 1
    c = p - (1 << s)
    nl = (s + W) // W  # limbs needed for canonical values
    return (
        nl * W <= 8 * NBYTES - 24  # conversion lanes have headroom
        and c >= 1
        and c.bit_length() <= s // 2
        and W * (nl - 1) < s  # bit s lands strictly inside the top limb
    )


class _Ws:
    """Preallocated per-width scratch for one mul chunk."""

    __slots__ = ("c", "q", "chf", "rf", "rq", "ob", "res")

    def __init__(self, l: int, n: int):
        self.c = np.zeros((2 * l + 1, n), np.int64)
        self.q = np.empty((2 * l + 1, n), np.int64)
        self.chf = np.empty((l + 1, n), np.float64)
        self.rf = np.empty((2 * l, n), np.float64)
        self.rq = np.empty((l, n), np.int64)
        self.ob = np.empty((l, n), np.int64)
        self.res = np.empty((l, n), np.int64)


class _Ctx:
    """Derived constants + kernels for one sparse prime modulus."""

    def __init__(self, p: int):
        self.p = p
        s = p.bit_length() - 1
        self.s = s
        self.c = p - (1 << s)
        self.L = (s + W) // W
        l = self.L
        self.q2_shift = s - W * (l - 1)

        def row(v, nl=l):
            return [(v >> (W * j)) & MASK for j in range(nl)]

        # Fold matrix: column t holds the limbs of 2^(W*(L+t)) mod p --
        # it maps the L+1 high product rows back into L limbs.  Split
        # into HALF_W-bit halves so each dgemm stays float64-exact.
        fold = np.array(
            [row(pow(2, W * (l + t), p)) for t in range(l + 1)], np.int64
        ).T.copy()
        fold_lo = (fold & ((1 << HALF_W) - 1)).astype(np.float64)
        fold_hi = (fold >> HALF_W).astype(np.float64)
        #: both 14-bit halves stacked so the fold is one dgemm call.
        self.fold_st = np.ascontiguousarray(np.vstack([fold_lo, fold_hi]))
        #: limbs of 2^(W*L) mod p: folds a carry out of the top limb.
        self.fold0 = np.array(row(pow(2, W * l, p)), np.int64)
        #: limbs of 2^(W*L + 14) / 2^(W*(L+1)) mod p: fold the 14-bit
        #: halves / the overflow of a catch-row split (NTT stage mul).
        self.fold0_14 = np.array(row(pow(2, W * l + HALF_W, p)), np.int64)
        self.fold1 = np.array(row(pow(2, W * (l + 1), p)), np.int64)
        #: limbs of 2^(W*(2L+1)) mod p: folds the product catch-row's
        #: pre-split carry (weight = one limb above the catch row).
        self.fold_top = np.array(row(pow(2, W * (2 * l + 1), p)), np.int64)
        self.p_limbs = np.array(row(p), np.int64)
        nc = (self.c.bit_length() + W - 1) // W
        self.c_limbs = np.array(row(self.c, nc), np.int64).reshape(nc, 1)
        self.nc = nc
        #: NTT twiddle/permutation cache keyed (n, omega); read-only
        #: after construction, so safe to share across threads.
        self._ntt: dict = {}
        #: mutable scratch (mul workspaces, NTT ping-pong buffers) is
        #: thread-local: concurrent verifier threads must not share it.
        self._scratch = threading.local()

    # -- conversions ----------------------------------------------------

    def lift(self, vals) -> "np.ndarray":
        """Canonical ints in [0, p) -> (L, n) int64 limbs."""
        out = np.empty((self.L, len(vals)), np.int64)
        self.lift_into(vals, out)
        return out

    def lift_into(self, vals, out) -> None:
        n = len(vals)
        buf = b"".join(
            map(int.to_bytes, vals, (NBYTES,) * n, ("little",) * n)
        )
        lanes = np.frombuffer(buf, np.uint8).reshape(n, NBYTES).view(np.uint64)
        for j in range(self.L):
            bit = W * j
            k, sh = bit >> 6, bit & 63
            acc = lanes[:, k] >> sh
            if sh + W > 64:
                acc = acc | (lanes[:, k + 1] << (64 - sh))
            out[j] = acc & np.uint64(MASK)

    def lower(self, x: "np.ndarray") -> list:
        """Bounded (L, n) limbs -> canonical Python ints."""
        r = self.canon(x)
        n = r.shape[1]
        ru = r.view(np.uint64)
        lanes = self._buf_for("lanes", (n, LANES), np.uint64)
        lanes[:] = 0
        for j in range(self.L):
            bit = W * j
            k, sh = bit >> 6, bit & 63
            lanes[:, k] |= ru[j] << sh
            if sh + W > 64:
                lanes[:, k + 1] |= ru[j] >> (64 - sh)
        mv = memoryview(lanes.tobytes())
        return [
            int.from_bytes(mv[i * NBYTES : (i + 1) * NBYTES], "little")
            for i in range(n)
        ]

    def _buf_for(self, tag: str, shape, dtype) -> "np.ndarray":
        """Thread-local reusable buffer (avoids fresh-page mmap churn on
        every call; large ``np.empty`` blocks fault in otherwise)."""
        cache = getattr(self._scratch, "bufs", None)
        if cache is None:
            cache = self._scratch.bufs = {}
        key = (tag, shape)
        buf = cache.get(key)
        if buf is None:
            buf = cache[key] = np.empty(shape, dtype)
        return buf

    # -- bounded arithmetic ---------------------------------------------

    def _ws_for(self, n: int) -> _Ws:
        cache = getattr(self._scratch, "ws", None)
        if cache is None:
            cache = self._scratch.ws = {}
        ws = cache.get(n)
        if ws is None:
            ws = cache[n] = _Ws(self.L, n)
        return ws

    def mul_into(self, a, b, out) -> None:
        """``out = a * b mod p`` (value-exact; limbs bounded by OUT_LIM).

        ``a`` or ``b`` may be a broadcast ``(L, 1)`` column (a scalar
        operand).  Callers guarantee ``L * mag_a * mag_b <= 2^62``.
        Wide batches run in CHUNK-column blocks so the workspace stays
        cache-resident.
        """
        n = out.shape[1]
        for lo in range(0, n, CHUNK):
            hi = min(lo + CHUNK, n)
            self._mul_chunk(
                a if a.shape[1] == 1 else a[:, lo:hi],
                b if b.shape[1] == 1 else b[:, lo:hi],
                out[:, lo:hi],
            )

    def mul(self, a, b):
        n = max(a.shape[1], b.shape[1])
        out = np.empty((self.L, n), np.int64)
        self.mul_into(a, b, out)
        return out

    def _mul_chunk(self, a, b, out) -> None:
        l = self.L
        n = out.shape[1]
        w = self._ws_for(n)
        c, q = w.c, w.q
        # Schoolbook product: L contiguous block-adds; the first
        # iteration writes rows 0..L-1 directly, rows L..2L start at 0.
        np.multiply(a[0], b, out=c[:l])
        c[l:] = 0
        for i in range(1, l):
            np.multiply(a[i], b, out=q[:l])
            c[i : i + l] += q[:l]
        # Two carry passes restricted to rows L-1..2L -- only the dgemm
        # input rows need limbs below 2^28; rows 0..L-2 ride along into
        # the finalize at full product magnitude (int64 stays safe:
        # every recombined limb is < 2^62).  Row 2L catches row 2L-1's
        # carry and keeps its own (re-shifted) so nothing is lost.
        cs = c[l - 1 :]
        qs = q[: l + 2]
        for _ in range(2):
            np.right_shift(cs, W, out=qs)
            np.bitwise_and(cs, MASK, out=cs)
            cs[1:] += qs[:-1]
            cs[l + 1] += qs[l + 1] << W
        # Pre-split the catch row so the dgemm input stays below 2^28.
        q_top = c[2 * l] >> W
        c[2 * l] &= MASK
        # Fold the L+1 high rows back into L limbs with one exact
        # float64 matmul against the stacked 14-bit fold halves (every
        # partial sum stays < 2^53).
        np.copyto(w.chf, c[l:], casting="unsafe")
        np.matmul(self.fold_st, w.chf, out=w.rf)
        # Finalize in contiguous scratch when `out` is a strided view
        # (a column block of a wider array) -- the dozen finalize
        # passes then run at full speed and one copy pays the stride.
        res = out if out.flags.c_contiguous else w.res
        np.copyto(res, w.rf[:l], casting="unsafe")
        np.copyto(w.rq, w.rf[l:], casting="unsafe")
        w.rq <<= HALF_W
        res += w.rq
        res += c[:l]
        np.multiply(self.fold_top.reshape(l, 1), q_top, out=w.ob)
        res += w.ob
        # Finalize: three carry+top-fold rounds bring |limb| under
        # OUT_LIM unconditionally.  Certification sketch: fold0 and
        # fold_top are canonical (< p < 2^255), so their top limb is
        # <= 4 and the fold matrix's top row is <= 4; row L-1 enters at
        # ~2^33.6, so its carry shrinks to ~2^5.6 after round 1, to
        # {0, 1} after round 2, and round 3 lands every limb at
        # <= MASK + MASK + small < OUT_LIM.
        rq = w.rq
        for _ in range(3):
            self._carry_round(res, rq, w.ob)
        if _DEBUG and np.any(np.abs(res) > OUT_LIM):  # pragma: no cover
            raise AssertionError("mul finalize exceeded OUT_LIM")
        if res is not out:
            np.copyto(out, res)

    def _carry_round(self, r, rq, tmp=None) -> None:
        """One bulk carry round with the top spill folded via fold0."""
        l = self.L
        np.right_shift(r, W, out=rq)
        r &= MASK
        r[1:] += rq[:-1]
        if tmp is None:
            r += self.fold0.reshape(l, 1) * rq[l - 1]
        else:
            np.multiply(self.fold0.reshape(l, 1), rq[l - 1], out=tmp)
            r += tmp

    def normalize(self, r, mag: float) -> float:
        """Two chunked carry rounds: |limb| <= mag -> <= OUT_LIM.

        Certified for ``mag <= ADD_LIM`` (and a little beyond: the NTT
        calls it from at most ~2^31.1)."""
        n = r.shape[1]
        for lo in range(0, n, CHUNK):
            hi = min(lo + CHUNK, n)
            w = self._ws_for(hi - lo)
            blk = r[:, lo:hi]
            self._carry_round(blk, w.rq, w.ob)
            self._carry_round(blk, w.rq, w.ob)
        return float(OUT_LIM)

    # -- canonicalization ------------------------------------------------

    def canon(self, x: "np.ndarray") -> "np.ndarray":
        """Bounded limbs (|limb| < 2^33) -> canonical limbs in [0, p).

        Returns a reusable scratch buffer: consume it before the next
        ``canon``/``lower`` call on this thread."""
        l = self.L
        n = x.shape[1]
        r = self._buf_for("canon_r", (l, n), np.int64)
        np.copyto(r, x)
        rq = self._buf_for("canon_q", (l, n), np.int64)
        # Two bulk rounds shrink |limb| to ~2^29; the sequential sweep
        # then leaves limbs 0..L-2 in [0, MASK] exactly.
        self._carry_round(r, rq)
        self._carry_round(r, rq)
        self._sweep(r)
        # Two rounds of v -= (v >> s) * p handle any remaining excess
        # (the second absorbs the first's c-subtraction slack), then
        # one conditional += p fixes negatives.
        for _ in range(2):
            q2 = r[l - 1] >> self.q2_shift
            r[l - 1] -= q2 << self.q2_shift
            r[: self.nc] -= q2 * self.c_limbs
            self._sweep(r)
        neg = r[l - 1] < 0
        if np.any(neg):
            r[:, neg] += self.p_limbs.reshape(l, 1)
            self._sweep(r)
        return r

    def _sweep(self, r) -> None:
        """Exact sequential carry propagation (top limb keeps excess)."""
        for k in range(self.L - 1):
            carry = r[k] >> W
            r[k] &= MASK
            r[k + 1] += carry

    # -- batch inversion -------------------------------------------------

    def _tree_bufs_for(self, n: int):
        """Preallocated level arrays for the up and down sweeps."""
        cache = getattr(self._scratch, "tree_bufs", None)
        if cache is None:
            cache = self._scratch.tree_bufs = {}
        bufs = cache.get(n)
        if bufs is None:
            widths = [n]
            while widths[-1] > TREE_CUTOFF:
                wd = widths[-1]
                widths.append(wd // 2 + (wd & 1))
            ups = [np.empty((self.L, w), np.int64) for w in widths[1:]]
            downs = [np.empty((self.L, w), np.int64) for w in widths[:-1]]
            bufs = cache[n] = (ups, downs)
        return bufs

    def tree_inv(self, vals: list, scale: int = 1) -> list:
        """Product-tree batch inversion of canonical nonzero ints;
        ``scale`` multiplies every output for free (it scales the root
        inverse once)."""
        arr = self._buf_for("tree_in", (self.L, len(vals)), np.int64)
        self.lift_into(vals, arr)
        return self.lower(self.tree_inv_arr(arr, scale))

    def tree_inv_arr(self, arr: "np.ndarray", scale: int = 1) -> "np.ndarray":
        """Array-resident product-tree inversion (limbs in, limbs out).

        Pairs first half against second half at every level, so both
        sweeps run on contiguous views and the down-sweep is two muls
        per level -- no gathers, scatters, or assembling copies.  The
        root level inverts with the scalar Montgomery core.  All level
        storage is preallocated per ``n``; the result lives in a
        reusable buffer (consume before the next call, or copy).
        """
        p = self.p
        ups, downs = self._tree_bufs_for(arr.shape[1])
        levels = [arr]
        cur = arr
        for nxt in ups:
            wd = cur.shape[1]
            half = wd // 2
            self.mul_into(cur[:, :half], cur[:, half : 2 * half], nxt[:, :half])
            if wd & 1:
                nxt[:, half] = cur[:, wd - 1]
            levels.append(nxt)
            cur = nxt
        root = self.lower(cur)
        m = len(root)
        prefix = [0] * m
        acc = 1
        for i, v in enumerate(root):
            prefix[i] = acc
            acc = acc * v % p
        inv_acc = pow(acc, p - 2, p) * scale % p
        out = [0] * m
        for i in range(m - 1, -1, -1):
            out[i] = prefix[i] * inv_acc % p
            inv_acc = inv_acc * root[i] % p
        inv = self.lift(out)
        for lvl, nxt in zip(reversed(levels[:-1]), reversed(downs)):
            wd = lvl.shape[1]
            half = wd // 2
            # inv[i] = 1/(lvl[i] * lvl[half+i]); two muls on contiguous
            # half-views recover both children (the strided output
            # halves are absorbed by the mul's scratch finalize).
            self.mul_into(inv[:, :half], lvl[:, half : 2 * half], nxt[:, :half])
            self.mul_into(inv[:, :half], lvl[:, :half], nxt[:, half : 2 * half])
            if wd & 1:
                nxt[:, wd - 1] = inv[:, half]
            inv = nxt
        return inv

    # -- NTT ---------------------------------------------------------------

    def _ntt_tables(self, n: int, omega: int):
        key = (n, omega)
        tab = self._ntt.get(key)
        if tab is None:
            from repro.algebra import fft_plan

            plan = fft_plan.plan_for(n, omega, self.p)
            perm = np.arange(n)
            for i, j in plan.swaps:
                perm[i], perm[j] = perm[j], perm[i]
            # Per stage, precompute the limbs of tw * 2^(W*i) mod p for
            # every limb shift i: the stage product then accumulates
            # directly into L+1 limb rows (sum_i hi_i * shifted_i) with
            # no high rows and no fold dgemm at all.
            stages = []
            p = self.p
            for si, ws in enumerate(plan.stages):
                if si == 0:
                    stages.append(None)  # twiddles are all 1
                    continue
                shifted = []
                cur_ws = list(ws)
                for _ in range(self.L):
                    shifted.append(self.lift(cur_ws))
                    cur_ws = [(v << W) % p for v in cur_ws]
                stages.append(shifted)
            tab = self._ntt[key] = (perm, stages)
        return tab

    def _ntt_bufs_for(self, n: int):
        cache = getattr(self._scratch, "ntt_bufs", None)
        if cache is None:
            cache = self._scratch.ntt_bufs = {}
        bufs = cache.get(n)
        if bufs is None:
            l = self.L
            bufs = cache[n] = (
                np.empty((l, n), np.int64),
                np.empty((l, n), np.int64),
                np.empty((l, n // 2), np.int64),
                np.empty(((l + 1), n // 2), np.int64),
                np.empty(((l + 1), n // 2), np.int64),
                np.empty((l, n // 2), np.int64),
            )
        return bufs

    def _twiddle_mul(self, hi, tws, c, q, t3):
        """``hi * tw mod p`` for one NTT stage via shifted twiddle tables.

        ``tws[i]`` is a broadcast-shaped view of the canonical limbs of
        ``tw * 2^(W*i) mod p``; ``hi``/``t3`` are ``(L, *S)`` views and
        ``c``/``q`` are ``(L+1, *S)`` views of shared stage scratch.
        The product accumulates straight into L limb rows plus one
        catch row; two carry passes bracket a 14-bit-split fold of the
        catch row, and a single finalize round lands every limb at
        <= 2^29 + 1 (the split keeps each fold product <= 2^42, so
        carries collapse to {0, 1} immediately).  Callers keep
        ``L * mag * MASK <= 2^62``.
        """
        l = self.L
        ones = (1,) * (hi.ndim - 1)
        np.multiply(tws[0], hi[0], out=c[:l])
        c[l] = 0
        for i in range(1, l):
            np.multiply(tws[i], hi[i], out=q[:l])
            c[:l] += q[:l]
        # pass 1 over L+1 rows; the catch row picks up row L-1's carry
        np.right_shift(c, W, out=q)
        np.bitwise_and(c, MASK, out=c)
        c[1:] += q[:-1]
        # split-fold the catch row (weight 2^(W*L)): its 28-bit excess
        # folds via fold1, its low limb in 14-bit halves via
        # fold0/fold0_14 so every product stays below 2^42
        f0 = self.fold0.reshape((l,) + ones)
        np.right_shift(c[l], W, out=q[l])
        np.bitwise_and(c[l], MASK, out=c[l])
        np.multiply(self.fold1.reshape((l,) + ones), q[l], out=t3)
        c[:l] += t3
        np.right_shift(c[l], HALF_W, out=q[l])
        np.bitwise_and(c[l], (1 << HALF_W) - 1, out=c[l])
        np.multiply(f0, c[l], out=t3)
        c[:l] += t3
        np.multiply(self.fold0_14.reshape((l,) + ones), q[l], out=t3)
        c[:l] += t3
        # pass 2; the catch row is re-used for row L-1's (tiny) carry
        c[l] = 0
        np.right_shift(c, W, out=q)
        np.bitwise_and(c, MASK, out=c)
        c[1:] += q[:-1]
        np.multiply(f0, c[l], out=t3)
        c[:l] += t3
        # one finalize round
        cl, ql = c[:l], q[:l]
        np.right_shift(cl, W, out=ql)
        np.bitwise_and(cl, MASK, out=cl)
        cl[1:] += ql[:-1]
        np.multiply(f0, ql[l - 1], out=t3)
        cl += t3
        if _DEBUG and np.any(np.abs(cl) > OUT_LIM):  # pragma: no cover
            raise AssertionError("twiddle mul finalize exceeded OUT_LIM")
        return cl

    def ntt(self, values: list, omega: int) -> list:
        """Cooley-Tukey NTT: butterflies as strided block ops, twiddle
        products via per-stage shifted tables (built once per
        (n, omega) and shared across threads).

        Stages with ``length <= EARLY_B`` run on a transposed
        ``(L, EARLY_B, n/EARLY_B)`` layout: the butterfly axis moves to
        the middle and every ufunc keeps a long contiguous inner
        dimension, instead of 2..32-element inner loops that are pure
        dispatch overhead.  Two transpose passes bracket the block.
        """
        n = len(values)
        l = self.L
        perm, stages = self._ntt_tables(n, omega)
        va, vb, hib, c2, q2, tb = self._ntt_bufs_for(n)
        self.lift_into(values, vb)
        np.take(vb, perm, axis=1, out=va)
        mag = float(MASK)
        cur, nxt = va, vb
        length = 2
        si = 0
        bw = EARLY_B if n >= 4 * EARLY_B else 0
        if bw:
            nb0 = n // bw
            np.copyto(
                vb.reshape(l, bw, nb0),
                va.reshape(l, nb0, bw).transpose(0, 2, 1),
            )
            cur, nxt = vb, va
        while length <= bw:
            tw = stages[si]
            half = length // 2
            g = bw // length
            if tw is not None and l * mag * MASK >= MAX_PROD:
                mag = self.normalize(cur, mag)
            v4 = cur.reshape(l, g, length, nb0)
            lo4 = v4[:, :, :half, :]
            if tw is None:
                t4 = v4[:, :, half:, :]
                t_mag = mag
            else:
                hi4 = hib.reshape(l, g, half, nb0)
                np.copyto(hi4, v4[:, :, half:, :])
                tws = [t[:, None, :, None] for t in tw]
                t4 = self._twiddle_mul(
                    hi4,
                    tws,
                    c2.reshape(l + 1, g, half, nb0),
                    q2.reshape(l + 1, g, half, nb0),
                    tb.reshape(l, g, half, nb0),
                )
                t_mag = float(OUT_LIM)
            o4 = nxt.reshape(l, g, length, nb0)
            np.add(lo4, t4, out=o4[:, :, :half, :])
            np.subtract(lo4, t4, out=o4[:, :, half:, :])
            mag = mag + t_mag
            cur, nxt = nxt, cur
            length *= 2
            si += 1
        if bw:
            # back to the natural layout for the long-stride tail stages
            np.copyto(
                nxt.reshape(l, nb0, bw),
                cur.reshape(l, bw, nb0).transpose(0, 2, 1),
            )
            cur, nxt = nxt, cur
        while si < len(stages):
            tw = stages[si]
            half = length // 2
            nb = n // length
            # hi feeds a mul against canonical twiddles: normalize the
            # whole vector first when the product certification would
            # break (before the lo/hi views split, so both halves share
            # the reduced magnitude).
            if tw is not None and l * mag * MASK >= MAX_PROD:
                mag = self.normalize(cur, mag)
            v3 = cur.reshape(l, nb, length)
            lo3 = v3[:, :, :half]
            if tw is None:
                t3 = v3[:, :, half:]
                t_mag = mag
            else:
                hi3 = hib.reshape(l, nb, half)
                np.copyto(hi3, v3[:, :, half:])
                tws = [t[:, None, :] for t in tw]
                t3 = self._twiddle_mul(
                    hi3,
                    tws,
                    c2.reshape(l + 1, nb, half),
                    q2.reshape(l + 1, nb, half),
                    tb.reshape(l, nb, half),
                )
                t_mag = float(OUT_LIM)
            o3 = nxt.reshape(l, nb, length)
            np.add(lo3, t3, out=o3[:, :, :half])
            np.subtract(lo3, t3, out=o3[:, :, half:])
            mag = mag + t_mag
            cur, nxt = nxt, cur
            length *= 2
            si += 1
        return self.lower(cur)
