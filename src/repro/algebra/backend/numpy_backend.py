"""Numpy limb-vector backend: whole-array field arithmetic.

Thin adapter between the :class:`~repro.algebra.backend.FieldBackend`
hook protocol and the limb-vector engine
(:mod:`~repro.algebra.backend.numpy_limb`), which does the actual
arithmetic on ``(L, n)`` int64 limb arrays.  The adapter's job is
*policy*: decide per call whether the vector engine wins, convert at
the int boundary, and track limb magnitudes so every product stays
inside the engine's certified bounds.

Where the engine wins (measured; see DESIGN.md section 5j):

- NTTs from :data:`~repro.algebra.backend.numpy_limb.MIN_NTT` points
  up -- the butterflies and twiddle products are pure array ops,
- Lagrange basis evaluation -- the denominators are *generated* as a
  vector, inverted by the resident product tree, and scaled in one
  pass, so the int boundary is crossed once instead of three times,
- extended-domain expression evaluation on *favorable trees* -- sum
  chains and deep gates over few columns, where the per-node savings
  outrun the lift/lower boundary tax.  A cost model (below) estimates
  the gain per tree and declines unfavorable shapes, so shallow
  product-heavy gates keep running the scalar reference loop.

Where it loses: list-boundary batch inversion.  Montgomery inversion is
3n multiplications on either engine, CPython's bigint multiply is
already C speed, and the lift/lower conversions add ~600ns/element on
top -- measured 0.7-0.8x.  :meth:`NumpyBackend.batch_inv` therefore
declines, and the vector inversion is reserved for call sites whose
operands already live (or are produced) in limb form.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algebra.backend import FieldBackend
from repro.algebra.backend import numpy_limb

try:  # pragma: no cover - absence exercised on hosts without numpy
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Below this, reduce_column's array conversion beats nothing.
MIN_REDUCE = 64

# Expression-evaluation cost model (ns/element, measured at n=16384;
# host-relative, but only the *ratios* steer the decision).  A scalar
# Sum node costs ~90ns/elt against ~15 vectorized; a scalar Product
# ~390 (zip + bigint mul) against ~300 (vector mul plus the amortized
# canon pass a product chain needs to stay certified); Scaled loses
# vectorized because a small-int scalar multiply is cheap in CPython
# but a full limb product on the array.  On top of the per-node gains
# the vector path pays a flat lift per distinct column and one lower
# for the result -- which is why shallow trees over many columns are
# declined and deep sum chains over few columns are accepted.
EXPR_NODE_GAIN = {"sum": 75.0, "product": 90.0, "scaled": -190.0}
EXPR_LIFT_NS = 130.0
EXPR_LOWER_NS = 430.0
#: Minimum estimated ns/element saved before the hook accepts; tests
#: monkeypatch this to -inf to force the vector path for parity checks.
EXPR_MIN_GAIN = 100.0


class NumpyBackend(FieldBackend):
    """Limb-vector arithmetic on numpy int64 arrays."""

    name = "numpy"

    def __init__(self) -> None:
        #: (p, omega_inv, size) -> lifted [omega_inv^i] power table,
        #: cached per domain for the fused Lagrange evaluation.
        self._pow_tables: dict = {}

    @classmethod
    def available(cls) -> bool:
        return numpy_limb.available()

    # -- hooks -----------------------------------------------------------

    def batch_inv(self, values: Sequence[int], p: int) -> list[int] | None:
        # Deliberate decline (measured pessimization): Montgomery is 3n
        # multiplications on both engines, and paying lift+lower to run
        # them vectorized loses to CPython's C-speed bigint multiply.
        # The product-tree inversion (ctx.tree_inv_arr) wins only when
        # the batch is already resident -- see lagrange_evals.
        return None

    def ntt(self, values: list, omega: int, p: int) -> list | None:
        n = len(values)
        if n < numpy_limb.MIN_NTT or n & (n - 1):
            return None
        ctx = numpy_limb.ctx_for(p)
        if ctx is None:
            return None
        return ctx.ntt(values, omega)

    def lagrange_evals(
        self,
        x: int,
        count: int,
        *,
        p: int,
        omega: int,
        omega_inv: int,
        size: int,
        kk: int,
    ) -> list[int] | None:
        if count < numpy_limb.MIN_INV:
            return None
        ctx = numpy_limb.ctx_for(p)
        if ctx is None:
            return None
        # L_i(x) = (z/n) * omega^i / (x - omega^i); multiplying the
        # numerator and denominator by omega^-i gives the fused form
        # kk / (x * omega^-i - 1), whose denominators are one broadcast
        # product over the cached [omega_inv^i] table.  Exact match:
        # both forms are the same field element.
        key = (p, omega_inv, size)
        table = self._pow_tables.get(key)
        if table is None:
            pows = [1] * size
            for i in range(1, size):
                pows[i] = pows[i - 1] * omega_inv % p
            table = self._pow_tables[key] = ctx.lift(pows)
        u = ctx.mul(ctx.lift([x % p]), table[:, :count])
        u[0] -= 1  # still far inside the tree's magnitude bound
        return ctx.lower(ctx.tree_inv_arr(u, kk))

    def eval_expression_ext(
        self,
        expr: object,
        get_column_ext: Callable[[object], list[int]],
        ext_n: int,
        rotation_factor: int,
        p: int,
    ) -> list[int] | None:
        if ext_n < numpy_limb.MIN_EXPR:
            return None
        ctx = numpy_limb.ctx_for(p)
        if ctx is None:
            return None
        from repro.plonkish.expression import (
            ColumnQuery,
            Constant,
            Product,
            Scaled,
            Sum,
        )

        # Pre-walk: estimate the per-element gain and decline trees the
        # boundary tax would pessimize (see the cost model up top).
        gain = -EXPR_LOWER_NS
        cols: set[int] = set()
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, Sum):
                gain += EXPR_NODE_GAIN["sum"]
                stack += (node.left, node.right)
            elif isinstance(node, Product):
                gain += EXPR_NODE_GAIN["product"]
                stack += (node.left, node.right)
            elif isinstance(node, Scaled):
                gain += EXPR_NODE_GAIN["scaled"]
                stack.append(node.inner)
            elif isinstance(node, ColumnQuery):
                cols.add(id(node.column))
            elif not isinstance(node, Constant):
                return None  # unknown node type: reference path raises
        gain -= len(cols) * EXPR_LIFT_NS
        if gain < EXPR_MIN_GAIN:
            return None

        mask = float(numpy_limb.MASK)
        add_lim = float(numpy_limb.ADD_LIM)
        max_prod = float(numpy_limb.MAX_PROD)
        out_lim = float(numpy_limb.OUT_LIM)
        columns: dict[int, object] = {}

        def column(col):
            arr = columns.get(id(col))
            if arr is None:
                arr = columns[id(col)] = ctx.lift(get_column_ext(col))
            return arr

        def fit_for_mul(a, ma, b, mb):
            # Keep every product inside the engine's certification; a
            # freshly normalized operand is bounded by OUT_LIM, and
            # L * OUT_LIM^2 < 2^62 always holds.
            if ctx.L * ma * mb > max_prod:
                if ma > out_lim:
                    ma = ctx.normalize(a, ma)
                if ctx.L * ma * mb > max_prod:
                    mb = ctx.normalize(b, mb)
            return ma, mb

        def walk(node):
            """Returns ``(limb_array, magnitude)``; every magnitude is
            kept <= ADD_LIM so ``normalize``/``canon`` stay certified.
            Only freshly computed arrays are ever normalized in place --
            memoized column lifts are canonical and never qualify."""
            if isinstance(node, Constant):
                return ctx.lift([node.value % p]), mask
            if isinstance(node, ColumnQuery):
                arr = column(node.column)
                shift = (node.rotation * rotation_factor) % ext_n
                if shift:
                    return np.roll(arr, -shift, axis=1), mask
                return arr, mask
            if isinstance(node, Sum):
                a, ma = walk(node.left)
                b, mb = walk(node.right)
                if ma + mb > add_lim:
                    if ma > out_lim:
                        ma = ctx.normalize(a, ma)
                    if ma + mb > add_lim:
                        mb = ctx.normalize(b, mb)
                return a + b, ma + mb
            if isinstance(node, Product):
                a, ma = walk(node.left)
                b, mb = walk(node.right)
                ma, mb = fit_for_mul(a, ma, b, mb)
                return ctx.mul(a, b), float(numpy_limb.OUT_LIM)
            if isinstance(node, Scaled):
                a, ma = walk(node.inner)
                b = ctx.lift([node.scalar % p])
                ma, _ = fit_for_mul(a, ma, b, mask)
                return ctx.mul(a, b), float(numpy_limb.OUT_LIM)
            raise TypeError(
                f"unknown expression node {type(node).__name__}"
            )

        try:
            arr, _mag = walk(expr)
        except TypeError:
            return None  # unknown node type: let the reference path raise
        if arr.shape[1] == 1:
            full = np.empty((ctx.L, ext_n), np.int64)
            np.copyto(full, arr)
            arr = full
        return ctx.lower(arr)

    def reduce_column(
        self, values: Sequence[int], p: int
    ) -> list[int] | None:
        if np is None or len(values) < MIN_REDUCE or p.bit_length() <= 64:
            return None
        try:
            arr = np.asarray(values, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            return None
        if not (arr >= 0).all():
            return None
        # Every value fits in a nonnegative int64 and p > 2^64, so each
        # is already its own residue: reduction is the identity.
        return list(values)
