"""Optional gmpy2 scalar backend.

gmpy2 wraps GMP, whose 254-bit multiplication and extended-GCD
inversion beat CPython's bigints by a useful margin *per scalar op*.
The structure of the hot loops is unchanged -- this backend accelerates
the Montgomery inversion ladder element-by-element, it does not
vectorize -- so it composes with (and loses to) the numpy limb engine
wherever that one applies, which is why ``auto`` prefers numpy.

The import is gated: on hosts without gmpy2 (:meth:`available` False)
the ``auto`` chain skips straight past this backend and nothing here
executes.  gmpy2 is NOT vendored or required; it arrives only via the
``perf`` optional-dependency extra.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.backend import FieldBackend

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None

#: Below this, mpz conversion overhead eats the per-op win.
MIN_BATCH = 64


class Gmpy2Backend(FieldBackend):
    """Montgomery batch inversion on ``mpz`` scalars; every other hook
    declines (whole-array work belongs to the numpy engine)."""

    name = "gmpy2"

    @classmethod
    def available(cls) -> bool:
        return _gmpy2 is not None

    def batch_inv(self, values: Sequence[int], p: int) -> list[int] | None:
        if _gmpy2 is None or len(values) < MIN_BATCH:
            return None
        mpz = _gmpy2.mpz
        mp = mpz(p)
        n = len(values)
        ms = [mpz(v) for v in values]
        prefix = [mpz(0)] * n
        acc = mpz(1)
        for i, v in enumerate(ms):
            prefix[i] = acc
            acc = acc * v % mp
        inv_acc = _gmpy2.invert(acc, mp)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = int(prefix[i] * inv_acc % mp)
            inv_acc = inv_acc * ms[i] % mp
        return out
