"""Pluggable field-arithmetic backends.

The reference prover does all field arithmetic on plain Python ints.
That is the correctness baseline, but several hot paths -- whole-vector
batch inversion, NTT butterflies, extended-domain expression evaluation
-- are *data parallel*, and a vectorized engine can run them on whole
arrays at once.  This package provides that seam:

- :mod:`~repro.algebra.backend.reference` -- the pure-Python backend
  (declines every hook; callers run their reference loops),
- :mod:`~repro.algebra.backend.numpy_backend` -- limb-vector arithmetic
  on numpy int64 arrays (:mod:`~repro.algebra.backend.numpy_limb`),
- :mod:`~repro.algebra.backend.gmpy2_scalar` -- optional gmpy2 scalar
  path for the Montgomery inversion ladder.

Every hook is **bit-identical** to the reference path: same field
elements out, same proof bytes under
:func:`repro.algebra.field.deterministic_rng`, same telemetry counter
totals (counters are incremented by the call sites *before* dispatch).
A hook returns ``None`` to decline -- wrong modulus, vector too short
to amortize the array dispatch, unsupported shape -- and the caller
falls through to its reference loop.  That makes backend selection a
pure performance knob, never a correctness one.

Selection mirrors ``REPRO_KERNEL_FASTPATH``: the ``REPRO_FIELD_BACKEND``
environment variable picks ``auto`` (default), ``python``, ``numpy`` or
``gmpy2``; :func:`set_backend` / :func:`backend` switch it in-process
(benchmarks race both sides from one interpreter).  ``auto`` resolves
to the fastest *available* engine -- numpy, then gmpy2, then python --
so machines without the optional dependencies transparently run the
reference path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

_ENV_FLAG = "REPRO_FIELD_BACKEND"

#: Resolution order for ``auto``: fastest available engine wins.
_AUTO_ORDER = ("numpy", "gmpy2", "python")


class FieldBackend:
    """Base class: every hook declines, callers run their reference
    loops.  Subclasses override the hooks they can accelerate; each
    MUST return bit-identical results to the reference path or ``None``
    to decline.

    Hooks never raise on unsupported inputs -- unsupported means
    decline.  Zero-element checks and telemetry counters belong to the
    call sites (which run them before dispatch), so counter totals and
    error behavior are backend-independent.
    """

    #: Registry key; also what ``bench_metadata`` reports.
    name = "python"

    @classmethod
    def available(cls) -> bool:
        """True when this backend's dependencies import on this host."""
        return True

    def batch_inv(self, values: Sequence[int], p: int) -> list[int] | None:
        """Invert ``values`` (already canonical, already zero-checked)
        mod ``p``, or decline."""
        return None

    def ntt(self, values: list[int], omega: int, p: int) -> list[int] | None:
        """Forward NTT of canonical ``values`` (length a power of two,
        ``omega`` of matching order), or decline."""
        return None

    def lagrange_evals(
        self,
        x: int,
        count: int,
        *,
        p: int,
        omega: int,
        omega_inv: int,
        size: int,
        kk: int,
    ) -> list[int] | None:
        """``[kk * inv(x * omega^-i - 1) for i in range(count)]`` over a
        size-``size`` domain -- the fused form of the Lagrange basis
        evaluations ``L_i(x) = (z/n) / (x * omega^-i - 1)`` with
        ``kk = z/n``.  The caller guarantees ``x`` is outside the domain
        (all denominators nonzero).  Decline with ``None``."""
        return None

    def eval_expression_ext(
        self,
        expr: object,
        get_column_ext: Callable[[object], list[int]],
        ext_n: int,
        rotation_factor: int,
        p: int,
    ) -> list[int] | None:
        """Evaluate a PLONKish expression tree over the extended domain
        (see :func:`repro.proving.evaluation.evaluate_expression_ext`),
        or decline."""
        return None

    def reduce_column(
        self, values: Sequence[int], p: int
    ) -> list[int] | None:
        """``[v % p for v in values]``, or decline."""
        return None


def _registry() -> dict[str, FieldBackend]:
    """Name -> backend instance.  Built lazily so importing this module
    never imports numpy/gmpy2; instances are cached after first use."""
    global _BACKENDS
    if _BACKENDS is None:
        from repro.algebra.backend.gmpy2_scalar import Gmpy2Backend
        from repro.algebra.backend.numpy_backend import NumpyBackend
        from repro.algebra.backend.reference import PythonBackend

        _BACKENDS = {
            "python": PythonBackend(),
            "numpy": NumpyBackend(),
            "gmpy2": Gmpy2Backend(),
        }
    return _BACKENDS


_BACKENDS: dict[str, FieldBackend] | None = None


def _resolve(name: str) -> FieldBackend:
    """Map a requested name to a usable backend instance.

    ``auto`` -- and any unrecognized value, so a typo'd environment
    variable degrades to the default rather than breaking imports --
    walks :data:`_AUTO_ORDER` and returns the first backend whose
    dependencies are available.  A recognized-but-unavailable name
    (``numpy`` on a host without numpy) also falls back down the auto
    chain: explicit selection is an optimization request, not a hard
    dependency declaration.
    """
    registry = _registry()
    candidates = [name] if name in registry else []
    candidates += [n for n in _AUTO_ORDER if n not in candidates]
    for candidate in candidates:
        engine = registry[candidate]
        if engine.available():
            return engine
    return registry["python"]  # pragma: no cover - python is always available


_requested: str = os.environ.get(_ENV_FLAG, "auto").strip().lower() or "auto"
_active: FieldBackend | None = None


def active() -> FieldBackend:
    """The backend currently receiving hook dispatches."""
    global _active
    if _active is None:
        _active = _resolve(_requested)
    return _active


def backend_name() -> str:
    """Name of the active backend (after ``auto`` resolution)."""
    return active().name


def available_backends() -> list[str]:
    """Names of every backend whose dependencies import on this host."""
    return [
        name for name, engine in _registry().items() if engine.available()
    ]


def set_backend(name: str) -> str:
    """Select a backend by name (``auto`` re-resolves); returns the
    *requested* name that was previously in effect so callers can
    restore it."""
    global _requested, _active
    previous = _requested
    _requested = (name or "auto").strip().lower()
    _active = _resolve(_requested)
    return previous


@contextmanager
def backend(name: str) -> Iterator[None]:
    """Temporarily force a backend (tests, A/B benchmark races)."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


__all__ = [
    "FieldBackend",
    "active",
    "available_backends",
    "backend",
    "backend_name",
    "set_backend",
]
