"""The pure-Python reference backend.

Declines every hook, so call sites run their reference loops on plain
Python ints.  This is the correctness baseline the vectorized backends
are validated against, and what ``auto`` resolves to on hosts without
numpy or gmpy2.
"""

from __future__ import annotations

from repro.algebra.backend import FieldBackend


class PythonBackend(FieldBackend):
    """Every hook inherits the declining default from
    :class:`FieldBackend` -- the reference loops at the call sites ARE
    this backend's implementation."""

    name = "python"
