"""Finite-field and polynomial algebra substrate.

PoneglyphDB's circuits live over the scalar field of the Pallas curve
(a 255-bit prime field with two-adicity 32, as used by Halo2).  This
package provides:

- :mod:`repro.algebra.field` -- prime-field arithmetic contexts and an
  ergonomic element wrapper,
- :mod:`repro.algebra.poly` -- dense univariate polynomials,
- :mod:`repro.algebra.domain` -- radix-2 FFT evaluation domains used by
  the PLONKish prover.

Internally, field elements are plain Python integers in ``[0, p)`` and
all operations are routed through a :class:`~repro.algebra.field.Field`
context object.  This keeps the prover's inner loops allocation-free
while still offering the operator-overloaded
:class:`~repro.algebra.field.Felt` wrapper at API boundaries.
"""

from repro.algebra.field import (
    BASE_FIELD,
    SCALAR_FIELD,
    Field,
    Felt,
    deterministic_rng,
)
from repro.algebra.domain import EvaluationDomain
from repro.algebra.poly import Polynomial

__all__ = [
    "BASE_FIELD",
    "SCALAR_FIELD",
    "Field",
    "Felt",
    "EvaluationDomain",
    "Polynomial",
    "deterministic_rng",
]
