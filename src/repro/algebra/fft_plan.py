"""Cached NTT execution plans: bit-reversal indices + twiddle ladders.

The reference :func:`repro.algebra.domain.fft_in_place` rebuilds the
per-stage twiddle ladder (``n - 1`` multiplications plus one modexp per
stage) on *every* transform.  The prover runs thousands of transforms
over a handful of domains, so this module precomputes the plan --
bit-reversal swap pairs and the full twiddle table of every stage --
once per ``(n, omega, p)`` and replays it.

Plans live in a module-level cache: the parent process and each forked
worker build a plan at most once and hit it thereafter (the
``fft.twiddle_hits`` / ``fft.twiddle_builds`` counters record the
traffic).  Plans are plain picklable data, so they can also ship
across the fork boundary inside task arguments if a caller prefers.
"""

from __future__ import annotations

from repro import telemetry


class NttPlan:
    """A reusable transform schedule for one ``(n, omega, p)``."""

    __slots__ = ("n", "omega", "p", "swaps", "stages")

    def __init__(self, n: int, omega: int, p: int):
        if n & (n - 1):
            raise ValueError("fft size must be a power of two")
        self.n = n
        self.omega = omega % p
        self.p = p
        # Bit-reversal permutation as explicit swap pairs (i < j).
        swaps = []
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                swaps.append((i, j))
        self.swaps = swaps
        # Twiddle ladder per stage: omega^(n/length) powers, half a
        # stage each; n - 1 entries in total.
        stages = []
        length = 2
        while length <= n:
            w_m = pow(self.omega, n // length, p)
            half = length // 2
            ws = [1] * half
            for i in range(1, half):
                ws[i] = ws[i - 1] * w_m % p
            stages.append(ws)
            length *= 2
        self.stages = stages

    # Plans are pure data; pickling ships them to workers when needed.
    def __getstate__(self):
        return (self.n, self.omega, self.p, self.swaps, self.stages)

    def __setstate__(self, state):
        self.n, self.omega, self.p, self.swaps, self.stages = state


#: Process-local plan cache.  Forked workers inherit the parent's
#: plans; ones built after the fork are rebuilt per worker on miss.
_PLANS: dict[tuple[int, int, int], NttPlan] = {}


def plan_for(n: int, omega: int, p: int) -> NttPlan:
    """The cached plan for ``(n, omega, p)``, building it on first use."""
    key = (n, omega, p)
    plan = _PLANS.get(key)
    if plan is None:
        plan = NttPlan(n, omega, p)
        _PLANS[key] = plan
        telemetry.incr("fft.twiddle_builds")
    else:
        telemetry.incr("fft.twiddle_hits")
    return plan


def cache_size() -> int:
    return len(_PLANS)


def clear_cache() -> None:
    _PLANS.clear()


def ntt_in_place(values: list[int], plan: NttPlan) -> None:
    """Iterative Cooley-Tukey NTT replaying a precomputed plan.

    Identical butterflies (and therefore identical outputs) to the
    reference transform; only the index/twiddle recomputation is gone.
    """
    if len(values) != plan.n:
        raise ValueError("vector length does not match plan size")
    p = plan.p
    n = plan.n
    for i, j in plan.swaps:
        values[i], values[j] = values[j], values[i]
    length = 2
    for ws in plan.stages:
        half = length // 2
        for start in range(0, n, length):
            for i in range(half):
                base = start + i
                lo = values[base]
                hi = values[base + half] * ws[i] % p
                values[base] = (lo + hi) % p
                values[base + half] = (lo - hi) % p
        length *= 2
