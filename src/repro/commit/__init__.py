"""Polynomial and vector commitments.

PoneglyphDB commits to circuit columns and to the database itself with
the **Inner Product Argument** (IPA) over a 254-bit prime-order group
(paper section 3.2), chosen for (1) linear proving time, (2)
logarithmic proof size / verification recursion, and (3) PLONKish
compatibility.  Public parameters are derived from nothing-up-my-sleeve
hashes -- no trusted setup.
"""

from repro.commit.params import PublicParams, setup
from repro.commit.pedersen import pedersen_commit
from repro.commit.ipa import IpaProof, commit_polynomial, open_polynomial, verify_opening

__all__ = [
    "PublicParams",
    "setup",
    "pedersen_commit",
    "IpaProof",
    "commit_polynomial",
    "open_polynomial",
    "verify_opening",
]
