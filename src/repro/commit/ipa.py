"""The Inner Product Argument polynomial commitment (Halo / BCMS style).

Given a Pedersen commitment ``C = <a, G> + r*W`` to the coefficients of
a polynomial ``p`` and a public evaluation point ``x``, the prover
convinces the verifier that ``p(x) = v`` with a proof of ``2 log n``
group elements plus two scalars.  This is the scheme the paper selects
(section 3.2) for its linear prover, logarithmic proofs, and
compatibility with PLONKish circuits.

Protocol sketch (non-interactive via the transcript):

1. Fold the claimed value into the commitment: the statement becomes
   ``C' = <a, G> + r*W + <a, b> * U'`` where ``b = (1, x, .., x^{n-1})``
   and ``U' = xi * U`` for a transcript challenge ``xi``.
2. ``log n`` halving rounds.  Round j publishes ``L_j, R_j`` (cross
   terms with fresh blinding), squeezes ``u_j``, and folds
   ``a, b, G`` to half length.
3. Finally the prover reveals the folded scalar ``a_0`` and the
   accumulated blinding; the verifier recomputes the folded base
   ``G_0 = <s, G>`` and checks one group equation.

Zero-knowledge of the *circuit* witness does not rest on hiding ``a``
here: as in Halo2, advice polynomials carry random blinding rows, so
the revealed folded scalar is statistically independent of the witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import kernels, parallel, telemetry
from repro.algebra.field import Field
from repro.commit.params import PublicParams
from repro.ecc import fixed_base
from repro.ecc.curve import (
    Point,
    curve_by_name,
    points_from_affine_tuples,
    points_to_affine_tuples,
)
from repro.ecc.msm import fold_bases, msm
from repro.transcript import Transcript
from repro.wire import ByteReader, SCALAR_BYTES, point_wire_size


@dataclass
class IpaProof:
    """A single-point opening proof.

    ``rounds`` holds the (L, R) pair of every halving round; ``a`` is
    the fully folded coefficient and ``blind`` the accumulated blinding
    factor revealed for the final check.
    """

    rounds: list[tuple[Point, Point]]
    a: int
    blind: int

    def size_bytes(self) -> int:
        """Serialized size (used for the paper's proof-size metrics)."""
        if not self.rounds:
            return 2 * 32
        point_bytes = len(self.rounds[0][0].to_bytes())
        return 2 * len(self.rounds) * point_bytes + 2 * 32

    def to_bytes(self) -> bytes:
        """Canonical serialization: round count, the (L, R) points, then
        the two final scalars reduced into the scalar field."""
        out = [len(self.rounds).to_bytes(4, "little")]
        modulus = 1 << (8 * SCALAR_BYTES)
        for left, right in self.rounds:
            out.append(left.to_bytes())
            out.append(right.to_bytes())
        if self.rounds:
            modulus = self.rounds[0][0].curve.scalar_field.p
        out.append((self.a % modulus).to_bytes(SCALAR_BYTES, "little"))
        out.append((self.blind % modulus).to_bytes(SCALAR_BYTES, "little"))
        return b"".join(out)

    @classmethod
    def read_from(
        cls, reader: ByteReader, curve, expected_rounds: int | None = None
    ) -> "IpaProof":
        """Strictly decode one proof from ``reader`` (see
        :class:`repro.wire.ByteReader` for the rejection rules).

        ``expected_rounds`` pins the round count to ``log2 n`` of the
        public parameters; an unexpected count is rejected before any
        point is parsed.
        """
        from repro.wire import WireFormatError

        point_size = point_wire_size(curve)
        n_rounds = reader.count(
            "ipa rounds",
            element_size=2 * point_size,
            max_count=(
                expected_rounds
                if expected_rounds is not None
                else curve.scalar_field.two_adicity
            ),
        )
        if expected_rounds is not None and n_rounds != expected_rounds:
            raise WireFormatError(
                f"ipa proof has {n_rounds} rounds, expected {expected_rounds}"
            )
        rounds = [
            (
                reader.point(curve, "ipa L"),
                reader.point(curve, "ipa R"),
            )
            for _ in range(n_rounds)
        ]
        p = curve.scalar_field.p
        a = reader.scalar(p, "ipa a")
        blind = reader.scalar(p, "ipa blind")
        return cls(rounds=rounds, a=a, blind=blind)

    @classmethod
    def from_bytes(
        cls, curve, data: bytes, expected_rounds: int | None = None
    ) -> "IpaProof":
        """Strict standalone round-trip inverse of :meth:`to_bytes`
        (rejects trailing bytes)."""
        reader = ByteReader(data)
        proof = cls.read_from(reader, curve, expected_rounds)
        reader.finish()
        return proof


def commit_polynomial(
    params: PublicParams, coeffs: Sequence[int], blind: int
) -> Point:
    """Commit to polynomial coefficients (little-endian).

    With the kernel fast path enabled the MSM runs against the
    parameter set's fixed-base tables (same group element)."""
    padded = list(coeffs) + [0] * (params.n - len(coeffs))
    if len(padded) > params.n:
        raise ValueError("polynomial exceeds parameter capacity")
    if kernels.fastpath_enabled():
        tables = fixed_base.tables_for_params(params)
        return fixed_base.fixed_base_msm(
            tables,
            padded + [blind],
            indices=list(range(params.n)) + [params.n],
        )
    return msm(list(params.g) + [params.w], padded + [blind])


def _commit_batch_task(
    curve_name: str,
    fingerprint: str,
    g_coords: list[tuple[int, int]],
    w_coord: tuple[int, int],
    jobs: list[tuple[list[int], int]],
) -> list[tuple[int, int]]:
    """Worker task: commit each (padded coefficients, blind) job.

    Bases travel once per task as affine tuples; inside a worker the
    MSM itself runs serially (no nested pools).  Workers prefer the
    fixed-base tables under ``fingerprint`` (inherited at fork or read
    from the attached disk cache); a miss falls back to the generic MSM
    over the shipped bases -- identical elements either way.
    """
    curve = curve_by_name(curve_name)
    n = len(g_coords)
    if kernels.fastpath_enabled():
        tables = fixed_base.lookup_tables(fingerprint)
        if tables is not None:
            indices = list(range(n)) + [n]
            return points_to_affine_tuples(
                [
                    fixed_base.fixed_base_msm(tables, padded + [blind], indices)
                    for padded, blind in jobs
                ]
            )
    bases = points_from_affine_tuples(curve, g_coords) + points_from_affine_tuples(
        curve, [w_coord]
    )
    return points_to_affine_tuples(
        [msm(bases, padded + [blind]) for padded, blind in jobs]
    )


def commit_polynomials(
    params: PublicParams, items: Sequence[tuple[Sequence[int], int]]
) -> list[Point]:
    """Commit many ``(coeffs, blind)`` pairs, one MSM per polynomial,
    across the worker pool when one is configured.

    Results are identical to calling :func:`commit_polynomial` in a
    loop (each commitment is an independent pure function); only the
    scheduling differs.
    """
    with telemetry.span("commit.polynomials", count=len(items)):
        return _commit_polynomials(params, items)


def _commit_polynomials(
    params: PublicParams, items: Sequence[tuple[Sequence[int], int]]
) -> list[Point]:
    if not parallel.is_parallel() or len(items) < 2:
        return [commit_polynomial(params, coeffs, blind) for coeffs, blind in items]
    jobs = []
    for coeffs, blind in items:
        if len(coeffs) > params.n:
            raise ValueError("polynomial exceeds parameter capacity")
        jobs.append((list(coeffs) + [0] * (params.n - len(coeffs)), blind))
    if kernels.fastpath_enabled():
        # Build (or load) the tables in the parent first: workers forked
        # afterwards inherit the registry; ones forked earlier fall back
        # through the disk cache or to the generic MSM.
        fixed_base.tables_for_params(params)
    g_coords = points_to_affine_tuples(list(params.g))
    w_coord = params.w.to_affine()
    tasks = [
        (params.curve.name, params.fingerprint(), g_coords, w_coord, chunk)
        for chunk in parallel.chunked(jobs, parallel.workers())
    ]
    out: list[Point] = []
    for chunk in parallel.pmap(_commit_batch_task, tasks):
        out.extend(points_from_affine_tuples(params.curve, chunk))
    return out


def _powers(x: int, n: int, p: int) -> list[int]:
    out = [1] * n
    for i in range(1, n):
        out[i] = out[i - 1] * x % p
    return out


def open_polynomial(
    params: PublicParams,
    transcript: Transcript,
    coeffs: Sequence[int],
    blind: int,
    x: int,
    field: Field,
) -> IpaProof:
    """Produce an opening proof for ``p(x)`` against the commitment made
    with ``blind``.

    The caller must already have absorbed the commitment, the point and
    the claimed evaluation into ``transcript`` (the verifier mirrors
    this), so the challenges bind the full statement.
    """
    with telemetry.span("ipa.open", n=params.n):
        return _open_polynomial(params, transcript, coeffs, blind, x, field)


def _open_polynomial(
    params: PublicParams,
    transcript: Transcript,
    coeffs: Sequence[int],
    blind: int,
    x: int,
    field: Field,
) -> IpaProof:
    p = field.p
    n = params.n
    a = list(c % p for c in coeffs) + [0] * (n - len(coeffs))
    b = _powers(x % p, n, p)
    g: list[Point] = list(params.g)

    xi = transcript.challenge_scalar(b"ipa-xi")
    u_prime = params.u * xi

    r = blind % p
    rounds: list[tuple[Point, Point]] = []
    while n > 1:
        half = n // 2
        a_lo, a_hi = a[:half], a[half:]
        b_lo, b_hi = b[:half], b[half:]
        g_lo, g_hi = g[:half], g[half:]

        l_blind = field.rand()
        r_blind = field.rand()
        inner_lo_hi = sum(ai * bi for ai, bi in zip(a_lo, b_hi)) % p
        inner_hi_lo = sum(ai * bi for ai, bi in zip(a_hi, b_lo)) % p
        left = msm(
            g_hi + [u_prime, params.w], a_lo + [inner_lo_hi, l_blind]
        )
        right = msm(
            g_lo + [u_prime, params.w], a_hi + [inner_hi_lo, r_blind]
        )
        transcript.absorb_point(b"ipa-L", left)
        transcript.absorb_point(b"ipa-R", right)
        u = transcript.challenge_scalar(b"ipa-u")
        u_inv = field.inv(u)

        a = [(lo * u + hi * u_inv) % p for lo, hi in zip(a_lo, a_hi)]
        b = [(lo * u_inv + hi * u) % p for lo, hi in zip(b_lo, b_hi)]
        g = fold_bases(g_lo, g_hi, u_inv, u)
        u_sq = u * u % p
        u_inv_sq = u_inv * u_inv % p
        r = (r + l_blind * u_sq + r_blind * u_inv_sq) % p
        rounds.append((left, right))
        n = half

    return IpaProof(rounds=rounds, a=a[0], blind=r)


def reduce_opening(
    params: PublicParams,
    transcript: Transcript,
    commitment: Point,
    x: int,
    value: int,
    proof: IpaProof,
    field: Field,
) -> tuple[list[int], int, Point] | None:
    """Run the cheap (logarithmic) part of opening verification.

    Returns ``(s, a, P)`` such that the opening is valid iff::

        msm(params.g, [a * s_i]) + P == identity

    i.e. everything *except* the linear-time base-folding MSM.  That
    final check is performed immediately by :func:`verify_opening`, or
    deferred and amortized across many proofs by the recursion
    accumulator (:class:`repro.proving.recursion.Accumulator`).

    Returns ``None`` when the proof is structurally invalid.
    """
    p = field.p
    n = params.n
    if len(proof.rounds) != params.k:
        return None

    xi = transcript.challenge_scalar(b"ipa-xi")
    u_prime = params.u * xi

    # Statement commitment with the claimed value folded in.
    c = commitment + u_prime * (value % p)

    challenges: list[int] = []
    for left, right in proof.rounds:
        transcript.absorb_point(b"ipa-L", left)
        transcript.absorb_point(b"ipa-R", right)
        challenges.append(transcript.challenge_scalar(b"ipa-u"))

    inv_challenges = field.batch_inv(challenges)
    for (left, right), u, u_inv in zip(proof.rounds, challenges, inv_challenges):
        c = c + left * (u * u % p) + right * (u_inv * u_inv % p)

    # s[i] = prod over bits of i of (u_j if bit set else u_j^{-1}),
    # with round 0 folding the top half (most significant bit).
    s = [1] * n
    k = params.k
    for j, (u, u_inv) in enumerate(zip(challenges, inv_challenges)):
        bit = k - 1 - j
        stride = 1 << bit
        for i in range(n):
            s[i] = s[i] * (u if i & stride else u_inv) % p

    b_final = 0
    x_pow = 1
    x = x % p
    for si in s:
        b_final = (b_final + si * x_pow) % p
        x_pow = x_pow * x % p

    # P collects everything that is not msm(G, a*s).
    residual = msm(
        [u_prime, params.w],
        [proof.a * b_final % p, proof.blind],
    ) - c
    return s, proof.a, residual


def verify_opening(
    params: PublicParams,
    transcript: Transcript,
    commitment: Point,
    x: int,
    value: int,
    proof: IpaProof,
    field: Field,
) -> bool:
    """Verify an opening proof.

    The verifier's work is one ``n``-sized MSM (to fold the bases) plus
    ``O(log n)`` group operations -- the linear MSM is what Halo-style
    recursion amortizes across proofs (see
    :mod:`repro.proving.recursion`).
    """
    reduced = reduce_opening(params, transcript, commitment, x, value, proof, field)
    if reduced is None:
        return False
    s, a, residual = reduced
    p = field.p
    scalars = [a * si % p for si in s]
    if kernels.fastpath_enabled():
        tables = fixed_base.tables_for_params(params)
        folded = fixed_base.fixed_base_msm(tables, scalars)
    else:
        folded = msm(list(params.g), scalars)
    return (folded + residual).is_identity()
