"""Public parameters for the IPA commitment scheme.

Table 2 of the paper measures exactly this step: deriving ``2^k``
independent group generators (plus two auxiliary bases) whose discrete
logs nobody knows.  Generation uses hash-to-curve on public strings --
"publicly verifiable randomness", no trusted setup -- and is a one-time
cost, reusable for every circuit of at most ``2^k`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecc.curve import Curve, PALLAS, Point

_DOMAIN = b"poneglyphdb-params-v1"


@dataclass
class PublicParams:
    """IPA commitment bases over a curve.

    Attributes
    ----------
    k:
        log2 of the maximum number of circuit rows supported.
    g:
        ``2^k`` commitment bases, one per coefficient.
    w:
        The blinding base (commitments are Pedersen-hiding).
    u:
        The base binding claimed inner products inside the IPA rounds.
    """

    curve: Curve
    k: int
    g: list[Point] = field(repr=False)
    w: Point = field(repr=False)
    u: Point = field(repr=False)

    @property
    def n(self) -> int:
        return 1 << self.k

    def truncated(self, k: int) -> "PublicParams":
        """A view supporting smaller circuits (prefix of the bases).

        The paper notes params are reusable for any circuit whose row
        count does not exceed the maximum; this is that reuse.
        """
        if k > self.k:
            raise ValueError(f"cannot grow params from 2^{self.k} to 2^{k}")
        return PublicParams(self.curve, k, self.g[: 1 << k], self.w, self.u)


def setup(k: int, curve: Curve = PALLAS, label: bytes = b"") -> PublicParams:
    """Generate public parameters supporting circuits of ``2^k`` rows.

    Deterministic in ``(k, curve, label)`` so provers and verifiers can
    regenerate identical parameters independently.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = 1 << k
    g = [
        curve.hash_to_curve(_DOMAIN, label + b"|g|" + i.to_bytes(8, "little"))
        for i in range(n)
    ]
    w = curve.hash_to_curve(_DOMAIN, label + b"|w")
    u = curve.hash_to_curve(_DOMAIN, label + b"|u")
    return PublicParams(curve=curve, k=k, g=g, w=w, u=u)
