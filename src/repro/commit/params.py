"""Public parameters for the IPA commitment scheme.

Table 2 of the paper measures exactly this step: deriving ``2^k``
independent group generators (plus two auxiliary bases) whose discrete
logs nobody knows.  Generation uses hash-to-curve on public strings --
"publicly verifiable randomness", no trusted setup -- and is a one-time
cost, reusable for every circuit of at most ``2^k`` rows.

Each generator is an independent hash-to-curve evaluation, so with
workers configured in :mod:`repro.parallel` derivation is split across
processes (bit-identical output: every generator is a pure function of
its index).  Because the result is also a pure function of
``(curve, k, label)``, it is a prime artifact-cache candidate -- see
:func:`cached_setup`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import parallel
from repro.ecc.curve import (
    Curve,
    PALLAS,
    Point,
    curve_by_name,
    points_from_affine_tuples,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import ArtifactCache

_DOMAIN = b"poneglyphdb-params-v1"

#: Parameter sets smaller than this generate serially even with a pool
#: (the fork/collect overhead exceeds the hashing work).
_PARALLEL_MIN_N = 64


@dataclass
class PublicParams:
    """IPA commitment bases over a curve.

    Attributes
    ----------
    k:
        log2 of the maximum number of circuit rows supported.
    g:
        ``2^k`` commitment bases, one per coefficient.
    w:
        The blinding base (commitments are Pedersen-hiding).
    u:
        The base binding claimed inner products inside the IPA rounds.
    """

    curve: Curve
    k: int
    g: list[Point] = field(repr=False)
    w: Point = field(repr=False)
    u: Point = field(repr=False)
    #: Lazily computed content hash (see :meth:`fingerprint`); excluded
    #: from equality so a hashed and an unhashed copy still compare.
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    @property
    def n(self) -> int:
        return 1 << self.k

    def fingerprint(self) -> str:
        """Content hash of the canonical serialization.

        Keys everything derived from this exact parameter set -- the
        fixed-base MSM tables in :mod:`repro.ecc.fixed_base` most of
        all.  Computed once and cached on the instance (the bases are
        immutable after construction); a truncated view hashes to a
        different fingerprint than its parent.
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.blake2b(
                self.to_bytes(), digest_size=20
            ).hexdigest()
        return self._fingerprint

    def truncated(self, k: int) -> "PublicParams":
        """A view supporting smaller circuits (prefix of the bases).

        The paper notes params are reusable for any circuit whose row
        count does not exceed the maximum; this is that reuse.
        """
        if k > self.k:
            raise ValueError(f"cannot grow params from 2^{self.k} to 2^{k}")
        return PublicParams(self.curve, k, self.g[: 1 << k], self.w, self.u)

    # -- stable wire format (the artifact cache stores this) -------------

    def to_bytes(self) -> bytes:
        """Canonical serialization: curve name, k, then every base in
        uncompressed affine form."""
        name = self.curve.name.encode()
        out = [len(name).to_bytes(1, "little"), name, self.k.to_bytes(1, "little")]
        out.extend(pt.to_bytes() for pt in self.g)
        out.append(self.w.to_bytes())
        out.append(self.u.to_bytes())
        return b"".join(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicParams":
        name_len = data[0]
        curve = curve_by_name(data[1 : 1 + name_len].decode())
        k = data[1 + name_len]
        stride = 2 * curve.field._byte_length
        body = data[2 + name_len :]
        n = 1 << k
        if len(body) != (n + 2) * stride:
            raise ValueError("truncated public-parameter encoding")
        points = [
            Point.from_bytes(curve, body[i * stride : (i + 1) * stride])
            for i in range(n + 2)
        ]
        return cls(curve=curve, k=k, g=points[:n], w=points[n], u=points[n + 1])


def _derive_generators_task(
    curve_name: str, label: bytes, start: int, stop: int
) -> list[tuple[int, int]]:
    """Worker task: hash-to-curve the generators ``[start, stop)``."""
    curve = curve_by_name(curve_name)
    return [
        curve.hash_to_curve(
            _DOMAIN, label + b"|g|" + i.to_bytes(8, "little")
        ).to_affine()
        for i in range(start, stop)
    ]


def setup(k: int, curve: Curve = PALLAS, label: bytes = b"") -> PublicParams:
    """Generate public parameters supporting circuits of ``2^k`` rows.

    Deterministic in ``(k, curve, label)`` so provers and verifiers can
    regenerate identical parameters independently; with a worker pool
    configured the ``2^k`` hash-to-curve derivations run in parallel.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = 1 << k
    if parallel.is_parallel() and n >= _PARALLEL_MIN_N:
        tasks = [
            (curve.name, label, lo, hi)
            for lo, hi in parallel.chunk_bounds(n, parallel.workers())
        ]
        g: list[Point] = []
        for chunk in parallel.pmap(_derive_generators_task, tasks):
            g.extend(points_from_affine_tuples(curve, chunk))
    else:
        g = [
            curve.hash_to_curve(_DOMAIN, label + b"|g|" + i.to_bytes(8, "little"))
            for i in range(n)
        ]
    w = curve.hash_to_curve(_DOMAIN, label + b"|w")
    u = curve.hash_to_curve(_DOMAIN, label + b"|u")
    return PublicParams(curve=curve, k=k, g=g, w=w, u=u)


def cached_setup(
    cache: "ArtifactCache",
    k: int,
    curve: Curve = PALLAS,
    label: bytes = b"",
) -> tuple[PublicParams, bool]:
    """:func:`setup` through the artifact cache.

    Returns ``(params, was_cache_hit)``.  The key is the full input
    description ``(curve, k, label)``; a hit deserializes the canonical
    byte form and skips every hash-to-curve evaluation.
    """
    return cache.fetch(
        "params",
        (curve.name, k, label),
        build=lambda: setup(k, curve, label),
        serialize=PublicParams.to_bytes,
        deserialize=PublicParams.from_bytes,
    )
