"""Pedersen vector commitments.

``commit(v, r) = <v, G> + r * W`` is perfectly hiding (for uniform r)
and computationally binding under the discrete-log assumption.  The IPA
opening argument (:mod:`repro.commit.ipa`) proves statements about the
committed vector without revealing it.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro.commit.params import PublicParams
from repro.ecc import fixed_base
from repro.ecc.curve import Point
from repro.ecc.msm import msm


def pedersen_commit(
    params: PublicParams, values: Sequence[int], blind: int
) -> Point:
    """Commit to ``values`` (length at most ``params.n``) with blinding
    factor ``blind``.

    With the kernel fast path enabled the MSM runs against the
    parameter set's precomputed fixed-base tables (same group element,
    no doubling chain -- see :mod:`repro.ecc.fixed_base`).
    """
    if len(values) > params.n:
        raise ValueError(
            f"vector of length {len(values)} exceeds params capacity {params.n}"
        )
    if kernels.fastpath_enabled():
        tables = fixed_base.tables_for_params(params)
        return fixed_base.fixed_base_msm(
            tables,
            list(values) + [blind],
            indices=list(range(len(values))) + [params.n],
        )
    points: list[Point] = list(params.g[: len(values)]) + [params.w]
    scalars = list(values) + [blind]
    return msm(points, scalars)
