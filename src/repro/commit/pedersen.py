"""Pedersen vector commitments.

``commit(v, r) = <v, G> + r * W`` is perfectly hiding (for uniform r)
and computationally binding under the discrete-log assumption.  The IPA
opening argument (:mod:`repro.commit.ipa`) proves statements about the
committed vector without revealing it.
"""

from __future__ import annotations

from typing import Sequence

from repro.commit.params import PublicParams
from repro.ecc.curve import Point
from repro.ecc.msm import msm


def pedersen_commit(
    params: PublicParams, values: Sequence[int], blind: int
) -> Point:
    """Commit to ``values`` (length at most ``params.n``) with blinding
    factor ``blind``."""
    if len(values) > params.n:
        raise ValueError(
            f"vector of length {len(values)} exceeds params capacity {params.n}"
        )
    points: list[Point] = list(params.g[: len(values)]) + [params.w]
    scalars = list(values) + [blind]
    return msm(points, scalars)
