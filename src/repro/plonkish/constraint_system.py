"""Circuit configuration: columns, gates, copy constraints, lookups.

A :class:`ConstraintSystem` is the *shape* of a circuit -- which columns
exist and which constraints relate them -- independent of any concrete
witness.  The paper's custom gates (section 4) are built by composing
columns and constraints on one of these; the concrete cell values live
in an :class:`~repro.plonkish.assignment.Assignment`.
"""

from __future__ import annotations

import enum
import hashlib
import logging
from dataclasses import dataclass, field as dataclass_field

from repro.plonkish.expression import (
    ColumnQuery,
    Constant,
    Expression,
    Product,
    Scaled,
    Sum,
)


logger = logging.getLogger("repro.plonkish.constraint_system")


def _describe_column(col: "Column") -> str:
    return f"{col.kind.value}:{col.index}:{col.name}"


def _describe_expr(expr: Expression) -> str:
    """A canonical, collision-resistant text form of an expression tree
    (unlike ``repr``, columns carry kind and index, not just name)."""
    if isinstance(expr, Constant):
        return f"c{expr.value}"
    if isinstance(expr, ColumnQuery):
        return f"q({_describe_column(expr.column)}@{expr.rotation})"
    if isinstance(expr, Sum):
        return f"({_describe_expr(expr.left)}+{_describe_expr(expr.right)})"
    if isinstance(expr, Product):
        return f"({_describe_expr(expr.left)}*{_describe_expr(expr.right)})"
    if isinstance(expr, Scaled):
        return f"({expr.scalar}.{_describe_expr(expr.inner)})"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class ColumnKind(enum.Enum):
    """The three PLONKish column classes (paper section 2.2)."""

    FIXED = "fixed"
    ADVICE = "advice"
    INSTANCE = "instance"


@dataclass(frozen=True)
class Column:
    """A column handle.  ``index`` is unique within a kind."""

    kind: ColumnKind
    index: int
    name: str

    def query(self, rotation: int = 0) -> ColumnQuery:
        """Reference this column in a gate expression at a row offset."""
        return ColumnQuery(self, rotation)

    def cur(self) -> ColumnQuery:
        return ColumnQuery(self, 0)

    def next(self) -> ColumnQuery:
        return ColumnQuery(self, 1)

    def prev(self) -> ColumnQuery:
        return ColumnQuery(self, -1)

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.name}"


@dataclass
class Gate:
    """A named family of polynomial constraints enforced on every row.

    Gates are selector-gated by construction: each constraint expression
    should include a fixed (selector) factor that zeroes it on rows where
    the gate does not apply, which also keeps the blinding rows
    unconstrained.
    """

    name: str
    constraints: list[Expression]


@dataclass
class Lookup:
    """A lookup argument: on every active row, the tuple of input
    expressions must equal the tuple of table expressions evaluated at
    *some* row.

    This is the Plookup-style mechanism (paper section 4.1): multiple
    expressions are compressed into one value with a verifier challenge
    theta, and inclusion is proven with the permutation + adjacency
    constraints of paper Equations (1) and (3).
    """

    name: str
    inputs: list[Expression]
    table: list[Expression]


@dataclass
class Shuffle:
    """A multiset-equality (shuffle) argument, the mechanism behind the
    paper's Equation (5): the union of the input tuple streams must
    equal the union of the table tuple streams as multisets over the
    active rows.

    Each side is a list of *groups*; a group is a list of expressions
    forming one tuple stream.  Multiple groups let a single argument
    prove statements like "column S is a permutation of the values of
    columns A and B together" (used by the join gate's deduplicated
    merge, paper section 4.4).
    """

    name: str
    input_groups: list[list[Expression]]
    table_groups: list[list[Expression]]


@dataclass
class CopyConstraint:
    """Cell equality: ``(left_col, left_row) == (right_col, right_row)``."""

    left_col: Column
    left_row: int
    right_col: Column
    right_row: int


@dataclass
class ConstraintSystem:
    """The declarative description of a circuit's shape."""

    fixed_columns: list[Column] = dataclass_field(default_factory=list)
    advice_columns: list[Column] = dataclass_field(default_factory=list)
    instance_columns: list[Column] = dataclass_field(default_factory=list)
    gates: list[Gate] = dataclass_field(default_factory=list)
    lookups: list[Lookup] = dataclass_field(default_factory=list)
    shuffles: list[Shuffle] = dataclass_field(default_factory=list)
    copies: list[CopyConstraint] = dataclass_field(default_factory=list)
    equality_columns: list[Column] = dataclass_field(default_factory=list)

    # -- column creation ------------------------------------------------------

    def fixed_column(self, name: str) -> Column:
        col = Column(ColumnKind.FIXED, len(self.fixed_columns), name)
        self.fixed_columns.append(col)
        return col

    def advice_column(self, name: str) -> Column:
        col = Column(ColumnKind.ADVICE, len(self.advice_columns), name)
        self.advice_columns.append(col)
        return col

    def instance_column(self, name: str) -> Column:
        col = Column(ColumnKind.INSTANCE, len(self.instance_columns), name)
        self.instance_columns.append(col)
        return col

    def selector(self, name: str) -> Column:
        """Selectors are modelled as plain fixed columns holding 0/1."""
        return self.fixed_column(name)

    # -- constraint creation ---------------------------------------------------

    def create_gate(self, name: str, constraints: list[Expression]) -> None:
        if not constraints:
            raise ValueError(f"gate {name!r} has no constraints")
        self.gates.append(Gate(name, constraints))

    def add_lookup(
        self, name: str, inputs: list[Expression], table: list[Expression]
    ) -> None:
        if len(inputs) != len(table):
            raise ValueError(
                f"lookup {name!r}: {len(inputs)} inputs vs {len(table)} table exprs"
            )
        self.lookups.append(Lookup(name, inputs, table))

    def add_shuffle(
        self,
        name: str,
        input_groups: list[list[Expression]],
        table_groups: list[list[Expression]],
    ) -> None:
        if len(input_groups) != len(table_groups):
            raise ValueError(
                f"shuffle {name!r}: both sides need the same number of "
                f"groups so the grand product balances row by row"
            )
        if not input_groups:
            raise ValueError(f"shuffle {name!r} has no groups")
        self.shuffles.append(Shuffle(name, input_groups, table_groups))

    def enable_equality(self, column: Column) -> None:
        """Mark a column as participating in the copy-constraint
        permutation argument."""
        if column.kind is ColumnKind.INSTANCE:
            raise ValueError(
                "instance columns are compared via public evaluation, "
                "not the permutation argument, in this implementation"
            )
        if column not in self.equality_columns:
            self.equality_columns.append(column)

    def copy(
        self, left_col: Column, left_row: int, right_col: Column, right_row: int
    ) -> None:
        """Constrain two cells to be equal (paper's "equality constraints")."""
        for col in (left_col, right_col):
            if col not in self.equality_columns:
                self.enable_equality(col)
        self.copies.append(CopyConstraint(left_col, left_row, right_col, right_row))

    # -- analysis -------------------------------------------------------------

    def max_gate_degree(self) -> int:
        degree = 1
        for gate in self.gates:
            for constraint in gate.constraints:
                degree = max(degree, constraint.degree())
        return degree

    def required_degree(self, permutation_chunk: int = 3) -> int:
        """The constraint degree the proving system must support,
        accounting for the permutation and lookup argument constraints
        it will synthesize (see :mod:`repro.proving`).

        Every gate is implicitly multiplied by the fixed active-rows
        selector (so randomized blinding rows never violate gates even
        when a gate is guarded by an advice flag), costing one degree.
        """
        degree = self.max_gate_degree() + 1
        if self.equality_columns:
            # active * Z(wX) * prod over chunk of (w + beta*delta*X + gamma)
            degree = max(degree, permutation_chunk + 2)
        for lookup in self.lookups:
            input_deg = max((e.degree() for e in lookup.inputs), default=1)
            table_deg = max((e.degree() for e in lookup.table), default=1)
            # active * Z * (A + beta) * (S + gamma)
            degree = max(degree, 1 + 1 + input_deg + table_deg)
        for shuffle in self.shuffles:
            # active * Z * prod over groups of (compressed_group + gamma)
            for groups in (shuffle.input_groups, shuffle.table_groups):
                total = sum(
                    max((e.degree() for e in group), default=1)
                    for group in groups
                )
                degree = max(degree, 1 + 1 + total)
        return degree

    def num_constraints(self) -> int:
        """Total polynomial constraints (one per gate constraint); the
        complexity currency of the paper's section 4 analyses."""
        return sum(len(g.constraints) for g in self.gates)

    def fingerprint(self) -> str:
        """A stable content hash of the circuit *shape*.

        Two ConstraintSystems built from the same query over the same
        schema produce the same fingerprint; any structural change --
        an extra column, a different constraint, a new copy -- changes
        it.  Proving keys are cached under this value (plus the
        parameter description), so the fingerprint doubles as the cache
        invalidation rule.
        """
        h = hashlib.blake2b(digest_size=20)

        def put(text: str) -> None:
            h.update(text.encode())
            h.update(b"\x00")

        for label, columns in (
            ("F", self.fixed_columns),
            ("A", self.advice_columns),
            ("I", self.instance_columns),
            ("E", self.equality_columns),
        ):
            put(label)
            for col in columns:
                put(_describe_column(col))
        for gate in self.gates:
            put(f"G:{gate.name}")
            for constraint in gate.constraints:
                put(_describe_expr(constraint))
        for lookup in self.lookups:
            put(f"L:{lookup.name}")
            for expr in lookup.inputs:
                put(_describe_expr(expr))
            put("|")
            for expr in lookup.table:
                put(_describe_expr(expr))
        for shuffle in self.shuffles:
            put(f"S:{shuffle.name}")
            for side in (shuffle.input_groups, shuffle.table_groups):
                for group in side:
                    for expr in group:
                        put(_describe_expr(expr))
                    put(",")
                put("|")
        for copy in self.copies:
            put(
                f"C:{_describe_column(copy.left_col)}@{copy.left_row}="
                f"{_describe_column(copy.right_col)}@{copy.right_row}"
            )
        digest = h.hexdigest()
        logger.debug(
            "fingerprint %s: %d gates, %d lookups, %d copies",
            digest, len(self.gates), len(self.lookups), len(self.copies),
        )
        return digest

    def summary(self) -> dict[str, int]:
        return {
            "fixed_columns": len(self.fixed_columns),
            "advice_columns": len(self.advice_columns),
            "instance_columns": len(self.instance_columns),
            "gates": len(self.gates),
            "gate_constraints": self.num_constraints(),
            "lookups": len(self.lookups),
            "copy_constraints": len(self.copies),
            "max_gate_degree": self.max_gate_degree(),
        }
