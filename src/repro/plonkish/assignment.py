"""Concrete cell assignments for a circuit.

An :class:`Assignment` is the witness matrix: one list of field values
per column, ``n_rows`` long, where ``n_rows`` is a power of two.  The
last :data:`ZK_ROWS` rows are reserved for blinding -- gates must be
selector-disabled there, copy constraints and lookups may not touch
them, and the prover fills advice cells there with fresh randomness
before committing (this is where the zero-knowledge property of the
opened evaluations comes from, exactly as in Halo2).
"""

from __future__ import annotations

from repro.algebra import backend as field_backend
from repro.algebra.field import Field
from repro.plonkish.constraint_system import Column, ColumnKind, ConstraintSystem

#: Rows reserved at the bottom of every column for blinding factors.
#: One extra row is consumed conceptually by the final running-product
#: slot of the permutation/lookup arguments.
ZK_ROWS = 4


class Assignment:
    """The value matrix for one concrete instance of a circuit."""

    def __init__(self, cs: ConstraintSystem, field: Field, k: int):
        self.cs = cs
        self.field = field
        self.k = k
        self.n_rows = 1 << k
        self.usable_rows = self.n_rows - ZK_ROWS
        if self.usable_rows <= 0:
            raise ValueError(f"circuit with 2^{k} rows has no usable rows")
        self.fixed: list[list[int]] = [
            [0] * self.n_rows for _ in cs.fixed_columns
        ]
        self.advice: list[list[int]] = [
            [0] * self.n_rows for _ in cs.advice_columns
        ]
        self.instance: list[list[int]] = [
            [0] * self.n_rows for _ in cs.instance_columns
        ]
        #: advice column indices whose blinding rows were set explicitly
        #: (database scans replay the committed tail; see
        #: repro.db.commitment).
        self._pinned_tails: set[int] = set()

    # -- assignment ------------------------------------------------------------

    def _storage(self, column: Column) -> list[int]:
        if column.kind is ColumnKind.FIXED:
            return self.fixed[column.index]
        if column.kind is ColumnKind.ADVICE:
            return self.advice[column.index]
        return self.instance[column.index]

    def assign(self, column: Column, row: int, value: int) -> None:
        if not 0 <= row < self.usable_rows:
            raise IndexError(
                f"row {row} outside usable range [0, {self.usable_rows})"
            )
        self._storage(column)[row] = value % self.field.p

    def assign_column(self, column: Column, values: list[int]) -> None:
        """Assign a column from row 0; remaining usable rows keep 0."""
        if len(values) > self.usable_rows:
            raise ValueError(
                f"{len(values)} values exceed usable rows {self.usable_rows}"
            )
        storage = self._storage(column)
        p = self.field.p
        # Database scans assign whole columns of machine-sized values;
        # the field backend can certify them already-reduced in one
        # vectorized range check instead of n bigint mods.
        reduced = field_backend.active().reduce_column(values, p)
        if reduced is not None:
            storage[: len(reduced)] = reduced
            return
        for i, v in enumerate(values):
            storage[i] = v % p

    def value(self, column: Column, row: int) -> int:
        return self._storage(column)[row % self.n_rows]

    def query(self, column: Column, row: int, rotation: int) -> int:
        """Rotation-aware cell read with wrap-around (the evaluation
        domain is cyclic, so rotations wrap as ``omega^n = 1``)."""
        return self._storage(column)[(row + rotation) % self.n_rows]

    def assign_tail(self, column: Column, tail: list[int]) -> None:
        """Pin an advice column's blinding rows to explicit values.

        Database scans use this to replay the randomness baked into the
        column's commitment, so the scan-link check (commitment delta)
        stays exact.  ``fill_blinding`` will leave these rows alone.
        """
        if column.kind is not ColumnKind.ADVICE:
            raise ValueError("only advice columns carry blinding tails")
        blinding_rows = self.n_rows - self.usable_rows
        if len(tail) != blinding_rows:
            raise ValueError(f"tail must have {blinding_rows} entries")
        storage = self.advice[column.index]
        p = self.field.p
        for offset, value in enumerate(tail):
            storage[self.usable_rows + offset] = value % p
        self._pinned_tails.add(column.index)

    def fill_blinding(self) -> None:
        """Randomize advice cells in the reserved blinding rows (except
        columns whose tails were pinned with :meth:`assign_tail`)."""
        for index, col_values in enumerate(self.advice):
            if index in self._pinned_tails:
                continue
            for row in range(self.usable_rows, self.n_rows):
                col_values[row] = self.field.rand()

    def instance_values(self, column: Column) -> list[int]:
        if column.kind is not ColumnKind.INSTANCE:
            raise ValueError("not an instance column")
        return list(self.instance[column.index])
