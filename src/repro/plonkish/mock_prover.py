"""MockProver: direct constraint checking with precise diagnostics.

The MockProver evaluates every gate polynomial on every row, checks
every copy constraint and every lookup directly against the assignment
-- no cryptography.  It accepts an assignment iff the real prover could
produce a proof that the real verifier accepts (both reduce to the same
satisfiability predicate), so it is the tool of choice for testing the
paper's gate designs quickly, exactly as ``halo2``'s MockProver is used
upstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.field import Field
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import ColumnKind, ConstraintSystem


@dataclass
class VerifyFailure:
    """One violated constraint, with enough context to debug a gate."""

    kind: str  # "gate" | "copy" | "lookup"
    name: str
    row: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.name} at row {self.row}: {self.detail}"


class MockProver:
    """Checks an assignment against its constraint system."""

    def __init__(self, cs: ConstraintSystem, assignment: Assignment, field: Field):
        self.cs = cs
        self.assignment = assignment
        self.field = field

    def verify(self) -> list[VerifyFailure]:
        """All constraint violations (empty list == satisfied)."""
        failures: list[VerifyFailure] = []
        failures.extend(self._check_gates())
        failures.extend(self._check_copies())
        failures.extend(self._check_lookups())
        failures.extend(self._check_shuffles())
        return failures

    def assert_satisfied(self) -> None:
        failures = self.verify()
        if failures:
            report = "\n".join(str(f) for f in failures[:20])
            more = len(failures) - 20
            if more > 0:
                report += f"\n... and {more} more"
            raise AssertionError(f"circuit not satisfied:\n{report}")

    # -- checks ---------------------------------------------------------------

    def _check_gates(self) -> list[VerifyFailure]:
        # Gates are checked on active rows only: the proving system
        # multiplies every gate by the fixed active-rows selector, so
        # blinding rows are unconstrained by construction.
        failures = []
        p = self.field.p
        asg = self.assignment
        for gate in self.cs.gates:
            for c_idx, constraint in enumerate(gate.constraints):
                for row in range(asg.usable_rows):
                    value = constraint.evaluate(
                        lambda col, rot, r=row: asg.query(col, r, rot), p
                    )
                    if value != 0:
                        failures.append(
                            VerifyFailure(
                                "gate",
                                f"{gate.name}#{c_idx}",
                                row,
                                f"evaluates to {value} (expected 0): {constraint}",
                            )
                        )
        return failures

    def _check_copies(self) -> list[VerifyFailure]:
        failures = []
        asg = self.assignment
        for copy in self.cs.copies:
            left = asg.value(copy.left_col, copy.left_row)
            right = asg.value(copy.right_col, copy.right_row)
            if left != right:
                failures.append(
                    VerifyFailure(
                        "copy",
                        f"{copy.left_col.name}[{copy.left_row}] == "
                        f"{copy.right_col.name}[{copy.right_row}]",
                        copy.left_row,
                        f"{left} != {right}",
                    )
                )
        return failures

    def _check_lookups(self) -> list[VerifyFailure]:
        failures = []
        p = self.field.p
        asg = self.assignment
        rows = range(asg.usable_rows)
        for lookup in self.cs.lookups:
            table_rows = set()
            for row in rows:
                table_rows.add(
                    tuple(
                        e.evaluate(lambda col, rot, r=row: asg.query(col, r, rot), p)
                        for e in lookup.table
                    )
                )
            for row in rows:
                needle = tuple(
                    e.evaluate(lambda col, rot, r=row: asg.query(col, r, rot), p)
                    for e in lookup.inputs
                )
                if needle not in table_rows:
                    failures.append(
                        VerifyFailure(
                            "lookup",
                            lookup.name,
                            row,
                            f"input tuple {needle} not present in table",
                        )
                    )
        return failures

    def _check_shuffles(self) -> list[VerifyFailure]:
        from collections import Counter

        failures = []
        p = self.field.p
        asg = self.assignment
        rows = range(asg.usable_rows)
        for shuffle in self.cs.shuffles:

            def multiset(groups):
                counter: Counter = Counter()
                for group in groups:
                    for row in rows:
                        counter[
                            tuple(
                                e.evaluate(
                                    lambda col, rot, r=row: asg.query(col, r, rot), p
                                )
                                for e in group
                            )
                        ] += 1
                return counter

            inputs = multiset(shuffle.input_groups)
            table = multiset(shuffle.table_groups)
            if inputs != table:
                missing = list((inputs - table).items())[:3]
                extra = list((table - inputs).items())[:3]
                failures.append(
                    VerifyFailure(
                        "shuffle",
                        shuffle.name,
                        -1,
                        f"multisets differ; input-only={missing}, "
                        f"table-only={extra}",
                    )
                )
        return failures
