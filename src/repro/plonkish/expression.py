"""Gate expression AST.

Expressions are polynomials over column queries.  A *query* references
a column at a row offset ("rotation"): ``q(col, 1)`` reads the value one
row below the current one, which is how the paper's running-sum and
grand-product constraints (Equations 3 and 5) reference ``Z_{i+1}``.

Expressions support ``+``, ``-``, ``*`` (with ints or expressions) so
gate definitions read like the paper's formulas::

    gate = q_sort * ((p1 - q1) * (p1 - p1.rot(-1)))

The *degree* of an expression (each column query counts 1) determines
the size of the extended evaluation domain the prover needs; the paper's
stated goal of "low-order polynomial constraints" is measured exactly
here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.plonkish.constraint_system import Column


class Expression:
    """Base class for gate expressions."""

    __slots__ = ()

    # -- operator sugar ------------------------------------------------------

    def __add__(self, other: "Expression | int") -> "Expression":
        return Sum(self, _coerce(other))

    def __radd__(self, other: "Expression | int") -> "Expression":
        return Sum(_coerce(other), self)

    def __sub__(self, other: "Expression | int") -> "Expression":
        return Sum(self, Scaled(_coerce(other), -1))

    def __rsub__(self, other: "Expression | int") -> "Expression":
        return Sum(_coerce(other), Scaled(self, -1))

    def __mul__(self, other: "Expression | int") -> "Expression":
        if isinstance(other, int):
            return Scaled(self, other)
        return Product(self, other)

    def __rmul__(self, other: "Expression | int") -> "Expression":
        return self.__mul__(other)

    def __neg__(self) -> "Expression":
        return Scaled(self, -1)

    # -- analysis -----------------------------------------------------------

    def degree(self) -> int:
        raise NotImplementedError

    def evaluate(
        self,
        query_fn: Callable[["Column", int], int],
        p: int,
    ) -> int:
        """Evaluate with ``query_fn(column, rotation) -> int`` resolving
        column references (modulo p)."""
        raise NotImplementedError

    def queries(self) -> set[tuple["Column", int]]:
        """All (column, rotation) pairs referenced."""
        out: set[tuple["Column", int]] = set()
        self._collect_queries(out)
        return out

    def _collect_queries(self, out: set[tuple["Column", int]]) -> None:
        raise NotImplementedError


def _coerce(value: "Expression | int") -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, int):
        return Constant(value)
    raise TypeError(f"cannot use {type(value).__name__} in an expression")


class Constant(Expression):
    """A literal field constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def degree(self) -> int:
        return 0

    def evaluate(self, query_fn, p):
        return self.value % p

    def _collect_queries(self, out):
        pass

    def __repr__(self) -> str:
        return f"{self.value}"


class ColumnQuery(Expression):
    """A reference to ``column`` at the current row plus ``rotation``."""

    __slots__ = ("column", "rotation")

    def __init__(self, column: "Column", rotation: int = 0):
        self.column = column
        self.rotation = rotation

    def degree(self) -> int:
        return 1

    def evaluate(self, query_fn, p):
        return query_fn(self.column, self.rotation) % p

    def _collect_queries(self, out):
        out.add((self.column, self.rotation))

    def __repr__(self) -> str:
        if self.rotation:
            return f"{self.column.name}@{self.rotation:+d}"
        return self.column.name


class Sum(Expression):
    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def degree(self) -> int:
        return max(self.left.degree(), self.right.degree())

    def evaluate(self, query_fn, p):
        return (self.left.evaluate(query_fn, p) + self.right.evaluate(query_fn, p)) % p

    def _collect_queries(self, out):
        self.left._collect_queries(out)
        self.right._collect_queries(out)

    def __repr__(self) -> str:
        return f"({self.left} + {self.right})"


class Product(Expression):
    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def degree(self) -> int:
        return self.left.degree() + self.right.degree()

    def evaluate(self, query_fn, p):
        lhs = self.left.evaluate(query_fn, p)
        if lhs == 0:
            return 0
        return lhs * self.right.evaluate(query_fn, p) % p

    def _collect_queries(self, out):
        self.left._collect_queries(out)
        self.right._collect_queries(out)

    def __repr__(self) -> str:
        return f"{self.left} * {self.right}"


class Scaled(Expression):
    """``scalar * inner`` -- multiplication by a constant (degree-free)."""

    __slots__ = ("inner", "scalar")

    def __init__(self, inner: Expression, scalar: int):
        self.inner = inner
        self.scalar = scalar

    def degree(self) -> int:
        return self.inner.degree()

    def evaluate(self, query_fn, p):
        return self.inner.evaluate(query_fn, p) * self.scalar % p

    def _collect_queries(self, out):
        self.inner._collect_queries(out)

    def __repr__(self) -> str:
        return f"{self.scalar} * ({self.inner})"
