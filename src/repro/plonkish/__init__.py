"""PLONKish arithmetization (paper section 2.2).

A PLONKish circuit is a rectangular matrix of field values with:

- **fixed columns** (circuit constants, committed at keygen),
- **advice columns** (the private witness),
- **instance columns** (public inputs/outputs),
- **polynomial constraints** ("gates") that must vanish on every row,
- **equality (copy) constraints** between cells, and
- **lookup arguments** asserting input expressions take values present
  in table expressions (the Plookup mechanism behind the paper's range
  check designs).

:class:`~repro.plonkish.mock_prover.MockProver` checks all of these
directly against an assignment and reports precise failures; the real
cryptographic pipeline lives in :mod:`repro.proving`.
"""

from repro.plonkish.expression import (
    Expression,
    ColumnQuery,
    Constant,
    Product,
    Scaled,
    Sum,
)
from repro.plonkish.constraint_system import (
    Column,
    ColumnKind,
    ConstraintSystem,
    Gate,
    Lookup,
)
from repro.plonkish.assignment import Assignment
from repro.plonkish.mock_prover import MockProver, VerifyFailure

__all__ = [
    "Expression",
    "ColumnQuery",
    "Constant",
    "Sum",
    "Product",
    "Scaled",
    "Column",
    "ColumnKind",
    "ConstraintSystem",
    "Gate",
    "Lookup",
    "Assignment",
    "MockProver",
    "VerifyFailure",
]
