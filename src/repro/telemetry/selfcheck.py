"""Instrumented smoke prove: the CI telemetry gate.

``python -m repro.telemetry.selfcheck OUTDIR`` proves the k=5 example
circuit (paper Example 2.1 + a 4-bit range lookup) with telemetry
enabled, writes ``trace.jsonl`` and ``span_tree.txt`` to ``OUTDIR``,
and exits non-zero unless the trace contains every expected prover
phase span and the phase wall-times cover >= 95% of the prove root.

The example circuit builders here are also the golden-value fixture
for :class:`~repro.telemetry.circuit.CircuitReport` tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import telemetry

EXAMPLE_K = 5

#: Direct children the "prove" root must contain after one create_proof.
EXPECTED_PHASES = (
    "prove.keygen",
    "prove.commit_advice",
    "prove.lookup_commit",
    "prove.grand_products",
    "prove.quotient",
    "prove.evaluations",
    "prove.multiopen",
)


def example_circuit():
    """The paper's Example 2.1 pipeline f(x,y,z) = 3*(x+y)*z plus a
    4-bit range lookup on column a — the repo's canonical small circuit
    (k=5), shared by tests and the CI selfcheck."""
    from repro.plonkish import ConstraintSystem

    cs = ConstraintSystem()
    q_add = cs.selector("q_add")
    q_mul = cs.selector("q_mul")
    q_range = cs.selector("q_range")
    q_out = cs.selector("q_out")
    table = cs.fixed_column("range_table")
    a = cs.advice_column("a")
    b = cs.advice_column("b")
    c = cs.advice_column("c")
    out = cs.instance_column("out")
    cs.create_gate("add", [q_add.cur() * (a.cur() + b.cur() - c.cur())])
    cs.create_gate("mul", [q_mul.cur() * (a.cur() * b.cur() - c.cur())])
    cs.create_gate("out", [q_out.cur() * (c.cur() - out.cur())])
    cs.add_lookup("range16", [q_range.cur() * a.cur()], [table.cur()])
    cs.copy(c, 0, b, 1)
    cs.copy(c, 1, b, 2)
    return cs, dict(
        q_add=q_add, q_mul=q_mul, q_range=q_range, q_out=q_out,
        table=table, a=a, b=b, c=c, out=out,
    )


def example_assignment(cs, cols, x=7, y=11, z=13):
    from repro.algebra import SCALAR_FIELD
    from repro.plonkish import Assignment

    asg = Assignment(cs, SCALAR_FIELD, EXAMPLE_K)
    asg.assign_column(cols["table"], list(range(16)))
    asg.assign(cols["q_add"], 0, 1)
    asg.assign(cols["a"], 0, x)
    asg.assign(cols["b"], 0, y)
    asg.assign(cols["c"], 0, x + y)
    asg.assign(cols["q_range"], 0, 1)
    asg.assign(cols["q_mul"], 1, 1)
    asg.assign(cols["a"], 1, z)
    asg.assign(cols["b"], 1, x + y)
    asg.assign(cols["c"], 1, (x + y) * z)
    asg.assign(cols["q_mul"], 2, 1)
    asg.assign(cols["a"], 2, 3)
    asg.assign(cols["b"], 2, (x + y) * z)
    result = 3 * (x + y) * z
    asg.assign(cols["c"], 2, result)
    asg.assign(cols["q_out"], 2, 1)
    asg.assign(cols["out"], 2, result)
    return asg, result


def run_instrumented_prove():
    """One fully-instrumented example prove; returns the prove root
    span.  The tracer must already be enabled."""
    from repro.algebra import SCALAR_FIELD
    from repro.commit import setup
    from repro.proving import create_proof, keygen, verify_proof
    from repro.proving.keygen import finalize_fixed

    cs, cols = example_circuit()
    asg, _ = example_assignment(cs, cols)
    params = setup(EXAMPLE_K)
    root = telemetry.begin_span("prove", source="selfcheck", k=EXAMPLE_K)
    try:
        with telemetry.span("prove.keygen"):
            pk = keygen(params, cs, SCALAR_FIELD, EXAMPLE_K)
            finalize_fixed(pk, asg)
        proof = create_proof(pk, asg)
    finally:
        root.end()
    telemetry.observe("prove.seconds", root.duration)
    instance = [asg.instance_values(cols["out"])[: asg.usable_rows]]
    if not verify_proof(pk.vk, proof, instance):
        raise AssertionError("selfcheck proof did not verify")
    return root


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    outdir = Path(argv[0]) if argv else Path("telemetry-selfcheck")
    outdir.mkdir(parents=True, exist_ok=True)

    telemetry.enable(True)
    telemetry.reset()
    root = run_instrumented_prove()

    tracer = telemetry.get_tracer()
    telemetry.write_trace(outdir / "trace.jsonl", tracer)
    tree = telemetry.render_tree(
        tracer.roots, tracer.counters_snapshot(), tracer.gauges_snapshot()
    )
    (outdir / "span_tree.txt").write_text(tree + "\n", encoding="utf-8")
    print(tree)

    failures: list[str] = []
    child_names = {child.name for child in root.children}
    for phase in EXPECTED_PHASES:
        if phase not in child_names:
            failures.append(f"missing phase span {phase!r}")
    report = telemetry.phase_report(
        root, tracer.counters_snapshot(), tracer.gauges_snapshot()
    )
    print()
    print(telemetry.render_phases(report))
    if report["phase_coverage"] < 0.95:
        failures.append(
            f"phase coverage {report['phase_coverage']:.1%} < 95%"
        )
    counters = tracer.counters_snapshot()
    for counter in ("msm.calls", "fft.calls", "field.inversions"):
        if counters.get(counter, 0) <= 0:
            failures.append(f"counter {counter!r} never incremented")

    # Histograms: the kernel observe() sites must have recorded, and
    # the whole registry must render as valid Prometheus text format.
    from repro.telemetry import promtext

    registry = telemetry.metrics_registry()
    for name in ("prove.seconds", "msm.points_per_call", "fft.points_per_call"):
        snap = registry.histogram(name)
        if snap is None or snap.count <= 0:
            failures.append(f"histogram {name!r} never observed")
    exposition = promtext.render_registry(registry)
    (outdir / "metrics.prom").write_text(exposition, encoding="utf-8")
    try:
        samples = promtext.parse(exposition)
    except ValueError as exc:
        failures.append(f"promtext exposition failed to parse: {exc}")
    else:
        if not any("prove_seconds" in name for name in samples):
            failures.append("prove.seconds missing from the exposition")

    if failures:
        for failure in failures:
            print(f"selfcheck FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nselfcheck OK: trace + span tree written to {outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
