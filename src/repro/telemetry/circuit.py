"""Static circuit cost accounting: :class:`CircuitReport`.

Prove-time spans tell you *where the seconds went*; this pass tells you
*why* -- the circuit-shape quantities (rows, columns, gate constraints
per SQL operator, lookup widths, permutation chunks, MSM sizes) that
drive each phase's cost.  Joining the two reproduces the paper's
per-operator decomposition (Figures 8-9) without re-running anything:
the report is derived purely from a :class:`ConstraintSystem` and ``k``.

Mirrors the treatment of circuit-level accounting as a first-class
artifact in Coglio et al. (*Formal Verification of Zero-Knowledge
Circuits*).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.plonkish.assignment import ZK_ROWS
from repro.plonkish.constraint_system import ConstraintSystem

#: Gate-name substrings -> the SQL operator bucket they implement.
#: The circuit builders (repro.circuits) name gates after the relational
#: operator that emits them, so a substring match is reliable here.
_OPERATOR_BUCKETS: tuple[tuple[str, str], ...] = (
    ("filter", "filter"),
    ("select", "filter"),
    ("where", "filter"),
    ("range", "filter"),
    ("cmp", "filter"),
    ("join", "join"),
    ("merge", "join"),
    ("agg", "aggregate"),
    ("sum", "aggregate"),
    ("count", "aggregate"),
    ("avg", "aggregate"),
    ("group", "aggregate"),
    ("sort", "sort"),
    ("order", "sort"),
    ("project", "project"),
    ("output", "project"),
    ("out", "project"),
)


def _bucket_for_gate(name: str) -> str:
    lowered = name.lower()
    for needle, bucket in _OPERATOR_BUCKETS:
        if needle in lowered:
            return bucket
    return "other"


@dataclass(frozen=True)
class GateCost:
    """Per-gate static cost: constraint count and max degree."""

    name: str
    constraints: int
    max_degree: int
    operator: str


@dataclass(frozen=True)
class LookupCost:
    """Per-lookup static cost: tuple width and argument degree."""

    name: str
    width: int
    degree: int


@dataclass(frozen=True)
class CircuitReport:
    """Static cost report for one circuit shape at ``2^k`` rows."""

    k: int
    rows: int
    usable_rows: int
    zk_rows: int
    fingerprint: str
    fixed_columns: int
    advice_columns: int
    instance_columns: int
    equality_columns: int
    gates: tuple[GateCost, ...]
    num_constraints: int
    max_gate_degree: int
    required_degree: int
    extended_k: int
    lookups: tuple[LookupCost, ...]
    shuffles: int
    copies: int
    permutation_chunk: int
    permutation_grand_products: int
    operator_constraints: dict[str, int] = dc_field(default_factory=dict)

    @classmethod
    def from_constraint_system(
        cls,
        cs: ConstraintSystem,
        k: int,
        permutation_chunk: int = 3,
    ) -> "CircuitReport":
        n = 1 << k
        gates = []
        operator_constraints: dict[str, int] = {}
        for gate in cs.gates:
            bucket = _bucket_for_gate(gate.name)
            count = len(gate.constraints)
            degree = max((c.degree() for c in gate.constraints), default=1)
            gates.append(
                GateCost(
                    name=gate.name,
                    constraints=count,
                    max_degree=degree,
                    operator=bucket,
                )
            )
            operator_constraints[bucket] = operator_constraints.get(bucket, 0) + count

        lookups = []
        for lookup in cs.lookups:
            input_deg = max((e.degree() for e in lookup.inputs), default=1)
            table_deg = max((e.degree() for e in lookup.table), default=1)
            lookups.append(
                LookupCost(
                    name=lookup.name,
                    width=len(lookup.inputs),
                    degree=2 + input_deg + table_deg,
                )
            )

        degree = cs.required_degree(permutation_chunk)
        extended_k = k + max(1, (degree - 1).bit_length())
        equality = len(cs.equality_columns)
        chunks = (
            (equality + permutation_chunk - 1) // permutation_chunk
            if equality
            else 0
        )
        return cls(
            k=k,
            rows=n,
            usable_rows=n - ZK_ROWS,
            zk_rows=ZK_ROWS,
            fingerprint=cs.fingerprint(),
            fixed_columns=len(cs.fixed_columns),
            advice_columns=len(cs.advice_columns),
            instance_columns=len(cs.instance_columns),
            equality_columns=equality,
            gates=tuple(gates),
            num_constraints=cs.num_constraints(),
            max_gate_degree=cs.max_gate_degree(),
            required_degree=degree,
            extended_k=extended_k,
            lookups=tuple(lookups),
            shuffles=len(cs.shuffles),
            copies=len(cs.copies),
            permutation_chunk=permutation_chunk,
            permutation_grand_products=chunks,
            operator_constraints=operator_constraints,
        )

    # -- derived MSM estimates -------------------------------------------

    def commitment_msm_sizes(self) -> dict[str, int]:
        """Estimated per-phase MSM sizes (points per multi-scalar mul).

        Every column/polynomial commitment is one size-``rows`` MSM over
        the committed coefficients; the quotient splits into
        ``2^(extended_k - k)`` chunks of the same size.
        """
        quotient_chunks = 1 << (self.extended_k - self.k)
        return {
            "advice": self.rows,
            "fixed": self.rows,
            "lookup_permuted": self.rows,
            "grand_product": self.rows,
            "quotient_chunk": self.rows,
            "quotient_chunks": quotient_chunks,
        }

    def estimated_commit_msms(self) -> int:
        """How many size-``rows`` MSMs one ``create_proof`` performs,
        from shape alone (advice + 2 permuted cols and 1 product per
        lookup, 1 product per shuffle and permutation chunk, quotient
        chunks, plus the final multiopen/IPA commitment)."""
        quotient_chunks = 1 << (self.extended_k - self.k)
        return (
            self.advice_columns
            + 3 * len(self.lookups)
            + self.shuffles
            + self.permutation_grand_products
            + quotient_chunks
            + 1  # IPA opening commitment
        )

    def as_dict(self) -> dict:
        """JSON-able form (bench stamping, golden tests)."""
        return {
            "k": self.k,
            "rows": self.rows,
            "usable_rows": self.usable_rows,
            "zk_rows": self.zk_rows,
            "fingerprint": self.fingerprint,
            "columns": {
                "fixed": self.fixed_columns,
                "advice": self.advice_columns,
                "instance": self.instance_columns,
                "equality": self.equality_columns,
            },
            "gates": [
                {
                    "name": g.name,
                    "constraints": g.constraints,
                    "max_degree": g.max_degree,
                    "operator": g.operator,
                }
                for g in self.gates
            ],
            "num_constraints": self.num_constraints,
            "max_gate_degree": self.max_gate_degree,
            "required_degree": self.required_degree,
            "extended_k": self.extended_k,
            "lookups": [
                {"name": l.name, "width": l.width, "degree": l.degree}
                for l in self.lookups
            ],
            "shuffles": self.shuffles,
            "copies": self.copies,
            "permutation_chunk": self.permutation_chunk,
            "permutation_grand_products": self.permutation_grand_products,
            "operator_constraints": dict(self.operator_constraints),
            "estimated_commit_msms": self.estimated_commit_msms(),
            "msm_sizes": self.commitment_msm_sizes(),
        }

    def render(self) -> str:
        """Human-readable cost table (the ``report`` CLI and benches)."""
        lines = [
            f"circuit {self.fingerprint[:12]}  k={self.k}  "
            f"rows={self.rows} (usable {self.usable_rows}, blinding {self.zk_rows})",
            f"columns: fixed={self.fixed_columns} advice={self.advice_columns} "
            f"instance={self.instance_columns} equality={self.equality_columns}",
            f"degree: max gate {self.max_gate_degree}, required {self.required_degree} "
            f"-> extended_k={self.extended_k}",
            f"arguments: lookups={len(self.lookups)} shuffles={self.shuffles} "
            f"copies={self.copies} "
            f"permutation products={self.permutation_grand_products} "
            f"(chunk {self.permutation_chunk})",
            f"estimated commit MSMs: {self.estimated_commit_msms()} "
            f"x {self.rows} points",
            "",
            f"{'gate':<28} {'operator':<10} {'constraints':>11} {'degree':>7}",
            f"{'-' * 28} {'-' * 10} {'-' * 11} {'-' * 7}",
        ]
        for gate in self.gates:
            lines.append(
                f"{gate.name:<28} {gate.operator:<10} "
                f"{gate.constraints:>11} {gate.max_degree:>7}"
            )
        if self.lookups:
            lines.append("")
            lines.append(f"{'lookup':<28} {'width':>6} {'degree':>7}")
            lines.append(f"{'-' * 28} {'-' * 6} {'-' * 7}")
            for lookup in self.lookups:
                lines.append(
                    f"{lookup.name:<28} {lookup.width:>6} {lookup.degree:>7}"
                )
        if self.operator_constraints:
            lines.append("")
            lines.append("constraints by operator:")
            for name in sorted(self.operator_constraints):
                lines.append(f"  {name:<12} {self.operator_constraints[name]:>6}")
        return "\n".join(lines)
