"""The tracing + metrics core: spans, counters, gauges.

Design constraints (see DESIGN.md section 5d):

- **Zero dependencies.**  Only the standard library; importable from
  the hottest modules (``ecc.msm``, ``algebra.domain``) without cycles.
- **No-op fast path.**  Telemetry is off by default; a disabled tracer
  must cost one attribute check per instrumentation site so
  ``create_proof`` regresses < 2% (guarded by a CI test).
- **Thread and fork safety.**  Counters mutate under a lock; the span
  stack is thread-local; worker processes of :mod:`repro.parallel`
  capture their own spans/counters and ship them back to the parent as
  picklable snapshots (see :meth:`Tracer.capture` / :meth:`Tracer.merge`).

Two span flavours exist because their disabled behaviour differs:

- ``span(...)`` / ``Tracer.begin(..., timed=False)`` -- pure
  instrumentation.  Disabled, it returns a shared no-op singleton that
  measures nothing.  Use it everywhere the caller does not consume the
  duration (MSM, FFT, cache, keygen internals).
- ``timed_span(...)`` / ``Tracer.begin(..., timed=True)`` -- timing the
  caller *needs* (``ProverTiming`` fields, ``VerificationReport``
  elapsed).  Disabled, it degrades to a :class:`Stopwatch` that still
  measures wall/CPU time but records nothing in the trace.  This is the
  single home for wall-clock measurement in the repo -- the bench
  harness and the verifier route their timing through it instead of
  keeping their own ``perf_counter`` arithmetic.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field
from typing import Any, Iterator, Mapping

from repro.telemetry.metrics import MetricsRegistry


class Stopwatch:
    """A wall/CPU timer with the same surface as :class:`Span`.

    The disabled-tracer stand-in for ``timed_span``: it measures but
    never records.  Also usable directly (``telemetry.stopwatch()``)
    where a plain timing helper is wanted.
    """

    __slots__ = ("duration", "cpu", "_t0", "_c0")

    def __init__(self) -> None:
        self.duration = 0.0
        self.cpu = 0.0
        self._t0 = 0.0
        self._c0 = 0.0

    def start(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def end(self, status: str | None = None) -> float:
        self.duration = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0
        return self.duration

    stop = end

    def set(self, **attrs: Any) -> "Stopwatch":
        return self

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.end()
        return False


class _NoopSpan:
    """Shared do-nothing span for disabled untimed instrumentation."""

    __slots__ = ()
    duration = 0.0
    cpu = 0.0

    def start(self) -> "_NoopSpan":
        return self

    def end(self, status: str | None = None) -> float:
        return 0.0

    stop = end

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of work in the span tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "cpu",
        "attrs",
        "children",
        "status",
        "_tracer",
        "_c0",
        "_open",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self._c0 = time.process_time()
        self.duration = 0.0
        self.cpu = 0.0
        self.attrs = attrs
        self.children: list[Span] = []
        self.status = "ok"
        self._tracer = tracer
        self._open = True

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: str | None = None) -> float:
        """Close the span (idempotent); returns the wall duration."""
        if self._open:
            self.duration = time.perf_counter() - self.start
            self.cpu = time.process_time() - self._c0
            if status is not None:
                self.status = status
            self._tracer._end_span(self)
            self._open = False
        return self.duration

    stop = end

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration:.4f}s, {len(self.children)} children)"


class _SpanScope:
    """Context-manager wrapper: begins on enter, ends on exit, and marks
    the span ``error`` when an exception escapes the block."""

    __slots__ = ("_tracer", "_name", "_attrs", "_timed", "span")

    def __init__(self, tracer: "Tracer", name: str, timed: bool, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._timed = timed

    def __enter__(self):
        self.span = self._tracer.begin(self._name, timed=self._timed, **self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and isinstance(self.span, Span):
            self.span.set(error=exc_type.__name__)
            self.span.end(status="error")
        else:
            self.span.end()
        return False


@dataclass
class TraceSnapshot:
    """A picklable capture of one scope's telemetry (worker -> parent).

    ``histograms`` carries each series' bucket counts in the
    :meth:`~repro.telemetry.metrics.HistogramSnapshot.as_dict` layout,
    so the parent-side merge is an exact bucket-wise addition.
    """

    counters: dict[str, float] = dc_field(default_factory=dict)
    gauges: dict[str, float] = dc_field(default_factory=dict)
    spans: list[dict] = dc_field(default_factory=list)
    histograms: list[dict] = dc_field(default_factory=list)


class _Capture:
    """Handle yielded by :meth:`Tracer.capture`; ``snapshot()`` stays
    valid after the scope closes."""

    def __init__(self) -> None:
        self._snapshot: TraceSnapshot | None = None

    def snapshot(self) -> TraceSnapshot | None:
        return self._snapshot


def span_to_dict(span: Span) -> dict:
    """Nested dict form of a span tree (picklable / JSON-able)."""
    return {
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "cpu": span.cpu,
        "status": span.status,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(child) for child in span.children],
    }


class Tracer:
    """Hierarchical spans plus flat counters and gauges.

    One ambient instance lives in :mod:`repro.telemetry`; library code
    reaches it through the module-level helpers (``span``, ``incr``,
    ...), so tests can also build private tracers.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: The flat-metrics store; ``incr``/``gauge``/``observe``
        #: delegate here (see :mod:`repro.telemetry.metrics`).
        self.metrics = MetricsRegistry()
        self.roots: list[Span] = []
        self._local = threading.local()
        #: Span lifecycle observers: ``fn(span, event)`` with event
        #: ``"begin"`` or ``"end"``, called on the span's own thread.
        #: Consumers (the proving service's live job-phase tracking)
        #: must be fast; one that raises is dropped from the list (and
        #: ``telemetry.observers_dropped`` bumped) rather than allowed
        #: to fail the instrumented work.
        self._observers: list = []

    # -- span observers ---------------------------------------------------

    def add_observer(self, fn) -> None:
        """Register ``fn(span, event)`` to be called at every span begin
        and end (enabled tracer only; the disabled fast path never sees
        observers)."""
        with self._lock:
            self._observers = self._observers + [fn]

    def remove_observer(self, fn) -> None:
        with self._lock:
            self._observers = [f for f in self._observers if f is not fn]

    def _notify(self, span: "Span", event: str) -> None:
        # Copy-on-write list + a local reference: add/remove replace the
        # list atomically under the lock, so dispatch never observes a
        # half-mutated list even as worker threads register/unregister.
        observers = self._observers
        for fn in observers:
            try:
                fn(span, event)
            except Exception:
                # An observer must never break proving.  Dropping it is
                # strictly safer than calling it again: a raising
                # observer tends to raise on every later span too.
                self.remove_observer(fn)
                self.metrics.incr("telemetry.observers_dropped")

    # -- job-scoped trace context -----------------------------------------

    def context(self) -> dict[str, Any]:
        """The current thread's trace context (``job_id``/``trace_id``
        and anything else pushed); a fresh copy, never the live dict."""
        stack = getattr(self._local, "context", None)
        merged: dict[str, Any] = {}
        for frame in stack or ():
            merged.update(frame)
        return merged

    @contextmanager
    def scoped_context(self, **fields: Any):
        """Push ``fields`` onto the thread's trace context for the
        scope.  Root spans opened inside the scope are stamped with the
        merged context, so every tree a job produces carries its
        ``job_id``/``trace_id`` and ``write_trace`` emits one
        stitched, attributable tree per job."""
        stack = getattr(self._local, "context", None)
        if stack is None:
            stack = []
            self._local.context = stack
        stack.append(dict(fields))
        try:
            yield
        finally:
            stack.pop()

    # -- span stack (thread-local) --------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(self, name: str, timed: bool = False, **attrs: Any):
        """Open a span.  The caller must ``end()`` it (or use the
        context managers :meth:`span` / :meth:`timed_span`).

        Disabled tracer: returns :data:`NOOP_SPAN`, or a started
        :class:`Stopwatch` when ``timed`` (still measures, records
        nothing).
        """
        if not self.enabled:
            return Stopwatch().start() if timed else NOOP_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is None:
            # Stamp the thread's trace context (job_id/trace_id) onto
            # every root so per-job trees stay attributable after
            # export; explicit attrs win on collision.
            context = self.context()
            if context:
                context.update(attrs)
                attrs = context
        span = Span(
            self,
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            attrs=attrs,
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        if self._observers:
            self._notify(span, "begin")
        return span

    def _end_span(self, span: Span) -> None:
        stack = self._stack()
        # Robust pop: an exception may have skipped descendants' end().
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.duration = span.start + span.duration - top.start
            top.status = "error"
        if span.parent_id is None:
            with self._lock:
                self.roots.append(span)
        if self._observers:
            self._notify(span, "end")

    def span(self, name: str, **attrs: Any) -> _SpanScope:
        """``with tracer.span("prove.quotient", k=5):`` -- pure no-op
        when disabled."""
        return _SpanScope(self, name, timed=False, attrs=attrs)

    def timed_span(self, name: str, **attrs: Any) -> _SpanScope:
        """Like :meth:`span`, but the yielded object always measures
        wall/CPU time (a :class:`Stopwatch` when disabled)."""
        return _SpanScope(self, name, timed=True, attrs=attrs)

    # -- counters, gauges, histograms ------------------------------------

    def incr(self, name: str, value: float = 1) -> None:
        if not self.enabled:
            return
        self.metrics.incr(name, value)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name, value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
        bounds=None,
    ) -> None:
        """Record a histogram sample (no-op when disabled); see
        :meth:`MetricsRegistry.observe`."""
        if not self.enabled:
            return
        self.metrics.observe(name, value, labels=labels, bounds=bounds)

    def counters_snapshot(self) -> dict[str, float]:
        return self.metrics.counters_snapshot()

    def gauges_snapshot(self) -> dict[str, float]:
        return self.metrics.gauges_snapshot()

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Drop all collected data (does not change ``enabled``)."""
        with self._lock:
            self.roots = []
        self.metrics.reset()
        self._local = threading.local()

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, pre-order per root."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    # -- fork/worker capture and merge ----------------------------------

    @contextmanager
    def capture(self):
        """Collect everything recorded inside the scope into a fresh
        buffer and restore prior state afterwards.

        The worker-side half of the parallel-pool merge: a forked
        worker inherits the parent tracer (enabled, with the parent's
        history); ``capture`` shields that history and yields a handle
        whose ``snapshot()`` holds only the scope's own spans/counters.
        Returns a handle with ``snapshot() -> None`` when disabled.
        """
        handle = _Capture()
        if not self.enabled:
            yield handle
            return
        with self._lock:
            saved = (self.metrics, self.roots)
            self.metrics, self.roots = MetricsRegistry(), []
        saved_local = self._local
        self._local = threading.local()
        try:
            yield handle
        finally:
            with self._lock:
                handle._snapshot = TraceSnapshot(
                    counters=self.metrics.counters_snapshot(),
                    gauges=self.metrics.gauges_snapshot(),
                    spans=[span_to_dict(root) for root in self.roots],
                    histograms=self.metrics.histograms_as_dicts(),
                )
                self.metrics, self.roots = saved
            self._local = saved_local

    def merge(self, snapshot: TraceSnapshot, chunk: int | None = None) -> None:
        """Fold a worker's snapshot into this tracer.

        Counters and histogram buckets add, gauges last-write-win, and
        the snapshot's root spans are re-parented under the currently
        active span (or become roots), tagged with the originating
        ``chunk`` index.
        """
        self.metrics.merge(
            counters=snapshot.counters,
            gauges=snapshot.gauges,
            histograms=getattr(snapshot, "histograms", None),
        )
        parent = self.current_span()
        for span_dict in snapshot.spans:
            span = self._revive(span_dict, parent)
            if chunk is not None:
                span.attrs["chunk"] = chunk
            if parent is None:
                with self._lock:
                    self.roots.append(span)

    def _revive(self, data: dict, parent: Span | None) -> Span:
        span = Span(
            self,
            data["name"],
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            attrs=dict(data.get("attrs", {})),
        )
        span.start = data.get("start", 0.0)
        span.duration = data.get("duration", 0.0)
        span.cpu = data.get("cpu", 0.0)
        span.status = data.get("status", "ok")
        span._open = False
        if parent is not None:
            parent.children.append(span)
        for child in data.get("children", []):
            self._revive(child, span)
        return span
