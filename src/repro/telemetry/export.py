"""Trace exporters: JSONL files, human-readable span trees, and the
flat phase-report dict surfaced by ``PoneglyphDB.open(...).prove(...)``.

The JSONL format is line-per-record and strictly round-trippable
(:func:`write_trace` / :func:`read_trace`): a leading ``meta`` record
carries counters and gauges, then one ``span`` record per span in
pre-order with explicit ``id``/``parent`` links.  The CLI renderer
(``python -m repro.telemetry.report``) consumes exactly this file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field as dc_field
from typing import Iterable

from repro.telemetry.tracer import Span, Tracer

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


@dataclass
class Trace:
    """A deserialized trace file: span forest plus flat metrics.

    ``histograms`` holds each histogram series in its
    :meth:`~repro.telemetry.metrics.HistogramSnapshot.as_dict` layout
    (use :meth:`histogram_snapshots` for quantile math).
    """

    roots: list[Span] = dc_field(default_factory=list)
    counters: dict[str, float] = dc_field(default_factory=dict)
    gauges: dict[str, float] = dc_field(default_factory=dict)
    histograms: list[dict] = dc_field(default_factory=list)

    def iter_spans(self) -> Iterable[Span]:
        for root in self.roots:
            yield from root.walk()

    def histogram_snapshots(self):
        from repro.telemetry.metrics import HistogramSnapshot

        return [HistogramSnapshot.from_dict(data) for data in self.histograms]

    def job_roots(self) -> dict[str, list[Span]]:
        """Root spans grouped by their stamped ``job_id`` attribute --
        one stitched tree (or forest) per service job.  Roots without a
        job context land under ``""``."""
        grouped: dict[str, list[Span]] = {}
        for root in self.roots:
            grouped.setdefault(str(root.attrs.get("job_id", "")), []).append(
                root
            )
        return grouped


def _json_attr(value):
    """Span attrs must survive a JSONL round-trip.  JSON scalars pass
    through; containers are converted element-wise; anything else is
    stringified rather than crashing the exporter (spans routinely
    carry non-string attrs: ints, floats, bools, enums, paths)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_attr(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_attr(v) for k, v in value.items()}
    return str(value)


def _span_records(span: Span) -> Iterable[dict]:
    for node in span.walk():
        yield {
            "type": "span",
            "id": node.span_id,
            "parent": node.parent_id,
            "name": node.name,
            "start": node.start,
            "duration": node.duration,
            "cpu": node.cpu,
            "status": node.status,
            "attrs": {str(k): _json_attr(v) for k, v in node.attrs.items()},
        }


def write_trace(path: str | os.PathLike[str], tracer: Tracer) -> None:
    """Serialize a tracer's collected spans/counters to a JSONL file."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "type": "meta",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "counters": tracer.counters_snapshot(),
            "gauges": tracer.gauges_snapshot(),
            "histograms": tracer.metrics.histograms_as_dicts(),
        }
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for root in list(tracer.roots):
            for record in _span_records(root):
                handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_trace(path: str | os.PathLike[str]) -> Trace:
    """Parse a JSONL trace back into a span forest (strict inverse of
    :func:`write_trace` -- ids and parent links are preserved)."""
    trace = Trace()
    shell = Tracer(enabled=False)  # spans need a tracer backref only
    by_id: dict[int, Span] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                if record.get("format") != TRACE_FORMAT:
                    raise ValueError(
                        f"not a {TRACE_FORMAT} file: {record.get('format')!r}"
                    )
                trace.counters = record.get("counters", {})
                trace.gauges = record.get("gauges", {})
                trace.histograms = record.get("histograms", [])
            elif kind == "span":
                span = Span(
                    shell,
                    record["name"],
                    span_id=record["id"],
                    parent_id=record.get("parent"),
                    attrs=record.get("attrs", {}),
                )
                span.start = record.get("start", 0.0)
                span.duration = record.get("duration", 0.0)
                span.cpu = record.get("cpu", 0.0)
                span.status = record.get("status", "ok")
                span._open = False
                by_id[span.span_id] = span
                parent = by_id.get(span.parent_id) if span.parent_id else None
                if parent is not None:
                    parent.children.append(span)
                else:
                    trace.roots.append(span)
    return trace


def write_trace_spans(path: str | os.PathLike[str], trace: Trace) -> None:
    """Re-serialize a parsed :class:`Trace` (round-trip testing aid)."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "type": "meta",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "counters": trace.counters,
            "gauges": trace.gauges,
            "histograms": trace.histograms,
        }
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for root in trace.roots:
            for record in _span_records(root):
                handle.write(json.dumps(record, sort_keys=True) + "\n")


# -- human-readable rendering -------------------------------------------------


def _render_span(span: Span, parent_duration: float | None, indent: int, out: list[str]) -> None:
    share = ""
    if parent_duration and parent_duration > 0:
        share = f"  {span.duration / parent_duration:6.1%} of parent"
    flag = "" if span.status == "ok" else f"  [{span.status}]"
    attrs = ""
    if span.attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        attrs = f"  ({inner})"
    out.append(
        f"{'  ' * indent}{span.name:<{max(1, 40 - 2 * indent)}}"
        f" {span.duration:9.4f}s{share}{flag}{attrs}"
    )
    for child in span.children:
        _render_span(child, span.duration, indent + 1, out)


def render_tree(
    roots: Iterable[Span],
    counters: dict[str, float] | None = None,
    gauges: dict[str, float] | None = None,
) -> str:
    """The span tree with per-span wall time and % of parent, plus the
    counter/gauge catalogue -- the ``report`` CLI's main view."""
    out: list[str] = []
    for root in roots:
        _render_span(root, None, 0, out)
    if counters:
        out.append("")
        out.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            out.append(f"  {name:<28} {shown:>14,}")
    if gauges:
        out.append("")
        out.append("gauges:")
        for name in sorted(gauges):
            out.append(f"  {name:<28} {gauges[name]:>14,}")
    return "\n".join(out)


# -- the flat report dict -----------------------------------------------------


def phase_report(
    root: Span,
    counters: dict[str, float] | None = None,
    gauges: dict[str, float] | None = None,
    prefix: str = "prove.",
) -> dict:
    """Flatten one root span into the metrics dict attached to
    :class:`~repro.system.prover_node.QueryResponse` as ``report``.

    ``phases`` maps each direct child (``prefix`` stripped) to its wall
    seconds; ``phase_coverage`` is their sum over the root's total --
    the acceptance bar is >= 0.95, i.e. the instrumentation accounts
    for essentially all prove time.
    """
    phases: dict[str, float] = {}
    for child in root.children:
        name = child.name
        if name.startswith(prefix):
            name = name[len(prefix):]
        phases[name] = phases.get(name, 0.0) + child.duration
    total = root.duration
    covered = sum(phases.values())
    return {
        "span": root.name,
        "total_seconds": total,
        "phases": phases,
        "phase_coverage": (covered / total) if total > 0 else 0.0,
        "counters": dict(counters or {}),
        "gauges": dict(gauges or {}),
    }


def render_phases(report: dict) -> str:
    """Fig 8/9-style phase table for one phase report dict."""
    total = report["total_seconds"] or 1.0
    lines = [
        f"{report['span']}: total {report['total_seconds']:.3f}s "
        f"(phase coverage {report['phase_coverage']:.1%})",
        f"{'phase':<24} {'seconds':>10} {'share':>8}",
        f"{'-' * 24} {'-' * 10} {'-' * 8}",
    ]
    for name, seconds in report["phases"].items():
        lines.append(f"{name:<24} {seconds:>10.4f} {seconds / total:>8.1%}")
    return "\n".join(lines)
