"""Prometheus text-format exposition for the metrics registry.

``render_registry(telemetry.metrics_registry())`` (or
``ProvingService.metrics_text()``) produces the standard
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:

- counters -> ``repro_<name>_total`` with ``# TYPE ... counter``;
- gauges   -> ``repro_<name>`` with ``# TYPE ... gauge``;
- histograms -> the full ``_bucket{le=...}`` / ``_sum`` / ``_count``
  series **plus** a sibling ``<name>_summary`` summary metric carrying
  the p50/p95/p99 quantile estimates, so a scrape shows tail latency
  without server-side ``histogram_quantile`` math.

Metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots
become underscores) and prefixed ``repro_``.  :func:`parse` is a
strict miniature parser for the same format -- the CI obs-smoke job
and the tests round-trip every exposition through it, so "valid
Prometheus text format" is a checked property, not an aspiration.

CLI::

    python -m repro.telemetry.promtext trace.jsonl   # a written trace
    python -m repro.telemetry.promtext               # ambient registry
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from typing import Iterable, Mapping

from repro.telemetry.metrics import (
    SUMMARY_QUANTILES,
    HistogramSnapshot,
    MetricsRegistry,
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

PREFIX = "repro_"


def metric_name(name: str, suffix: str = "") -> str:
    """``msm.points`` -> ``repro_msm_points`` (plus ``suffix``)."""
    cleaned = _BAD_CHARS.sub("_", name.strip())
    if not cleaned or not cleaned[0].isalpha():
        cleaned = "m_" + cleaned
    if not cleaned.startswith(PREFIX):
        cleaned = PREFIX + cleaned
    return cleaned + suffix


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labels_text(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _histogram_lines(snap: HistogramSnapshot, out: list[str]) -> None:
    base = metric_name(snap.name)
    cumulative = 0
    for bound, count in zip(snap.bounds, snap.counts):
        cumulative += count
        labels = _labels_text(tuple(snap.labels) + (("le", _fmt_value(bound)),))
        out.append(f"{base}_bucket{labels} {cumulative}")
    cumulative += snap.counts[-1] if snap.counts else 0
    labels = _labels_text(tuple(snap.labels) + (("le", "+Inf"),))
    out.append(f"{base}_bucket{labels} {cumulative}")
    plain = _labels_text(snap.labels)
    out.append(f"{base}_sum{plain} {_fmt_value(snap.sum)}")
    out.append(f"{base}_count{plain} {snap.count}")


def _summary_lines(snap: HistogramSnapshot, out: list[str]) -> None:
    base = metric_name(snap.name, "_summary")
    for q in SUMMARY_QUANTILES:
        labels = _labels_text(
            tuple(snap.labels) + (("quantile", _fmt_value(q)),)
        )
        out.append(f"{base}{labels} {_fmt_value(snap.quantile(q))}")
    plain = _labels_text(snap.labels)
    out.append(f"{base}_sum{plain} {_fmt_value(snap.sum)}")
    out.append(f"{base}_count{plain} {snap.count}")


def render(
    counters: Mapping[str, float],
    gauges: Mapping[str, float],
    histograms: Iterable[HistogramSnapshot] = (),
) -> str:
    """The full exposition: deterministic order (sorted names; each
    histogram followed by its quantile summary), trailing newline as
    the format requires."""
    out: list[str] = []
    for name in sorted(counters):
        prom = metric_name(name, "_total")
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {_fmt_value(counters[name])}")
    for name in sorted(gauges):
        prom = metric_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_fmt_value(gauges[name])}")
    by_family: dict[str, list[HistogramSnapshot]] = {}
    for snap in histograms:
        by_family.setdefault(snap.name, []).append(snap)
    for name in sorted(by_family):
        series = sorted(by_family[name], key=lambda s: s.labels)
        out.append(f"# TYPE {metric_name(name)} histogram")
        for snap in series:
            _histogram_lines(snap, out)
        out.append(f"# TYPE {metric_name(name, '_summary')} summary")
        for snap in series:
            _summary_lines(snap, out)
    return "\n".join(out) + "\n" if out else ""


def render_registry(registry: MetricsRegistry) -> str:
    return render(
        registry.counters_snapshot(),
        registry.gauges_snapshot(),
        registry.histograms_snapshot(),
    )


# -- validation parser --------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL = re.compile(r'^\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*$')


def parse(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Strictly parse an exposition back into
    ``{metric_name: [(labels, value), ...]}``.

    Raises :class:`ValueError` on any malformed line, undeclared
    sample (no preceding ``# TYPE``), or unparsable value -- the tests
    use this as the "is it valid Prometheus text format" oracle.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    declared: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if not _NAME_OK.match(parts[2]):
                    raise ValueError(f"line {lineno}: bad metric name in TYPE")
                if parts[3] not in ("counter", "gauge", "histogram", "summary"):
                    raise ValueError(f"line {lineno}: bad TYPE {parts[3]!r}")
                declared.add(parts[2])
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        name = match.group("name")
        family = re.sub(r"_(?:total|bucket|sum|count|summary)$", "", name)
        if name not in declared and family not in declared and not any(
            name.startswith(d) for d in declared
        ):
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for part in _split_labels(raw, lineno):
                pair = _LABEL.match(part)
                if pair is None:
                    raise ValueError(f"line {lineno}: bad label {part!r}")
                labels[pair.group(1)] = pair.group(2)
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {raw_value!r}") from exc
        samples.setdefault(name, []).append((labels, value))
    return samples


def _split_labels(raw: str, lineno: int) -> list[str]:
    parts: list[str] = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and depth_quote:
            current += raw[i : i + 2]
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if depth_quote:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if current:
        parts.append(current)
    return parts


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.promtext",
        description="Render metrics in Prometheus text exposition "
        "format, from a trace.jsonl file or the ambient registry.",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="a trace.jsonl written by repro.telemetry.write_trace; "
        "omit to render the current process's ambient registry",
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.telemetry.export import read_trace

        try:
            trace = read_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        text = render(
            trace.counters, trace.gauges, trace.histogram_snapshots()
        )
    else:
        from repro import telemetry

        text = render_registry(telemetry.metrics_registry())
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
