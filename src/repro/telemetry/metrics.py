"""The locked metrics registry: counters, gauges, and histograms.

:class:`MetricsRegistry` is the single store behind the ambient
tracer's ``incr`` / ``gauge`` calls and the newer ``observe`` call
sites (prove latency per phase, MSM/FFT batch sizes, queue wait time,
batch-verify amortization).  It exists separately from the span tree
because flat metrics outlive any one trace: the proving service
exposes a registry snapshot over its whole lifetime
(``ProvingService.metrics_text()``), while traces are per job.

Design constraints (same contract as the tracer, DESIGN.md 5h):

- **Zero dependencies**, importable from the hottest modules.
- **One lock** around every mutation; snapshot methods return deep
  copies so no caller can ever mutate registry state through a
  returned object (a regression test pins this).
- **Fork-mergeable.**  ``snapshot()`` / ``merge()`` are the
  counter/histogram halves of the tracer's worker capture: counters
  and bucket counts add, gauges last-write-win, min/max widen.

Histograms use **fixed log-scale buckets** so that merging is exact
(no rebucketing) and Prometheus exposition is straightforward:

- :data:`LATENCY_BUCKETS` -- powers of two from 100 us to ~7 min, for
  anything measured in seconds (``*.seconds`` metrics pick these by
  default);
- :data:`SIZE_BUCKETS` -- powers of four from 1 to ~4M, for batch
  sizes (MSM points per call, FFT sizes).

Quantiles (p50/p95/p99) are estimated by linear interpolation inside
the covering bucket and clamped to the observed min/max, which is the
standard fixed-bucket estimator: exact bucket attribution, bounded
relative error set by the bucket growth factor.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Mapping

#: Powers of two from 1e-4 s (~100 us) upward; 23 buckets reach ~419 s,
#: past the slowest end-to-end TPC-H prove the repo has measured.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-4 * (2.0 ** i) for i in range(23))

#: Powers of four from 1 to ~4.2M -- batch sizes (points, rows, bytes).
SIZE_BUCKETS: tuple[float, ...] = tuple(float(4 ** i) for i in range(12))

#: The quantiles every summary reports.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def default_bounds(name: str) -> tuple[float, ...]:
    """Bucket bounds inferred from the metric name: ``*seconds*``
    metrics get the latency ladder, everything else the size ladder."""
    return LATENCY_BUCKETS if "seconds" in name else SIZE_BUCKETS


class _Hist:
    """One (name, labels) histogram series.  Mutated under the owning
    registry's lock only."""

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: tuple[float, ...]):
        self.bounds = bounds
        # counts[i] pairs with bounds[i]; the final slot is +Inf.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable copy of one histogram series.

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    exclusive of earlier buckets; the last entry counts the overflow
    (+Inf) bucket.  All quantile math happens here, on the snapshot,
    so it never holds the registry lock.
    """

    name: str
    labels: LabelPairs = ()
    bounds: tuple[float, ...] = ()
    counts: tuple[int, ...] = ()
    sum: float = 0.0
    count: int = 0
    min: float = 0.0
    max: float = 0.0

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 < q <= 1``): linear
        interpolation inside the covering bucket, clamped to the
        observed [min, max] so tiny samples stay sane."""
        if self.count <= 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        lower = 0.0
        for i, bucket_count in enumerate(self.counts):
            upper = self.bounds[i] if i < len(self.bounds) else self.max
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            lower = upper
        return self.max

    def summary(self) -> dict[str, float]:
        """The p50/p95/p99 + count/sum/min/max dict reports embed."""
        out: dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    def as_dict(self) -> dict:
        """JSON/pickle-safe form (trace files, fork snapshots)."""
        return {
            "name": self.name,
            "labels": [list(pair) for pair in self.labels],
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramSnapshot":
        return cls(
            name=str(data["name"]),
            labels=tuple(
                (str(k), str(v)) for k, v in data.get("labels", ())
            ),
            bounds=tuple(float(b) for b in data.get("bounds", ())),
            counts=tuple(int(c) for c in data.get("counts", ())),
            sum=float(data.get("sum", 0.0)),
            count=int(data.get("count", 0)),
            min=float(data.get("min", 0.0)),
            max=float(data.get("max", 0.0)),
        )


class MetricsRegistry:
    """Locked counters + gauges + fixed-bucket histograms.

    The ambient tracer owns one (:attr:`repro.telemetry.tracer.Tracer.metrics`)
    and delegates its historical ``incr``/``gauge`` surface here, so
    every counter that predates the registry keeps working unchanged
    while gaining exposition and fork-merge for free.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[LabelPairs, _Hist]] = {}

    # -- mutation ---------------------------------------------------------

    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
        bounds: Iterable[float] | None = None,
    ) -> None:
        """Record one sample into the ``(name, labels)`` histogram.

        The first observation of a series fixes its bucket bounds
        (explicit ``bounds``, else inferred from the name); later
        observations reuse them, so a series is always self-consistent
        and merges exactly.
        """
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.get(name)
            if series is None:
                series = self._histograms[name] = {}
            hist = series.get(key)
            if hist is None:
                resolved = (
                    tuple(float(b) for b in bounds)
                    if bounds is not None
                    else default_bounds(name)
                )
                hist = series[key] = _Hist(resolved)
            hist.observe(float(value))

    # -- snapshots (always deep copies) -----------------------------------

    def counters_snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges_snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histograms_snapshot(self) -> list[HistogramSnapshot]:
        """Every histogram series as an immutable snapshot, sorted by
        (name, labels) for deterministic exposition."""
        with self._lock:
            out = [
                HistogramSnapshot(
                    name=name,
                    labels=labels,
                    bounds=tuple(hist.bounds),
                    counts=tuple(hist.counts),
                    sum=hist.sum,
                    count=hist.count,
                    min=hist.min if hist.count else 0.0,
                    max=hist.max if hist.count else 0.0,
                )
                for name, series in self._histograms.items()
                for labels, hist in series.items()
            ]
        out.sort(key=lambda snap: (snap.name, snap.labels))
        return out

    def histogram(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> HistogramSnapshot | None:
        """The snapshot of one series, or ``None`` if never observed."""
        key = _label_key(labels)
        for snap in self.histograms_snapshot():
            if snap.name == name and snap.labels == key:
                return snap
        return None

    def summary(self) -> dict:
        """The full registry as plain dicts (bench stamping, tests)."""
        return {
            "counters": self.counters_snapshot(),
            "gauges": self.gauges_snapshot(),
            "histograms": {
                _series_key(snap): snap.summary()
                for snap in self.histograms_snapshot()
            },
        }

    # -- fork merge and lifecycle -----------------------------------------

    def histograms_as_dicts(self) -> list[dict]:
        """Picklable histogram state for :class:`TraceSnapshot`."""
        return [snap.as_dict() for snap in self.histograms_snapshot()]

    def merge(
        self,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        histograms: Iterable[Mapping] | None = None,
    ) -> None:
        """Fold a worker snapshot in: counters and bucket counts add,
        gauges last-write-win, min/max widen.  A bucket-layout clash
        (same series name, different bounds -- only possible across
        code versions) falls back to re-observing the remote sum as
        ``count`` samples of the mean, keeping totals right."""
        with self._lock:
            for name, value in (counters or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges or {})
        for data in histograms or ():
            snap = HistogramSnapshot.from_dict(data)
            key = snap.labels
            with self._lock:
                series = self._histograms.setdefault(snap.name, {})
                hist = series.get(key)
                if hist is None:
                    hist = series[key] = _Hist(snap.bounds)
                if hist.bounds == snap.bounds and len(hist.counts) == len(
                    snap.counts
                ):
                    for i, c in enumerate(snap.counts):
                        hist.counts[i] += c
                    hist.sum += snap.sum
                    hist.count += snap.count
                    if snap.count:
                        hist.min = min(hist.min, snap.min)
                        hist.max = max(hist.max, snap.max)
                    continue
            if snap.count:  # layout clash: degrade, never drop mass
                mean = snap.sum / snap.count
                for _ in range(snap.count):
                    self.observe(snap.name, mean, labels=dict(snap.labels))

    def reset(self) -> None:
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}


def _series_key(snap: HistogramSnapshot) -> str:
    if not snap.labels:
        return snap.name
    inner = ",".join(f"{k}={v}" for k, v in snap.labels)
    return f"{snap.name}{{{inner}}}"
