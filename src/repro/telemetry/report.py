"""``python -m repro.telemetry.report trace.jsonl`` -- render a trace.

Prints the span tree (wall seconds, % of parent, attributes) followed
by the counter/gauge catalogue and, for every root span that has
children, a Fig 8/9-style per-phase table.  Reads exactly the JSONL
files produced by :func:`repro.telemetry.write_trace`.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.export import (
    phase_report,
    read_trace,
    render_phases,
    render_tree,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render a repro-trace JSONL file as a span tree "
        "and per-phase breakdown.",
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "--phases-only",
        action="store_true",
        help="print only the per-phase tables, not the span tree",
    )
    args = parser.parse_args(argv)

    try:
        trace = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    sections: list[str] = []
    if not args.phases_only:
        sections.append(render_tree(trace.roots, trace.counters, trace.gauges))
    for root in trace.roots:
        if not root.children:
            continue
        prefix = root.name + "."
        sections.append(
            render_phases(
                phase_report(root, trace.counters, trace.gauges, prefix=prefix)
            )
        )
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
