"""Operational observability primitives: the structured event log and
the last-error ring buffer.

Both are deliberately tiny, dependency-free, and thread-safe; the
proving service owns one of each (see
:meth:`repro.service.ProvingService.health` and
:attr:`~repro.config.ServiceConfig.event_log_path`).

:class:`EventLog` is the JSONL event stream: every job lifecycle
transition (``submitted`` / ``started`` / ``finished`` / ``failed`` /
``shed`` / ``cancelled``) becomes one line with a wall-clock
timestamp plus whatever structured fields the emitter attaches (job
id, queue depth, worker, error).  The last ``capacity`` events are
always retrievable in memory (:meth:`tail`); with a ``path`` they are
additionally appended to disk as they happen, so a crashed service
leaves a forensic trail.

:class:`ErrorRing` keeps the most recent failures (bounded, oldest
evicted) for ``health()`` snapshots -- "what broke recently" without
grepping a log.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import deque
from typing import Any


class EventLog:
    """A bounded in-memory event ring with optional JSONL persistence.

    ``emit`` never raises: a broken disk sink is disabled after the
    first failure (and counted via the ``write_errors`` attribute)
    rather than allowed to take down the service hot path.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None,
                 capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._handle: io.TextIOBase | None = None
        self.path = os.fspath(path) if path is not None else None
        self.write_errors = 0
        self.emitted = 0
        if self.path is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the record (with its timestamp)."""
        record = {"ts": time.time(), "event": str(event)}
        for key, value in fields.items():
            record[key] = value if isinstance(
                value, (str, int, float, bool, type(None))
            ) else str(value)
        with self._lock:
            self.emitted += 1
            self._ring.append(record)
            if self._handle is not None:
                try:
                    self._handle.write(
                        json.dumps(record, sort_keys=True) + "\n"
                    )
                    self._handle.flush()
                except Exception:
                    self.write_errors += 1
                    try:
                        self._handle.close()
                    except Exception:
                        pass
                    self._handle = None
        return record

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent ``n`` events (all buffered when ``None``),
        oldest first; a fresh list of the live records."""
        with self._lock:
            events = list(self._ring)
        return events if n is None else events[-n:]

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except Exception:
                    pass
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ErrorRing:
    """The last-N-errors buffer surfaced by ``health()`` snapshots."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0

    def record(self, error: str, **fields: Any) -> None:
        entry = {"ts": time.time(), "error": str(error)}
        entry.update({k: str(v) for k, v in fields.items()})
        with self._lock:
            self.total += 1
            self._ring.append(entry)

    def snapshot(self) -> list[dict[str, Any]]:
        """Most recent last; deep enough a caller can't mutate us."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
