"""``repro.telemetry``: hierarchical tracing + proof-pipeline metrics.

The measurement substrate for the paper's Figures 8-9 (per-phase
proof-generation breakdowns) and for future performance work: nested
spans with wall/CPU time, flat counters/gauges for the quantities that
drive proving cost (``msm.points``, ``fft.calls``, ``field.inversions``,
``lookup.rows``, ``proof.bytes``, ``cache.hit``/``cache.miss``), a
JSONL trace exporter with a CLI renderer, and a static
:class:`~repro.telemetry.circuit.CircuitReport` cost pass over circuit
shapes.

Telemetry is **off by default** and the disabled path is a no-op
(guarded to < 2% overhead on ``create_proof``).  Enable it per session
(``ProverConfig(telemetry=True)``), globally (:func:`enable`), or via
the ``REPRO_TELEMETRY`` environment variable::

    from repro import PoneglyphDB, ProverConfig, telemetry

    with PoneglyphDB.open(db, ProverConfig(k=7, telemetry=True)) as s:
        response = s.prove("select count(*) from lineitem")
        print(response.report["phases"])          # wall time per phase
    telemetry.write_trace("trace.jsonl", telemetry.get_tracer())
    # then: python -m repro.telemetry.report trace.jsonl

All ambient helpers delegate to one module-level :class:`Tracer`;
libraries never construct their own (tests may).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence, TypeVar

from repro.telemetry.export import (
    Trace,
    phase_report,
    read_trace,
    render_phases,
    render_tree,
    write_trace,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.telemetry.tracer import (
    NOOP_SPAN,
    Span,
    Stopwatch,
    Tracer,
    TraceSnapshot,
)

T = TypeVar("T")

_ENV_ENABLE = "REPRO_TELEMETRY"

#: The ambient tracer every instrumentation site reports to.
_TRACER = Tracer(enabled=bool(os.environ.get(_ENV_ENABLE)))


def get_tracer() -> Tracer:
    """The ambient tracer (one per process; workers inherit by fork)."""
    return _TRACER


def enabled() -> bool:
    return _TRACER.enabled


def enable(on: bool = True) -> bool:
    """Switch telemetry collection; returns the previous setting."""
    previous = _TRACER.enabled
    _TRACER.enabled = bool(on)
    return previous


def reset() -> None:
    """Drop everything collected so far (counters, gauges, spans)."""
    _TRACER.reset()


# -- spans -------------------------------------------------------------------


def span(name: str, **attrs: Any):
    """``with telemetry.span("msm", points=n):`` -- records a span when
    enabled, pure no-op otherwise."""
    return _TRACER.span(name, **attrs)


def timed_span(name: str, **attrs: Any):
    """Like :func:`span` but the yielded object always measures
    wall/CPU time (``.duration`` / ``.cpu``), even when disabled."""
    return _TRACER.timed_span(name, **attrs)


def begin_span(name: str, **attrs: Any):
    """Imperative (non-``with``) variant of :func:`timed_span`; the
    caller must call ``.end()``.  Useful across non-block-shaped
    regions like the prover's Fiat-Shamir rounds."""
    return _TRACER.begin(name, timed=True, **attrs)


def current_span() -> Span | None:
    return _TRACER.current_span()


def add_span_observer(fn) -> None:
    """Register ``fn(span, event)`` on the ambient tracer; ``event`` is
    ``"begin"`` or ``"end"`` and the call happens on the span's own
    thread.  The proving service uses this for live job-phase status."""
    _TRACER.add_observer(fn)


def remove_span_observer(fn) -> None:
    _TRACER.remove_observer(fn)


def stopwatch() -> Stopwatch:
    """A bare wall/CPU timer (never recorded in the trace).  The
    repo-wide home for ad-hoc timing -- benches and the verifier use
    this instead of rolling their own ``perf_counter`` pairs."""
    return Stopwatch()


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    sw = Stopwatch().start()
    result = fn()
    sw.end()
    return result, sw.duration


# -- counters, gauges, histograms ---------------------------------------------


def incr(name: str, value: float = 1) -> None:
    _TRACER.incr(name, value)


def gauge(name: str, value: float) -> None:
    _TRACER.gauge(name, value)


def observe(name: str, value: float, labels=None, bounds=None) -> None:
    """Record one histogram sample (``telemetry.observe("prove.seconds",
    dt)``); no-op when disabled.  Bucket bounds are fixed at the
    series' first observation -- explicit ``bounds``, else a log-scale
    default picked by name (see :mod:`repro.telemetry.metrics`)."""
    _TRACER.observe(name, value, labels=labels, bounds=bounds)


def metrics_registry() -> MetricsRegistry:
    """The ambient tracer's metrics registry (exposition reads this)."""
    return _TRACER.metrics


def counters_snapshot() -> dict[str, float]:
    return _TRACER.counters_snapshot()


def gauges_snapshot() -> dict[str, float]:
    return _TRACER.gauges_snapshot()


def histogram(name: str, labels=None) -> HistogramSnapshot | None:
    """One histogram series' snapshot (p50/p95/p99 via ``.summary()``)."""
    return _TRACER.metrics.histogram(name, labels=labels)


def metrics_summary() -> dict:
    """Counters + gauges + histogram summaries in one deep-copied dict
    (bench-report stamping; callers may mutate the result freely)."""
    return _TRACER.metrics.summary()


# -- job-scoped trace context -------------------------------------------------


def job_scope(**fields: Any):
    """``with telemetry.job_scope(job_id=..., trace_id=...):`` -- stamp
    every root span opened by this thread (and by fork-pool tasks it
    dispatches) with the given context, so a service job's whole span
    forest is attributable to its job.  Nestable; inner scopes shadow
    outer keys."""
    return _TRACER.scoped_context(**fields)


def current_context() -> dict[str, Any]:
    """This thread's merged trace context (a copy; `{}` outside any
    :func:`job_scope`)."""
    return _TRACER.context()


# -- worker-pool capture/merge ------------------------------------------------


def run_captured(
    fn: Callable[..., T],
    args: tuple,
    context: dict[str, Any] | None = None,
) -> tuple[T, TraceSnapshot | None]:
    """Worker-side shim used by :func:`repro.parallel.pmap`: run the
    task under a fresh capture and return ``(result, snapshot)``.

    ``context`` is the dispatching thread's :func:`current_context`,
    re-entered here so spans a forked worker opens for a service job
    still carry that job's ``trace_id`` when they merge back.
    """
    # The context must be re-entered INSIDE the capture: capture()
    # swaps the tracer's thread-local state (span stack + context) for
    # a fresh one, so a scope opened before it would be invisible.
    with _TRACER.capture() as cap:
        if context:
            with _TRACER.scoped_context(**context):
                result = fn(*args)
        else:
            result = fn(*args)
    return result, cap.snapshot()


def absorb_task_results(
    pairs: Sequence[tuple[T, TraceSnapshot | None]]
) -> list[T]:
    """Parent-side shim: merge every worker snapshot (counters add,
    spans re-parent under the active span, tagged by chunk index) and
    return the unwrapped results in order."""
    out: list[T] = []
    for index, (result, snapshot) in enumerate(pairs):
        if snapshot is not None:
            _TRACER.merge(snapshot, chunk=index)
        out.append(result)
    return out


def __getattr__(name: str):
    # CircuitReport pulls in the proving stack; import lazily so the
    # hot modules (msm/domain/field) can import repro.telemetry without
    # a cycle.
    if name == "CircuitReport":
        from repro.telemetry.circuit import CircuitReport

        return CircuitReport
    raise AttributeError(f"module 'repro.telemetry' has no attribute {name!r}")


__all__ = [
    "CircuitReport",
    "HistogramSnapshot",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SIZE_BUCKETS",
    "Span",
    "Stopwatch",
    "Trace",
    "TraceSnapshot",
    "Tracer",
    "absorb_task_results",
    "add_span_observer",
    "begin_span",
    "counters_snapshot",
    "current_context",
    "current_span",
    "enable",
    "enabled",
    "gauge",
    "gauges_snapshot",
    "get_tracer",
    "histogram",
    "incr",
    "job_scope",
    "metrics_registry",
    "metrics_summary",
    "observe",
    "phase_report",
    "read_trace",
    "remove_span_observer",
    "render_phases",
    "render_tree",
    "reset",
    "run_captured",
    "span",
    "stopwatch",
    "time_call",
    "timed_span",
    "write_trace",
]
