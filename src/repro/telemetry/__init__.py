"""``repro.telemetry``: hierarchical tracing + proof-pipeline metrics.

The measurement substrate for the paper's Figures 8-9 (per-phase
proof-generation breakdowns) and for future performance work: nested
spans with wall/CPU time, flat counters/gauges for the quantities that
drive proving cost (``msm.points``, ``fft.calls``, ``field.inversions``,
``lookup.rows``, ``proof.bytes``, ``cache.hit``/``cache.miss``), a
JSONL trace exporter with a CLI renderer, and a static
:class:`~repro.telemetry.circuit.CircuitReport` cost pass over circuit
shapes.

Telemetry is **off by default** and the disabled path is a no-op
(guarded to < 2% overhead on ``create_proof``).  Enable it per session
(``ProverConfig(telemetry=True)``), globally (:func:`enable`), or via
the ``REPRO_TELEMETRY`` environment variable::

    from repro import PoneglyphDB, ProverConfig, telemetry

    with PoneglyphDB.open(db, ProverConfig(k=7, telemetry=True)) as s:
        response = s.prove("select count(*) from lineitem")
        print(response.report["phases"])          # wall time per phase
    telemetry.write_trace("trace.jsonl", telemetry.get_tracer())
    # then: python -m repro.telemetry.report trace.jsonl

All ambient helpers delegate to one module-level :class:`Tracer`;
libraries never construct their own (tests may).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence, TypeVar

from repro.telemetry.export import (
    Trace,
    phase_report,
    read_trace,
    render_phases,
    render_tree,
    write_trace,
)
from repro.telemetry.tracer import (
    NOOP_SPAN,
    Span,
    Stopwatch,
    Tracer,
    TraceSnapshot,
)

T = TypeVar("T")

_ENV_ENABLE = "REPRO_TELEMETRY"

#: The ambient tracer every instrumentation site reports to.
_TRACER = Tracer(enabled=bool(os.environ.get(_ENV_ENABLE)))


def get_tracer() -> Tracer:
    """The ambient tracer (one per process; workers inherit by fork)."""
    return _TRACER


def enabled() -> bool:
    return _TRACER.enabled


def enable(on: bool = True) -> bool:
    """Switch telemetry collection; returns the previous setting."""
    previous = _TRACER.enabled
    _TRACER.enabled = bool(on)
    return previous


def reset() -> None:
    """Drop everything collected so far (counters, gauges, spans)."""
    _TRACER.reset()


# -- spans -------------------------------------------------------------------


def span(name: str, **attrs: Any):
    """``with telemetry.span("msm", points=n):`` -- records a span when
    enabled, pure no-op otherwise."""
    return _TRACER.span(name, **attrs)


def timed_span(name: str, **attrs: Any):
    """Like :func:`span` but the yielded object always measures
    wall/CPU time (``.duration`` / ``.cpu``), even when disabled."""
    return _TRACER.timed_span(name, **attrs)


def begin_span(name: str, **attrs: Any):
    """Imperative (non-``with``) variant of :func:`timed_span`; the
    caller must call ``.end()``.  Useful across non-block-shaped
    regions like the prover's Fiat-Shamir rounds."""
    return _TRACER.begin(name, timed=True, **attrs)


def current_span() -> Span | None:
    return _TRACER.current_span()


def add_span_observer(fn) -> None:
    """Register ``fn(span, event)`` on the ambient tracer; ``event`` is
    ``"begin"`` or ``"end"`` and the call happens on the span's own
    thread.  The proving service uses this for live job-phase status."""
    _TRACER.add_observer(fn)


def remove_span_observer(fn) -> None:
    _TRACER.remove_observer(fn)


def stopwatch() -> Stopwatch:
    """A bare wall/CPU timer (never recorded in the trace).  The
    repo-wide home for ad-hoc timing -- benches and the verifier use
    this instead of rolling their own ``perf_counter`` pairs."""
    return Stopwatch()


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    sw = Stopwatch().start()
    result = fn()
    sw.end()
    return result, sw.duration


# -- counters and gauges ------------------------------------------------------


def incr(name: str, value: float = 1) -> None:
    _TRACER.incr(name, value)


def gauge(name: str, value: float) -> None:
    _TRACER.gauge(name, value)


def counters_snapshot() -> dict[str, float]:
    return _TRACER.counters_snapshot()


def gauges_snapshot() -> dict[str, float]:
    return _TRACER.gauges_snapshot()


def metrics_summary() -> dict[str, dict[str, float]]:
    """Counters + gauges in one dict (bench-report stamping)."""
    return {
        "counters": _TRACER.counters_snapshot(),
        "gauges": _TRACER.gauges_snapshot(),
    }


# -- worker-pool capture/merge ------------------------------------------------


def run_captured(fn: Callable[..., T], args: tuple) -> tuple[T, TraceSnapshot | None]:
    """Worker-side shim used by :func:`repro.parallel.pmap`: run the
    task under a fresh capture and return ``(result, snapshot)``."""
    with _TRACER.capture() as cap:
        result = fn(*args)
    return result, cap.snapshot()


def absorb_task_results(
    pairs: Sequence[tuple[T, TraceSnapshot | None]]
) -> list[T]:
    """Parent-side shim: merge every worker snapshot (counters add,
    spans re-parent under the active span, tagged by chunk index) and
    return the unwrapped results in order."""
    out: list[T] = []
    for index, (result, snapshot) in enumerate(pairs):
        if snapshot is not None:
            _TRACER.merge(snapshot, chunk=index)
        out.append(result)
    return out


def __getattr__(name: str):
    # CircuitReport pulls in the proving stack; import lazily so the
    # hot modules (msm/domain/field) can import repro.telemetry without
    # a cycle.
    if name == "CircuitReport":
        from repro.telemetry.circuit import CircuitReport

        return CircuitReport
    raise AttributeError(f"module 'repro.telemetry' has no attribute {name!r}")


__all__ = [
    "CircuitReport",
    "NOOP_SPAN",
    "Span",
    "Stopwatch",
    "Trace",
    "TraceSnapshot",
    "Tracer",
    "absorb_task_results",
    "add_span_observer",
    "begin_span",
    "counters_snapshot",
    "current_span",
    "enable",
    "enabled",
    "gauge",
    "gauges_snapshot",
    "get_tracer",
    "incr",
    "metrics_summary",
    "phase_report",
    "read_trace",
    "remove_span_observer",
    "render_phases",
    "render_tree",
    "reset",
    "run_captured",
    "span",
    "stopwatch",
    "time_call",
    "timed_span",
    "write_trace",
]
