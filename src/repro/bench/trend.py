"""The bench-regression tracker.

Every ``bench_*.py --check`` run appends its headline metrics to
``benchmarks/results/history.jsonl`` -- one JSON line per run, keyed
by bench name and git SHA -- and then compares the fresh numbers
against the **rolling median** of that bench's recent history.  A
metric that moves more than :data:`DEFAULT_THRESHOLD` (15%) in the bad
direction is flagged as a :class:`Regression`, and the CI smoke jobs
gate on the result: a PR that silently makes proving 20% slower fails
the bench check even though every correctness test still passes.

The median (not the previous run) is the baseline, so one noisy CI
machine does not poison the gate; a metric needs
:data:`MIN_SAMPLES` prior runs before it can flag at all.  Metrics are
lower-is-better by default (they are almost all seconds); pass
``directions={"proofs_per_min": "higher"}`` for throughput-style
numbers.

CLI::

    python -m repro.bench.trend                 # summarize history
    python -m repro.bench.trend selftest        # exercise the tracker
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.bench.reporting import RESULTS_DIR

#: Default history file next to the persisted bench reports.
HISTORY_PATH = RESULTS_DIR / "history.jsonl"

#: Fractional move against the rolling median that counts as a
#: regression (the ISSUE/CI gate: >15%).
DEFAULT_THRESHOLD = 0.15

#: How many of the bench's most recent prior runs form the baseline.
DEFAULT_WINDOW = 8

#: A metric with fewer prior samples than this never flags -- a brand
#: new bench (or metric) needs a history before it can regress.
MIN_SAMPLES = 3


@dataclass(frozen=True)
class Regression:
    """One metric that moved >threshold in the bad direction."""

    bench: str
    metric: str
    value: float
    baseline: float
    ratio: float  #: value / baseline (bad direction normalized to > 1)
    direction: str  #: "lower" or "higher" (which way is better)

    def describe(self) -> str:
        worse = (self.ratio - 1.0) * 100.0
        return (
            f"{self.bench}.{self.metric}: {self.value:.6g} vs rolling "
            f"median {self.baseline:.6g} ({worse:+.1f}% worse; "
            f"{self.direction} is better)"
        )


# -- history file -------------------------------------------------------------


def load_history(
    path: str | os.PathLike[str] | None = None,
) -> list[dict[str, Any]]:
    """All parsable history entries, oldest first.  Malformed lines
    (a killed CI job mid-write) are skipped, never fatal."""
    target = pathlib.Path(path) if path is not None else HISTORY_PATH
    if not target.exists():
        return []
    entries: list[dict[str, Any]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
            entries.append(record)
    return entries


def append_entry(
    bench: str,
    metrics: Mapping[str, float],
    path: str | os.PathLike[str] | None = None,
    git_sha: str | None = None,
) -> dict[str, Any]:
    """Append one run's metrics to the history; returns the record."""
    from repro.bench.harness import git_revision

    target = pathlib.Path(path) if path is not None else HISTORY_PATH
    record = {
        "bench": str(bench),
        "git_sha": git_sha if git_sha is not None else git_revision(),
        "ts": time.time(),
        "metrics": {
            key: float(value)
            for key, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        },
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


# -- the check ----------------------------------------------------------------


def check_metrics(
    bench: str,
    metrics: Mapping[str, float],
    history: Iterable[Mapping[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    directions: Mapping[str, str] | None = None,
) -> list[Regression]:
    """Compare ``metrics`` against the rolling median of ``bench``'s
    recent history; returns the flagged regressions (empty = clean).

    ``directions`` overrides the lower-is-better default per metric
    (``"higher"`` for throughput/speedup numbers).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    directions = dict(directions or {})
    prior = [entry for entry in history if entry.get("bench") == bench]
    regressions: list[Regression] = []
    for name in sorted(metrics):
        value = metrics[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        samples = [
            float(entry["metrics"][name])
            for entry in prior[-window:]
            if isinstance(entry.get("metrics"), dict)
            and isinstance(entry["metrics"].get(name), (int, float))
        ]
        if len(samples) < MIN_SAMPLES:
            continue
        baseline = statistics.median(samples)
        if baseline <= 0:
            continue
        direction = directions.get(name, "lower")
        if direction not in ("lower", "higher"):
            raise ValueError(
                f"direction for {name!r} must be 'lower' or 'higher', "
                f"got {direction!r}"
            )
        if direction == "lower":
            ratio = float(value) / baseline
        else:
            ratio = baseline / float(value) if value > 0 else float("inf")
        if ratio > 1.0 + threshold:
            regressions.append(
                Regression(
                    bench=bench,
                    metric=name,
                    value=float(value),
                    baseline=baseline,
                    ratio=ratio,
                    direction=direction,
                )
            )
    return regressions


def track(
    bench: str,
    metrics: Mapping[str, float],
    path: str | os.PathLike[str] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    directions: Mapping[str, str] | None = None,
    git_sha: str | None = None,
) -> list[Regression]:
    """The one-call bench hook: check ``metrics`` against the history's
    rolling median, *then* append this run, returning any regressions.

    The append happens regardless of the verdict -- a regressed run is
    still a data point, and the median baseline means one bad run does
    not drag the gate for later runs.
    """
    regressions = check_metrics(
        bench,
        metrics,
        load_history(path),
        threshold=threshold,
        window=window,
        directions=directions,
    )
    append_entry(bench, metrics, path=path, git_sha=git_sha)
    return regressions


def report_regressions(
    regressions: list[Regression], stream: Any = None
) -> bool:
    """Print one ``TREND REGRESSION`` line per finding (to stderr by
    default); returns ``True`` when anything was flagged."""
    out = stream if stream is not None else sys.stderr
    for regression in regressions:
        print(f"TREND REGRESSION: {regression.describe()}", file=out)
    return bool(regressions)


# -- CLI ----------------------------------------------------------------------


def _summarize(path: str | os.PathLike[str] | None) -> int:
    history = load_history(path)
    if not history:
        print("no bench history recorded yet")
        return 0
    by_bench: dict[str, list[dict[str, Any]]] = {}
    for entry in history:
        by_bench.setdefault(str(entry.get("bench")), []).append(entry)
    for bench in sorted(by_bench):
        entries = by_bench[bench]
        latest = entries[-1]
        sha = str(latest.get("git_sha", "unknown"))[:12]
        print(f"{bench}: {len(entries)} runs, latest @ {sha}")
        for name in sorted(latest["metrics"]):
            samples = [
                float(e["metrics"][name])
                for e in entries[-DEFAULT_WINDOW:]
                if isinstance(e["metrics"].get(name), (int, float))
            ]
            median = statistics.median(samples)
            print(
                f"  {name}: latest {latest['metrics'][name]:.6g} "
                f"(rolling median {median:.6g} over {len(samples)})"
            )
    return 0


def selftest() -> int:
    """Exercise the tracker end to end against a throwaway history:
    a stable baseline must pass, a synthetic +20% (and an exact +15%
    boundary is NOT flagged; strictly greater is), and a
    higher-is-better metric flags on a drop.  Exit 0 on success."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "history.jsonl")
        for value in (1.00, 1.02, 0.98, 1.01):
            append_entry(
                "selftest",
                {"prove_s": value, "proofs_per_min": 60.0 / value},
                path=path,
                git_sha="baseline",
            )
        clean = check_metrics(
            "selftest",
            {"prove_s": 1.05, "proofs_per_min": 57.0},
            load_history(path),
            directions={"proofs_per_min": "higher"},
        )
        if clean:
            print(
                f"selftest FAILED: in-band run flagged: {clean}",
                file=sys.stderr,
            )
            return 1
        flagged = track(
            "selftest",
            {"prove_s": 1.21, "proofs_per_min": 45.0},
            path=path,
            directions={"proofs_per_min": "higher"},
            git_sha="regressed",
        )
        names = {regression.metric for regression in flagged}
        if names != {"prove_s", "proofs_per_min"}:
            print(
                f"selftest FAILED: expected both metrics flagged, got "
                f"{sorted(names)}",
                file=sys.stderr,
            )
            return 1
        if len(load_history(path)) != 5:
            print(
                "selftest FAILED: regressed run was not appended",
                file=sys.stderr,
            )
            return 1
    print(
        "selftest OK: baseline clean, +20% latency and -25% throughput "
        "both flagged against the rolling median"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trend",
        description="Summarize or self-test the bench regression history.",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="show",
        choices=("show", "selftest"),
        help="'show' summarizes the history (default); 'selftest' "
        "exercises the tracker against a throwaway file",
    )
    parser.add_argument(
        "--history",
        default=None,
        help=f"history file (default {HISTORY_PATH})",
    )
    args = parser.parse_args(argv)
    if args.command == "selftest":
        return selftest()
    return _summarize(args.history)


if __name__ == "__main__":
    raise SystemExit(main())
