"""Shared benchmark machinery.

The benchmarks run real cryptography at reduced scale.  This module
centralizes the reduced-scale configuration (so every bench agrees),
builds TPC-H prover/verifier pairs, and measures the pieces the paper's
tables need: witness generation, circuit statistics, full proofs, and
verification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.field import SCALAR_FIELD
from repro.baselines.cost_models import PaperCalibration, column_work
from repro.commit.params import PublicParams, setup
from repro.db.database import Database
from repro.plonkish.assignment import Assignment
from repro.plonkish.mock_prover import MockProver
from repro.sql.compiler import CompiledQuery, QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.prover_node import ProverNode
from repro.system.verifier_node import VerifierNode
from repro.tpch.datagen import generate
from repro.tpch.queries import QUERIES


@dataclass
class BenchConfig:
    """Reduced-scale geometry shared by all benchmarks.

    ``limb_bits=4 / value_bits=32 / key_bits=40`` shrink the paper's
    u8/64-bit design so the 16-entry range table and the decompositions
    fit circuits a pure-Python prover can drive end to end.  The
    *structure* (constraints per row, columns per operator) is what the
    calibration extrapolates from, and it is bit-width-faithful when
    scaled back up (see cost_models).
    """

    lineitem_rows: int = 64
    k: int = 8
    limb_bits: int = 4
    value_bits: int = 32
    key_bits: int = 40
    seed: int = 19920873


_DB_CACHE: dict[tuple[int, int], Database] = {}


def tpch_db(config: BenchConfig) -> Database:
    key = (config.lineitem_rows, config.seed)
    if key not in _DB_CACHE:
        _DB_CACHE[key] = generate(config.lineitem_rows, config.seed)
    return _DB_CACHE[key]


def build_tpch_system(
    config: BenchConfig, params: PublicParams | None = None
) -> tuple[ProverNode, VerifierNode]:
    db = tpch_db(config)
    if params is None:
        params = setup(config.k)
    prover = ProverNode(
        db,
        params,
        config.k,
        limb_bits=config.limb_bits,
        value_bits=config.value_bits,
        key_bits=config.key_bits,
    )
    commitment = prover.publish_commitment()
    verifier = VerifierNode(params, prover.public_metadata(), commitment)
    return prover, verifier


@dataclass
class PipelineMeasurement:
    """Cheap (non-crypto) measurements of one query's circuit."""

    query: str
    witness_seconds: float
    mock_seconds: float
    result_rows: int
    advice_columns: int
    lookups: int
    shuffles: int
    gate_constraints: int
    work: float = 0.0


def measure_query_pipeline(
    config: BenchConfig, query_name: str, check: bool = True
) -> PipelineMeasurement:
    """Compile + witness (+ MockProver check) one TPC-H query; returns
    the circuit statistics the calibration consumes."""
    db = tpch_db(config)
    sql = QUERIES[query_name]
    plan = Planner(db).plan(parse(sql))
    compiled = QueryCompiler(
        db, config.k, config.limb_bits, config.value_bits, config.key_bits
    ).compile(plan)
    t0 = time.perf_counter()
    asg = Assignment(compiled.cs, SCALAR_FIELD, config.k)
    result = compiled.assign_witness(asg, db)
    witness_seconds = time.perf_counter() - t0
    mock_seconds = 0.0
    if check:
        t1 = time.perf_counter()
        MockProver(compiled.cs, asg, SCALAR_FIELD).assert_satisfied()
        mock_seconds = time.perf_counter() - t1
    return PipelineMeasurement(
        query=query_name,
        witness_seconds=witness_seconds,
        mock_seconds=mock_seconds,
        result_rows=len(result),
        advice_columns=len(compiled.cs.advice_columns),
        lookups=len(compiled.cs.lookups),
        shuffles=len(compiled.cs.shuffles),
        gate_constraints=compiled.cs.num_constraints(),
        work=column_work(compiled.cs),
    )


def real_prove_query(
    config: BenchConfig,
    query_name: str,
    prover: ProverNode,
    verifier: VerifierNode,
):
    """Full cryptographic prove + verify of one TPC-H query at reduced
    scale; returns (QueryResponse, VerificationReport)."""
    response = prover.answer(QUERIES[query_name])
    report = verifier.verify(response)
    if not report.accepted:
        raise AssertionError(
            f"benchmark proof for {query_name} rejected: {report.reason}"
        )
    return response, report


def calibration_from_q1(config: BenchConfig) -> PaperCalibration:
    """Anchor the paper-scale model on Q1's measured circuit work."""
    q1 = measure_query_pipeline(config, "Q1", check=False)
    return PaperCalibration.from_q1(q1.work)
