"""Shared benchmark machinery.

The benchmarks run real cryptography at reduced scale.  This module
centralizes the reduced-scale configuration (so every bench agrees),
builds TPC-H prover/verifier pairs, and measures the pieces the paper's
tables need: witness generation, circuit statistics, full proofs, and
verification.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from typing import Callable

from repro import parallel, telemetry
from repro.algebra import backend as field_backend
from repro.algebra.field import SCALAR_FIELD
from repro.baselines.cost_models import PaperCalibration, column_work
from repro.cache import ArtifactCache, NullCache, resolve_cache
from repro.commit.params import PublicParams, cached_setup
from repro.config import ProverConfig
from repro.db.database import Database
from repro.plonkish.assignment import Assignment
from repro.plonkish.mock_prover import MockProver
from repro.sql.compiler import CompiledQuery, QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.prover_node import ProverNode
from repro.system.verifier_node import VerifierNode
from repro.tpch.datagen import generate_cached
from repro.tpch.queries import QUERIES


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


@dataclass
class BenchConfig:
    """Reduced-scale geometry shared by all benchmarks.

    ``limb_bits=4 / value_bits=32 / key_bits=40`` shrink the paper's
    u8/64-bit design so the 16-entry range table and the decompositions
    fit circuits a pure-Python prover can drive end to end.  The
    *structure* (constraints per row, columns per operator) is what the
    calibration extrapolates from, and it is bit-width-faithful when
    scaled back up (see cost_models).

    ``workers`` routes the crypto through the parallel backend
    (``REPRO_BENCH_WORKERS`` overrides the default); ``use_cache``
    loads public parameters, proving keys, and the generated TPC-H
    database through the on-disk artifact cache so the second run of a
    benchmark skips straight to proving.

    ``telemetry`` (``REPRO_BENCH_TELEMETRY``, default on) enables the
    tracer so benchmarks report per-phase breakdowns straight from the
    prover's span tree instead of re-timing around it.
    """

    lineitem_rows: int = 64
    k: int = 8
    limb_bits: int = 4
    value_bits: int = 32
    key_bits: int = 40
    seed: int = 19920873
    workers: int = field(
        default_factory=lambda: _env_int("REPRO_BENCH_WORKERS", 0)
    )
    use_cache: bool = True
    cache_dir: str | None = None
    telemetry: bool = field(
        default_factory=lambda: _env_flag("REPRO_BENCH_TELEMETRY", True)
    )


_DB_CACHE: dict[tuple[int, int], Database] = {}
_ARTIFACT_CACHES: dict[tuple[str | None, bool], ArtifactCache] = {}


def bench_cache(config: BenchConfig) -> ArtifactCache:
    """The artifact cache shared by every benchmark in one process
    (so cumulative hit/miss stats make sense in reports)."""
    key = (config.cache_dir, config.use_cache)
    if key not in _ARTIFACT_CACHES:
        _ARTIFACT_CACHES[key] = (
            resolve_cache(config.cache_dir, enabled=True)
            if config.use_cache
            else NullCache()
        )
    return _ARTIFACT_CACHES[key]


def tpch_db(config: BenchConfig) -> Database:
    """The benchmark's TPC-H database, loaded through the artifact
    cache (a deterministic function of ``(lineitem_rows, seed)``)."""
    key = (config.lineitem_rows, config.seed)
    if key not in _DB_CACHE:
        _DB_CACHE[key], _ = generate_cached(
            config.lineitem_rows, config.seed, bench_cache(config)
        )
    return _DB_CACHE[key]


def bench_params(config: BenchConfig) -> PublicParams:
    """Public parameters for the benchmark ``k``, via the cache."""
    params, _ = cached_setup(bench_cache(config), config.k)
    return params


def prover_config(config: BenchConfig) -> ProverConfig:
    return ProverConfig(
        k=config.k,
        limb_bits=config.limb_bits,
        value_bits=config.value_bits,
        key_bits=config.key_bits,
        workers=config.workers,
        cache_dir=config.cache_dir,
        use_cache=config.use_cache,
        scale=config.lineitem_rows,
        telemetry=config.telemetry,
    )


def build_tpch_system(
    config: BenchConfig, params: PublicParams | None = None
) -> tuple[ProverNode, VerifierNode]:
    db = tpch_db(config)
    if params is None:
        params = bench_params(config)
    parallel.configure(config.workers)
    if config.telemetry:
        telemetry.enable(True)
    prover = ProverNode(
        db, params, config=prover_config(config), cache=bench_cache(config)
    )
    commitment = prover.publish_commitment()
    verifier = VerifierNode(params, prover.public_metadata(), commitment)
    return prover, verifier


# -- provenance ---------------------------------------------------------------


def git_revision() -> str:
    """The commit the benchmark ran at: ``$GITHUB_SHA`` in CI, else
    ``git rev-parse HEAD``, else ``"unknown"``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def bench_metadata(
    config: BenchConfig, telemetry_metrics: dict | None = None
) -> dict:
    """The provenance stamp every benchmark report persists alongside
    its numbers: what ran, where, with which knobs."""
    pc = prover_config(config)
    return {
        "git_sha": git_revision(),
        "prover_config": {
            "k": pc.k,
            "limb_bits": pc.limb_bits,
            "value_bits": pc.value_bits,
            "key_bits": pc.key_bits,
            "workers": pc.workers,
            "use_cache": pc.use_cache,
            "scale": pc.scale,
            "telemetry": pc.telemetry,
        },
        "lineitem_rows": config.lineitem_rows,
        "seed": config.seed,
        "workers": config.workers,
        "host_cpus": os.cpu_count(),
        "field_backend": field_backend.backend_name(),
        "telemetry": (
            telemetry_metrics
            if telemetry_metrics is not None
            else (telemetry.metrics_summary() if config.telemetry else None)
        ),
    }


# -- perf-summary helpers ----------------------------------------------------


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once; return ``(result, seconds)``.

    Delegates to :func:`repro.telemetry.time_call` -- the repo's single
    home for wall-clock measurement -- so benchmark timing and traced
    spans come from the same clock discipline.
    """
    return telemetry.time_call(fn)


def serial_vs_parallel(
    fn: Callable[[], object], workers: int
) -> tuple[float, float, float]:
    """Time ``fn`` under the serial backend and again with ``workers``
    workers; return ``(serial_s, parallel_s, speedup)``.

    Speedup is reported as measured -- on a single-core host the
    parallel run pays fork/pickle overhead and the ratio can dip below
    1.0; on a multicore host it approaches the worker count.
    """
    with parallel.parallelism(0):
        _, serial_s = timed(fn)
    with parallel.parallelism(workers):
        _, parallel_s = timed(fn)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    return serial_s, parallel_s, speedup


def perf_summary_lines(
    config: BenchConfig,
    cache: ArtifactCache | None = None,
    speedups: dict[str, tuple[float, float, float]] | None = None,
) -> list[str]:
    """The standard perf footer for a benchmark report: backend
    configuration, serial-vs-parallel speedups, and cache traffic."""
    store = cache if cache is not None else bench_cache(config)
    lines = [
        "",
        f"backend: workers={config.workers or 'serial'} "
        f"(host cpus={os.cpu_count()}), "
        f"cache={'on' if store.enabled else 'off'}",
    ]
    for label, (serial_s, parallel_s, speedup) in (speedups or {}).items():
        lines.append(
            f"{label}: serial {serial_s:.3f}s vs parallel {parallel_s:.3f}s "
            f"-> speedup {speedup:.2f}x"
        )
    lines.append(f"artifact cache: {store.stats.summary()}")
    lines.extend(store.stats.events)
    return lines


@dataclass
class PipelineMeasurement:
    """Cheap (non-crypto) measurements of one query's circuit."""

    query: str
    witness_seconds: float
    mock_seconds: float
    result_rows: int
    advice_columns: int
    lookups: int
    shuffles: int
    gate_constraints: int
    work: float = 0.0


def measure_query_pipeline(
    config: BenchConfig, query_name: str, check: bool = True
) -> PipelineMeasurement:
    """Compile + witness (+ MockProver check) one TPC-H query; returns
    the circuit statistics the calibration consumes."""
    db = tpch_db(config)
    sql = QUERIES[query_name]
    plan = Planner(db).plan(parse(sql))
    compiled = QueryCompiler(
        db, config.k, config.limb_bits, config.value_bits, config.key_bits
    ).compile(plan)
    sw = telemetry.stopwatch().start()
    asg = Assignment(compiled.cs, SCALAR_FIELD, config.k)
    result = compiled.assign_witness(asg, db)
    witness_seconds = sw.end()
    mock_seconds = 0.0
    if check:
        _, mock_seconds = timed(
            lambda: MockProver(compiled.cs, asg, SCALAR_FIELD).assert_satisfied()
        )
    return PipelineMeasurement(
        query=query_name,
        witness_seconds=witness_seconds,
        mock_seconds=mock_seconds,
        result_rows=len(result),
        advice_columns=len(compiled.cs.advice_columns),
        lookups=len(compiled.cs.lookups),
        shuffles=len(compiled.cs.shuffles),
        gate_constraints=compiled.cs.num_constraints(),
        work=column_work(compiled.cs),
    )


def real_prove_query(
    config: BenchConfig,
    query_name: str,
    prover: ProverNode,
    verifier: VerifierNode,
):
    """Full cryptographic prove + verify of one TPC-H query at reduced
    scale; returns (QueryResponse, VerificationReport).  A rejected
    proof aborts the benchmark with a typed
    :class:`~repro.errors.VerificationFailure`."""
    response = prover.answer(QUERIES[query_name])
    report = verifier.verify(response)
    report.require()
    return response, report


def calibration_from_q1(config: BenchConfig) -> PaperCalibration:
    """Anchor the paper-scale model on Q1's measured circuit work."""
    q1 = measure_query_pipeline(config, "Q1", check=False)
    return PaperCalibration.from_q1(q1.work)
