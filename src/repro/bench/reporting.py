"""ASCII table reporting for benchmark results.

Every benchmark renders a table mirroring the paper's, with measured
(reduced-scale) numbers, paper-scale estimates from the calibration
model, and the paper's reported values side by side.  Reports print to
stdout and persist under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


class Report:
    """A named collection of rows rendered as an aligned table."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self._lines: list[str] = []

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
        cells = [list(map(_fmt, headers))] + [
            [_fmt(c) for c in row] for row in rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(headers))
        ]
        def render(row):
            return "  ".join(c.rjust(w) for c, w in zip(row, widths))
        self._lines.append(render(cells[0]))
        self._lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            self._lines.append(render(row))

    def render(self) -> str:
        bar = "=" * max(len(self.title), 20)
        return "\n".join([bar, self.title, bar] + self._lines) + "\n"

    def emit(self, metadata: dict | None = None) -> str:
        """Print and persist the report; returns the rendered text.

        ``metadata`` (typically :func:`repro.bench.harness.bench_metadata`)
        additionally writes ``<name>.json`` next to the text report, so
        every persisted result is stamped with the commit, prover
        configuration, worker count, and telemetry metrics it ran with.
        """
        text = self.render()
        print("\n" + text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        if metadata is not None:
            payload = {"name": self.name, "title": self.title, **metadata}
            (RESULTS_DIR / f"{self.name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True, default=str)
                + "\n"
            )
        return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)
