"""Benchmark harness: workload construction, measurement helpers, and
paper-comparison reporting for every table and figure in the paper's
evaluation (see DESIGN.md's per-experiment index)."""

from repro.bench.harness import (
    BenchConfig,
    bench_cache,
    bench_params,
    build_tpch_system,
    measure_query_pipeline,
    perf_summary_lines,
    real_prove_query,
    serial_vs_parallel,
)
from repro.bench.reporting import Report

__all__ = [
    "BenchConfig",
    "bench_cache",
    "bench_params",
    "build_tpch_system",
    "measure_query_pipeline",
    "perf_summary_lines",
    "real_prove_query",
    "serial_vs_parallel",
    "Report",
]
