"""Benchmark harness: workload construction, measurement helpers, and
paper-comparison reporting for every table and figure in the paper's
evaluation (see DESIGN.md's per-experiment index)."""

from repro.bench.harness import (
    BenchConfig,
    bench_cache,
    bench_metadata,
    bench_params,
    build_tpch_system,
    git_revision,
    measure_query_pipeline,
    perf_summary_lines,
    real_prove_query,
    serial_vs_parallel,
    timed,
)
from repro.bench.reporting import Report

__all__ = [
    "BenchConfig",
    "bench_cache",
    "bench_metadata",
    "bench_params",
    "build_tpch_system",
    "git_revision",
    "measure_query_pipeline",
    "perf_summary_lines",
    "real_prove_query",
    "serial_vs_parallel",
    "timed",
    "Report",
]
