"""Benchmark harness: workload construction, measurement helpers, and
paper-comparison reporting for every table and figure in the paper's
evaluation (see DESIGN.md's per-experiment index)."""

from repro.bench.harness import (
    BenchConfig,
    build_tpch_system,
    measure_query_pipeline,
    real_prove_query,
)
from repro.bench.reporting import Report

__all__ = [
    "BenchConfig",
    "build_tpch_system",
    "measure_query_pipeline",
    "real_prove_query",
    "Report",
]
