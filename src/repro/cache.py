"""Content-addressed on-disk cache for expensive proving artifacts.

Public parameters, proving keys, and generated TPC-H databases are all
deterministic functions of small descriptions -- ``(curve, k, label)``,
a circuit fingerprint, a ``(scale, seed)`` pair -- yet regenerating
them dominates the setup time of every benchmark and prover run
(Table 2 of the paper measures parameter generation alone in minutes).
This module stores such artifacts on disk keyed by the BLAKE2b hash of
their full description, so a second run skips straight to proving.

Keys are content *descriptions*, not content hashes: two runs asking
for the same ``(kind, description)`` get the same file.  Any change to
the description -- a different circuit shape, another seed, a bumped
format version -- lands in a different file, which is the whole
invalidation story.  Writes are atomic (temp file + rename), so a
crashed run never leaves a truncated artifact behind.

Reads are *self-checking*: every stored artifact is framed as
``RCF1 | length:u64-le | payload | blake2b-16(payload)``, and
``get_bytes`` verifies the frame before returning.  A truncated,
bit-flipped, or foreign file is evicted on sight (counted as
``cache.corrupt_evictions``) and reads as a miss, so the builder
recomputes instead of a corrupt artifact reaching the prover -- disk
corruption degrades to a cold start, never to a wrong proof.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro import telemetry

logger = logging.getLogger("repro.cache")

T = TypeVar("T")

#: Bump to invalidate every artifact after a format-affecting change.
#: v2: self-checking frame (magic + length + payload digest) on every
#: stored artifact.
CACHE_FORMAT_VERSION = 2

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"

#: On-disk artifact frame: magic, u64-le payload length, payload, then
#: a BLAKE2b-16 digest of the payload.
_FRAME_MAGIC = b"RCF1"
_FRAME_DIGEST_SIZE = 16
_FRAME_HEADER_SIZE = len(_FRAME_MAGIC) + 8


def _frame(payload: bytes) -> bytes:
    digest = hashlib.blake2b(payload, digest_size=_FRAME_DIGEST_SIZE).digest()
    return (
        _FRAME_MAGIC + len(payload).to_bytes(8, "little") + payload + digest
    )


def _unframe(raw: bytes) -> bytes | None:
    """The framed payload, or ``None`` for anything damaged: bad magic,
    wrong length, truncation, or a digest mismatch."""
    if len(raw) < _FRAME_HEADER_SIZE + _FRAME_DIGEST_SIZE:
        return None
    if not raw.startswith(_FRAME_MAGIC):
        return None
    length = int.from_bytes(raw[len(_FRAME_MAGIC):_FRAME_HEADER_SIZE], "little")
    if _FRAME_HEADER_SIZE + length + _FRAME_DIGEST_SIZE != len(raw):
        return None
    payload = raw[_FRAME_HEADER_SIZE:_FRAME_HEADER_SIZE + length]
    digest = raw[_FRAME_HEADER_SIZE + length:]
    expect = hashlib.blake2b(payload, digest_size=_FRAME_DIGEST_SIZE).digest()
    if digest != expect:
        return None
    return payload


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/poneglyphdb``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "poneglyphdb"


def cache_key(kind: str, *description: object) -> str:
    """The content address: BLAKE2b over kind + canonicalized description."""
    h = hashlib.blake2b(digest_size=20)
    h.update(f"v{CACHE_FORMAT_VERSION}|{kind}".encode())
    for part in description:
        if isinstance(part, bytes):
            chunk = part
        else:
            chunk = repr(part).encode()
        h.update(b"|" + len(chunk).to_bytes(4, "little") + chunk)
    return f"{kind}-{h.hexdigest()}"


@dataclass
class CacheStats:
    """Hit/miss counters surfaced by the bench harness."""

    hits: int = 0
    misses: int = 0
    events: list[str] = field(default_factory=list)

    def record(self, key: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        telemetry.incr("cache.hit" if hit else "cache.miss")
        logger.debug("cache %s %s", "HIT" if hit else "MISS", key)
        self.events.append(f"cache {'HIT ' if hit else 'MISS'} {key}")

    def summary(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"


class ArtifactCache:
    """A directory of content-addressed artifacts.

    ``enabled=False`` (or the ``REPRO_NO_CACHE`` environment variable)
    turns every lookup into a miss that skips the disk entirely --
    the builder always runs, nothing is stored.
    """

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        enabled: bool = True,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled and not os.environ.get(_ENV_DISABLE)
        self.stats = CacheStats()

    # -- raw bytes ------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.bin"

    def get_bytes(self, key: str) -> bytes | None:
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        payload = _unframe(raw)
        if payload is None:
            # A damaged artifact must never reach a builder's
            # deserializer: evict it and read as a miss so the value
            # is recomputed from scratch.
            self.evict(key, reason="corrupt frame")
            return None
        return payload

    def put_bytes(self, key: str, data: bytes) -> None:
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        # Atomic publish: never expose a partially written artifact.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_frame(data))
            os.replace(tmp, self.path_for(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def evict(self, key: str, reason: str = "evicted") -> bool:
        """Remove one artifact (corruption recovery path); counted as
        ``cache.corrupt_evictions`` when the reason says corrupt."""
        path = self.path_for(key)
        try:
            path.unlink()
            removed = True
        except OSError:
            removed = False
        if "corrupt" in reason:
            telemetry.incr("cache.corrupt_evictions")
        logger.warning("cache EVICT %s (%s)", key, reason)
        self.stats.events.append(f"cache EVICT {key} ({reason})")
        return removed

    # -- high-level helpers ---------------------------------------------

    def fetch(
        self,
        kind: str,
        description: tuple,
        build: Callable[[], T],
        serialize: Callable[[T], bytes] | None = None,
        deserialize: Callable[[bytes], T] | None = None,
    ) -> tuple[T, bool]:
        """Load the artifact for ``(kind, description)`` or build and
        store it.  Returns ``(value, was_cache_hit)``.

        Without explicit codecs the value goes through ``pickle``;
        artifacts with a stable wire format (public parameters) pass
        their own ``serialize``/``deserialize`` pair.
        """
        key = cache_key(kind, *description)
        raw = self.get_bytes(key)
        if raw is not None:
            try:
                value = (
                    deserialize(raw) if deserialize else pickle.loads(raw)
                )
                self.stats.record(key, hit=True)
                return value, True
            except Exception:
                # Corrupt or stale-format artifact: rebuild below.
                pass
        value = build()
        self.stats.record(key, hit=False)
        data = (
            serialize(value)
            if serialize
            else pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.put_bytes(key, data)
        return value, False

    def clear(self, kind: str | None = None) -> int:
        """Delete artifacts (optionally only one kind); returns count."""
        if not self.root.is_dir():
            return 0
        removed = 0
        prefix = f"{kind}-" if kind else ""
        for entry in self.root.glob(f"{prefix}*.bin"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class NullCache(ArtifactCache):
    """A cache that never stores anything (the ``cache_dir=None`` path)."""

    def __init__(self) -> None:
        super().__init__(root=Path(os.devnull).parent, enabled=False)


def resolve_cache(
    cache: "ArtifactCache | str | os.PathLike[str] | None",
    enabled: bool = True,
) -> ArtifactCache:
    """Coerce the user-facing ``cache_dir``-style argument to a cache."""
    if isinstance(cache, ArtifactCache):
        return cache
    if cache is None and not enabled:
        return NullCache()
    return ArtifactCache(cache, enabled=enabled)
