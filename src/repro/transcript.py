"""Fiat-Shamir transcript.

The paper's proofs are *non-interactive*: every verifier challenge is
derived by hashing the transcript of all prior prover messages (the
Fiat-Shamir heuristic applied to the public-coin Halo2 protocol).  Both
prover and verifier drive an identical :class:`Transcript`; any
divergence in absorbed data changes every subsequent challenge and the
proof fails to verify.

The sponge is a simple BLAKE2b chain: absorbing hashes
``state || label || data`` into a new state; squeezing hashes
``state || counter`` into 64 bytes reduced into the scalar field.

Variable-length absorptions (:meth:`Transcript.absorb_scalars`,
:meth:`Transcript.absorb_points`) are framed with an element-count
prefix so two different lists can never concatenate to the same byte
stream across absorption boundaries -- the domain label is ``v2`` to
separate this framing from the unframed ``v1`` encoding.
"""

from __future__ import annotations

import hashlib

from repro.algebra.field import Field, SCALAR_FIELD
from repro.ecc.curve import Point


class Transcript:
    """A Fiat-Shamir sponge bound to a challenge field."""

    __slots__ = ("field", "_state", "_counter")

    def __init__(self, label: bytes, field: Field = SCALAR_FIELD):
        self.field = field
        self._state = hashlib.blake2b(
            b"poneglyphdb-transcript-v2:" + label, digest_size=64
        ).digest()
        self._counter = 0

    # -- absorbing ----------------------------------------------------------

    def absorb_bytes(self, label: bytes, data: bytes) -> None:
        h = hashlib.blake2b(digest_size=64)
        h.update(self._state)
        h.update(len(label).to_bytes(4, "little"))
        h.update(label)
        h.update(data)
        self._state = h.digest()
        self._counter = 0

    def absorb_scalar(self, label: bytes, value: int) -> None:
        self.absorb_bytes(label, self.field.to_bytes(value))

    def absorb_scalars(self, label: bytes, values: list[int]) -> None:
        joined = b"".join(self.field.to_bytes(v) for v in values)
        self.absorb_bytes(label, len(values).to_bytes(4, "little") + joined)

    def absorb_point(self, label: bytes, point: Point) -> None:
        self.absorb_bytes(label, point.to_bytes())

    def absorb_points(self, label: bytes, points: list[Point]) -> None:
        joined = b"".join(pt.to_bytes() for pt in points)
        self.absorb_bytes(label, len(points).to_bytes(4, "little") + joined)

    # -- squeezing -----------------------------------------------------------

    def challenge_scalar(self, label: bytes) -> int:
        """Squeeze a nonzero field element.

        Challenges are rejection-sampled away from 0 and 1: several
        protocol denominators (permutation and lookup grand products)
        must not vanish, and the probability of resampling is
        negligible anyway.
        """
        while True:
            h = hashlib.blake2b(digest_size=64)
            h.update(self._state)
            h.update(b"challenge:")
            h.update(label)
            h.update(self._counter.to_bytes(8, "little"))
            self._counter += 1
            value = int.from_bytes(h.digest(), "little") % self.field.p
            if value not in (0, 1):
                return value

    def challenge_scalars(self, label: bytes, count: int) -> list[int]:
        return [self.challenge_scalar(label) for _ in range(count)]

    def fork(self, label: bytes) -> "Transcript":
        """An independent transcript branch (used by the recursive
        accumulator to derive sub-challenges)."""
        child = Transcript(label, self.field)
        child.absorb_bytes(b"fork-parent", self._state)
        return child
