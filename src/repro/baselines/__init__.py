"""Comparison baselines from the paper's evaluation.

- :mod:`repro.baselines.gkr` -- a working GKR/sumcheck proving system
  (the protocol behind Libra and vSQL), used for Table 4: layered
  arithmetic circuits, multilinear sumcheck, prover and verifier.
- :mod:`repro.baselines.zksql` -- a cost simulator for ZKSQL's
  interactive boolean-circuit protocol, used for Figure 7.
- :mod:`repro.baselines.cost_models` -- calibrated constants mapping
  measured constraint/gate counts to the paper's reported
  hardware-scale numbers (see DESIGN.md, substitutions).
"""

from repro.baselines.zksql import ZkSqlSimulator
from repro.baselines.cost_models import PaperCalibration

__all__ = ["ZkSqlSimulator", "PaperCalibration"]
