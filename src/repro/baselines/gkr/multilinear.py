"""Multilinear extensions over the scalar field."""

from __future__ import annotations

from repro.algebra.field import Field, SCALAR_FIELD


class MultilinearPoly:
    """The multilinear extension of a value table over {0,1}^k.

    Values are stored dense, little-endian in the variable index (bit 0
    of the table index is variable x_0).
    """

    __slots__ = ("field", "k", "values")

    def __init__(self, values: list[int], field: Field = SCALAR_FIELD):
        n = len(values)
        if n == 0 or n & (n - 1):
            raise ValueError("table size must be a nonzero power of two")
        self.field = field
        self.k = n.bit_length() - 1
        self.values = [v % field.p for v in values]

    @classmethod
    def zero_padded(
        cls, values: list[int], field: Field = SCALAR_FIELD
    ) -> "MultilinearPoly":
        n = 1 << max(1, (len(values) - 1).bit_length()) if len(values) > 1 else 1
        return cls(list(values) + [0] * (n - len(values)), field)

    def evaluate(self, point: list[int]) -> int:
        """Evaluate at an arbitrary field point by successive folding."""
        if len(point) != self.k:
            raise ValueError(f"need {self.k} coordinates, got {len(point)}")
        p = self.field.p
        table = self.values
        for r in point:
            half = len(table) // 2
            r %= p
            table = [
                (table[2 * i] + r * (table[2 * i + 1] - table[2 * i])) % p
                for i in range(half)
            ]
        return table[0]

    def fold_first(self, r: int) -> "MultilinearPoly":
        """Bind the first variable to ``r``."""
        p = self.field.p
        table = self.values
        half = len(table) // 2
        folded = [
            (table[2 * i] + r * (table[2 * i + 1] - table[2 * i])) % p
            for i in range(half)
        ]
        return MultilinearPoly(folded, self.field)


def eq_weights(point: list[int], field: Field = SCALAR_FIELD) -> list[int]:
    """The table ``eq(point, x)`` for all boolean ``x`` -- i.e. the
    Lagrange-basis weights of the multilinear extension at ``point``.

    ``eq(z, x) = prod(z_i x_i + (1 - z_i)(1 - x_i))``; computed in
    O(2^k) by doubling.
    """
    p = field.p
    table = [1]
    for z in point:
        z %= p
        size = len(table)
        nxt = [0] * (size * 2)
        for i, w in enumerate(table):
            nxt[i] = w * (1 - z) % p
            nxt[i + size] = w * z % p
        table = nxt
    return table


def eq_eval(a: list[int], b: list[int], field: Field = SCALAR_FIELD) -> int:
    """eq(a, b) at two arbitrary points."""
    if len(a) != len(b):
        raise ValueError("dimension mismatch")
    p = field.p
    acc = 1
    for x, y in zip(a, b):
        acc = acc * ((x * y + (1 - x) * (1 - y)) % p) % p
    return acc
