"""The GKR protocol (Goldwasser-Kalai-Rothblum), as used by Libra.

A complete, working implementation: multilinear extensions, the
sumcheck protocol, layered arithmetic circuits, and the layer-by-layer
GKR prover/verifier made non-interactive with Fiat-Shamir.  The paper
benchmarks PoneglyphDB against Libra (Table 4); this package lets the
benchmark run the *actual protocol* at reduced scale and exposes why
Libra loses on SQL workloads -- 64-bit bitwise comparison circuits blow
up depth and width (see :mod:`repro.baselines.gkr.sql_circuits`).
"""

from repro.baselines.gkr.circuit import Gate, GateKind, Layer, LayeredCircuit
from repro.baselines.gkr.multilinear import MultilinearPoly
from repro.baselines.gkr.protocol import GkrProof, gkr_prove, gkr_verify
from repro.baselines.gkr.sumcheck import sumcheck_prove, sumcheck_verify

__all__ = [
    "Gate",
    "GateKind",
    "Layer",
    "LayeredCircuit",
    "MultilinearPoly",
    "GkrProof",
    "gkr_prove",
    "gkr_verify",
    "sumcheck_prove",
    "sumcheck_verify",
]
