"""Layered arithmetic circuits for the GKR protocol.

Layer 0 holds the inputs; layer ``j`` gates read two outputs of layer
``j-1``.  Every layer is padded to a power of two with ``mul(0, 0)``
gates, which requires the builder convention that **input 0 is the
constant 0** (and, for convenience, input 1 the constant 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.algebra.field import Field, SCALAR_FIELD


class GateKind(enum.Enum):
    ADD = "add"
    MUL = "mul"


@dataclass(frozen=True)
class Gate:
    kind: GateKind
    left: int
    right: int


@dataclass
class Layer:
    gates: list[Gate]

    @property
    def k(self) -> int:
        return max(1, (len(self.gates) - 1).bit_length())

    def padded(self) -> list[Gate]:
        pad = (1 << self.k) - len(self.gates)
        return self.gates + [Gate(GateKind.MUL, 0, 0)] * pad


class LayeredCircuit:
    """A fan-in-2 layered circuit."""

    def __init__(self, num_inputs: int):
        if num_inputs < 2:
            raise ValueError("need at least the two constant inputs")
        self.num_inputs = num_inputs
        self.layers: list[Layer] = []

    @property
    def input_k(self) -> int:
        return max(1, (self.num_inputs - 1).bit_length())

    def add_layer(self, gates: list[Gate]) -> None:
        prev_size = (
            len(self.layers[-1].gates) if self.layers else self.num_inputs
        )
        for gate in gates:
            if gate.left >= prev_size or gate.right >= prev_size:
                raise ValueError("gate references out-of-range wire")
        self.layers.append(Layer(list(gates)))

    def evaluate(
        self, inputs: list[int], field: Field = SCALAR_FIELD
    ) -> list[list[int]]:
        """All layer value vectors, padded; index 0 is the input layer."""
        if len(inputs) != self.num_inputs:
            raise ValueError("wrong input count")
        if inputs[0] != 0:
            raise ValueError("input 0 must be the constant 0 (padding)")
        p = field.p
        k0 = self.input_k
        values = [list(v % p for v in inputs) + [0] * ((1 << k0) - len(inputs))]
        for layer in self.layers:
            prev = values[-1]
            row = []
            for gate in layer.padded():
                lhs, rhs = prev[gate.left], prev[gate.right]
                if gate.kind is GateKind.ADD:
                    row.append((lhs + rhs) % p)
                else:
                    row.append(lhs * rhs % p)
            values.append(row)
        return values

    def size(self) -> dict[str, int]:
        return {
            "depth": len(self.layers),
            "gates": sum(len(layer.gates) for layer in self.layers),
            "inputs": self.num_inputs,
            "max_width": max(
                [self.num_inputs] + [len(l.gates) for l in self.layers]
            ),
        }
