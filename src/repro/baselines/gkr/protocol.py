"""The GKR prover and verifier (non-interactive via Fiat-Shamir).

Per layer ``i`` (from the output down), the identity::

    W_i(z) = sum over (u, v) of
        add_i(z, u, v) * (W_{i+1}(u) + W_{i+1}(v))
      + mul_i(z, u, v) * W_{i+1}(u) * W_{i+1}(v)

is proven with one sumcheck over the combined (u, v) variables.  The
two resulting claims about ``W_{i+1}`` are merged with a random linear
combination (the standard two-point trick).  At the input layer the
verifier evaluates the input extension itself.

As in vSQL/Libra, the verifier is assumed to know the inputs (or a
commitment opening for them); this reproduction exposes the protocol
cost shape the paper's Table 4 measures: proving time, verification
time and proof size as functions of circuit width and depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.field import Field, SCALAR_FIELD
from repro.baselines.gkr.circuit import GateKind, LayeredCircuit
from repro.baselines.gkr.multilinear import MultilinearPoly, eq_weights
from repro.baselines.gkr.sumcheck import (
    SumcheckProof,
    sumcheck_prove,
    sumcheck_verify,
)
from repro.transcript import Transcript


@dataclass
class LayerProof:
    sumcheck: SumcheckProof
    w_u: int
    w_v: int


@dataclass
class GkrProof:
    outputs: list[int]
    layers: list[LayerProof]

    def size_bytes(self) -> int:
        scalars = len(self.outputs)
        for layer in self.layers:
            scalars += 4 * len(layer.sumcheck.rounds) + 2
        return scalars * 32


def _wiring_tables(
    layer, prev_k: int, weights: list[int], p: int
) -> tuple[list[int], list[int]]:
    """Dense add/mul predicate tables over the combined (u, v) cube,
    weighted by ``weights[g]`` (the eq/z or combined two-point weights
    for each gate g of the layer)."""
    size = 1 << (2 * prev_k)
    add_table = [0] * size
    mul_table = [0] * size
    for g, gate in enumerate(layer.padded()):
        index = gate.left | (gate.right << prev_k)
        if gate.kind is GateKind.ADD:
            add_table[index] = (add_table[index] + weights[g]) % p
        else:
            mul_table[index] = (mul_table[index] + weights[g]) % p
    return add_table, mul_table


def _uv_value_tables(prev_values: list[int], prev_k: int, p: int):
    """B(u,v) = W(u) and C(u,v) = W(v) as dense combined tables."""
    n = 1 << prev_k
    b = [0] * (n * n)
    c = [0] * (n * n)
    for v in range(n):
        base = v << prev_k
        wv = prev_values[v]
        for u in range(n):
            b[base + u] = prev_values[u]
            c[base + u] = wv
    return b, c


def gkr_prove(
    circuit: LayeredCircuit,
    inputs: list[int],
    field: Field = SCALAR_FIELD,
) -> GkrProof:
    """Prove correct evaluation of ``circuit`` on ``inputs``."""
    p = field.p
    values = circuit.evaluate(inputs, field)
    transcript = Transcript(b"gkr", field)
    outputs = values[-1]
    transcript.absorb_scalars(b"outputs", outputs)

    # Claim about the output layer's extension at a random point.
    out_k = circuit.layers[-1].k
    z = transcript.challenge_scalars(b"gkr-z", out_k)

    layer_proofs: list[LayerProof] = []
    # Weights over gates of the current layer (eq(z, g) initially).
    weights = eq_weights(z, field)
    for layer_index in range(len(circuit.layers) - 1, -1, -1):
        layer = circuit.layers[layer_index]
        prev_values = values[layer_index]
        prev_k = max(1, (len(prev_values) - 1).bit_length())
        add_t, mul_t = _wiring_tables(layer, prev_k, weights, p)
        b_t, c_t = _uv_value_tables(prev_values, prev_k, p)
        proof, point, _finals = sumcheck_prove(
            (add_t, b_t, c_t, mul_t), transcript, field
        )
        u_point = point[:prev_k]
        v_point = point[prev_k:]
        w_poly = MultilinearPoly(prev_values, field)
        w_u = w_poly.evaluate(u_point)
        w_v = w_poly.evaluate(v_point)
        transcript.absorb_scalars(b"gkr-w", [w_u, w_v])
        layer_proofs.append(LayerProof(proof, w_u, w_v))
        if layer_index > 0:
            alpha = transcript.challenge_scalar(b"gkr-alpha")
            beta = transcript.challenge_scalar(b"gkr-beta")
            wu_weights = eq_weights(u_point, field)
            wv_weights = eq_weights(v_point, field)
            weights = [
                (alpha * a + beta * b) % p
                for a, b in zip(wu_weights, wv_weights)
            ]
    return GkrProof(outputs=outputs, layers=layer_proofs)


def gkr_verify(
    circuit: LayeredCircuit,
    inputs: list[int],
    proof: GkrProof,
    field: Field = SCALAR_FIELD,
) -> bool:
    """Verify a GKR proof (inputs known to the verifier, as in the
    vSQL model of public auxiliary data / committed inputs)."""
    p = field.p
    if len(proof.layers) != len(circuit.layers):
        return False
    transcript = Transcript(b"gkr", field)
    transcript.absorb_scalars(b"outputs", proof.outputs)
    out_k = circuit.layers[-1].k
    if len(proof.outputs) != 1 << out_k:
        return False
    z = transcript.challenge_scalars(b"gkr-z", out_k)
    claim = MultilinearPoly(proof.outputs, field).evaluate(z)

    # Weight functional over gate indices: starts as eq(z, .), becomes
    # the alpha/beta combination after each layer.
    weight_points: list[tuple[int, list[int]]] = [(1, z)]

    for step, layer_index in enumerate(range(len(circuit.layers) - 1, -1, -1)):
        layer = circuit.layers[layer_index]
        prev_size = (
            len(circuit.layers[layer_index - 1].padded())
            if layer_index > 0
            else 1 << circuit.input_k
        )
        prev_k = max(1, (prev_size - 1).bit_length())
        layer_proof = proof.layers[step]
        ok, point, reduced = sumcheck_verify(
            claim, layer_proof.sumcheck, transcript, field
        )
        if not ok or len(point) != 2 * prev_k:
            return False
        u_point = point[:prev_k]
        v_point = point[prev_k:]
        # Evaluate the wiring predicates at (weights, u*, v*): sum over
        # gates of weight(g) * eq(u*, left) * eq(v*, right).
        eq_u = eq_weights(u_point, field)
        eq_v = eq_weights(v_point, field)
        add_val = 0
        mul_val = 0
        gates = layer.padded()
        gate_weight_tables = [
            (scale, eq_weights(pt, field)) for scale, pt in weight_points
        ]
        for g, gate in enumerate(gates):
            w = 0
            for scale, table in gate_weight_tables:
                w = (w + scale * table[g]) % p
            term = w * eq_u[gate.left] % p * eq_v[gate.right] % p
            if gate.kind is GateKind.ADD:
                add_val = (add_val + term) % p
            else:
                mul_val = (mul_val + term) % p
        w_u, w_v = layer_proof.w_u % p, layer_proof.w_v % p
        expected = (add_val * ((w_u + w_v) % p) + mul_val * w_u % p * w_v) % p
        if expected != reduced:
            return False
        transcript.absorb_scalars(b"gkr-w", [w_u, w_v])
        if layer_index > 0:
            alpha = transcript.challenge_scalar(b"gkr-alpha")
            beta = transcript.challenge_scalar(b"gkr-beta")
            claim = (alpha * w_u + beta * w_v) % p
            weight_points = [(alpha, u_point), (beta, v_point)]
        else:
            # Input layer: check the claimed W values directly.
            k0 = circuit.input_k
            padded_inputs = list(inputs) + [0] * ((1 << k0) - len(inputs))
            input_poly = MultilinearPoly(padded_inputs, field)
            if input_poly.evaluate(u_point) != w_u:
                return False
            if input_poly.evaluate(v_point) != w_v:
                return False
    return True
