"""Libra-style SQL circuits.

The paper attributes Libra's slowness on SQL to bit-decomposed
comparison circuits: "decimal values are represented using full 64-bit
binary representations ... circuits that handle each bit individually,
including managing carry bits across the entire bit width", plus relay
gates to carry values between distant layers.  This module builds
exactly those circuits:

- :class:`DagBuilder` schedules an arbitrary add/mul DAG into a layered
  circuit, inserting the relay (pass-through) gates layering requires;
- :func:`less_than_circuit` -- the bitwise ripple comparator
  ``lt_i = (1-a_i) * t_i + eq_i * lt_{i-1}``,
- :func:`filter_sum_circuit` -- a Q1-like workload: compare every row
  against a threshold, mask, and sum (comparison + aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gkr.circuit import Gate, GateKind, LayeredCircuit


@dataclass(frozen=True)
class Wire:
    """A node of the DAG: level -1 means input."""

    index: int


class DagBuilder:
    """Build an add/mul DAG, then lower it to a layered circuit with
    automatic relay insertion (relay = add(x, const0))."""

    def __init__(self, num_inputs: int):
        # node table: ("in", idx) | ("add", a, b) | ("mul", a, b)
        self.nodes: list[tuple] = [("in", i) for i in range(num_inputs)]
        self.num_inputs = num_inputs

    def input(self, index: int) -> Wire:
        if index >= self.num_inputs:
            raise ValueError("input out of range")
        return Wire(index)

    @property
    def zero(self) -> Wire:
        return Wire(0)

    @property
    def one(self) -> Wire:
        return Wire(1)

    @property
    def minus_one(self) -> Wire:
        return Wire(2)

    def add(self, a: Wire, b: Wire) -> Wire:
        self.nodes.append(("add", a.index, b.index))
        return Wire(len(self.nodes) - 1)

    def mul(self, a: Wire, b: Wire) -> Wire:
        self.nodes.append(("mul", a.index, b.index))
        return Wire(len(self.nodes) - 1)

    def sub(self, a: Wire, b: Wire) -> Wire:
        return self.add(a, self.mul(b, self.minus_one))

    def negate(self, a: Wire) -> Wire:
        """1 - a (boolean NOT)."""
        return self.sub(self.one, a)

    def build(self, outputs: list[Wire]) -> tuple[LayeredCircuit, dict]:
        """Lower to a layered circuit; returns (circuit, stats) where
        stats counts the relay gates layering inserted."""
        levels = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node[0] == "in":
                levels[i] = 0
            else:
                levels[i] = max(levels[node[1]], levels[node[2]]) + 1
        # The explicit output layer sits one level above the deepest
        # output node; everything relays up to ``max_level`` first.
        max_level = max([levels[w.index] for w in outputs] + [1])

        # position[node] = (level, slot); relays fill level gaps.
        circuit = LayeredCircuit(self.num_inputs)
        slots: dict[int, dict[int, int]] = {0: {}}
        for i, node in enumerate(self.nodes):
            if node[0] == "in":
                slots[0][i] = node[1]
        layers: list[list[Gate]] = [[] for _ in range(max_level)]
        relay_count = 0

        def place(node_index: int, level: int) -> int:
            """Ensure node's value is available as a slot at ``level``;
            returns the slot index."""
            nonlocal relay_count
            if level in slots and node_index in slots[level]:
                return slots[level][node_index]
            if level == 0:
                raise AssertionError("inputs always present at level 0")
            below = place(node_index, level - 1)
            # relay: add(x, 0)
            zero_slot = place(0, level - 1) if level > 1 else 0
            layers[level - 1].append(Gate(GateKind.ADD, below, zero_slot))
            slot = len(layers[level - 1]) - 1
            slots.setdefault(level, {})[node_index] = slot
            if node_index != 0:
                relay_count += 1
            return slot

        # Process nodes level by level so operands exist when needed.
        order = sorted(
            (i for i, n in enumerate(self.nodes) if n[0] != "in"),
            key=lambda i: levels[i],
        )
        for i in order:
            kind, a, b = self.nodes[i]
            level = levels[i]
            slot_a = place(a, level - 1)
            slot_b = place(b, level - 1)
            layers[level - 1].append(
                Gate(GateKind.ADD if kind == "add" else GateKind.MUL,
                     slot_a, slot_b)
            )
            slots.setdefault(level, {})[i] = len(layers[level - 1]) - 1

        # Outputs: relay everything to the max level, then emit the
        # dedicated output layer.
        final = []
        for w in outputs:
            slot = place(w.index, max_level)
            zero_slot = place(0, max_level)
            final.append(Gate(GateKind.ADD, slot, zero_slot))
        for gates in layers:
            circuit.add_layer(gates if gates else [Gate(GateKind.MUL, 0, 0)])
        circuit.add_layer(final)
        stats = {
            "relays": relay_count,
            "gates": sum(len(l.gates) for l in circuit.layers),
            "depth": len(circuit.layers),
        }
        return circuit, stats


def less_than_bits(builder: DagBuilder, a_bits: list[Wire], t_bits: list[Wire]) -> Wire:
    """The ripple comparator ``a < t`` over little-endian bit wires."""
    lt = builder.mul(builder.negate(a_bits[0]), t_bits[0])
    for a, t in zip(a_bits[1:], t_bits[1:]):
        # eq = 1 - a - t + 2at
        two_at = builder.add(builder.mul(a, t), builder.mul(a, t))
        eq = builder.add(builder.sub(builder.negate(a), t), two_at)
        gt_bit = builder.mul(builder.negate(a), t)
        lt = builder.add(gt_bit, builder.mul(eq, lt))
    return lt


def filter_sum_circuit(
    values: list[int], threshold: int, bits: int = 16
) -> tuple[LayeredCircuit, list[int], dict]:
    """A Q1-like Libra workload: ``sum(v for v in values if v < t)``.

    Inputs are the bit decompositions (this is the point: Libra pays
    for every bit).  Returns (circuit, inputs, stats).
    """
    n = len(values)
    num_inputs = 3 + n * bits + bits
    builder = DagBuilder(num_inputs)
    inputs = [0, 1, -1]
    a_wires: list[list[Wire]] = []
    for v in values:
        if v >= 1 << bits:
            raise ValueError(f"value {v} exceeds {bits} bits")
        row = []
        for j in range(bits):
            row.append(builder.input(len(inputs)))
            inputs.append((v >> j) & 1)
        a_wires.append(row)
    t_wires = []
    for j in range(bits):
        t_wires.append(builder.input(len(inputs)))
        inputs.append((threshold >> j) & 1)

    # Reconstruct each value from its bits (powers via repeated doubling
    # of the bit wire), mask by the comparison flag, then sum by tree.
    masked: list[Wire] = []
    for row_bits in a_wires:
        flag = less_than_bits(builder, row_bits, t_wires)
        # value = sum(bit_j * 2^j): each power via a doubling chain.
        terms = []
        for j, bit in enumerate(row_bits):
            w = bit
            for _ in range(j):
                w = builder.add(w, w)
            terms.append(w)
        value = terms[0]
        for t in terms[1:]:
            value = builder.add(value, t)
        masked.append(builder.mul(flag, value))
    total = masked[0]
    for m in masked[1:]:
        total = builder.add(total, m)
    circuit, stats = builder.build([total])
    return circuit, inputs, stats
