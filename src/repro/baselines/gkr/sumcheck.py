"""The sumcheck protocol for the GKR layer polynomial.

Proves claims of the form::

    claim = sum over x in {0,1}^m of  A(x)*(B(x) + C(x)) + D(x)*B(x)*C(x)

where A, B, C, D are multilinear (given as dense tables).  This is
exactly the per-layer polynomial of GKR: A/D are the add/mul wiring
predicates restricted at the layer challenge, B/C the next layer's
value extension in the two gate-input variable blocks.

Each round sends the degree-3 restriction of the remaining sum as its
evaluations at t = 0, 1, 2, 3 (the product D*B*C reaches degree 3 per
variable in general; GKR's structured tables stay at 2, but the extra
evaluation keeps the protocol sound for any multilinear inputs);
Fiat-Shamir supplies the challenges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.field import Field, SCALAR_FIELD
from repro.transcript import Transcript


@dataclass
class SumcheckProof:
    #: per-round (g(0), g(1), g(2), g(3)) evaluations
    rounds: list[tuple[int, int, int, int]]


def _h(a: int, b: int, c: int, d: int, p: int) -> int:
    return (a * ((b + c) % p) + d * b % p * c) % p


def sumcheck_prove(
    tables: tuple[list[int], list[int], list[int], list[int]],
    transcript: Transcript,
    field: Field = SCALAR_FIELD,
) -> tuple[SumcheckProof, list[int], tuple[int, int, int, int]]:
    """Run the prover; returns the proof, the challenge point, and the
    final (A, B, C, D) evaluations at that point."""
    p = field.p
    a, b, c, d = (list(t) for t in tables)
    m = (len(a) - 1).bit_length()
    if any(len(t) != 1 << m for t in (a, b, c, d)):
        raise ValueError("tables must share a power-of-two size")

    rounds: list[tuple[int, int, int, int]] = []
    challenges: list[int] = []
    for _ in range(m):
        half = len(a) // 2
        g0 = g1 = g2 = g3 = 0
        for i in range(half):
            a0, a1 = a[2 * i], a[2 * i + 1]
            b0, b1 = b[2 * i], b[2 * i + 1]
            c0, c1 = c[2 * i], c[2 * i + 1]
            d0, d1 = d[2 * i], d[2 * i + 1]
            g0 += _h(a0, b0, c0, d0, p)
            g1 += _h(a1, b1, c1, d1, p)
            g2 += _h(
                (2 * a1 - a0) % p,
                (2 * b1 - b0) % p,
                (2 * c1 - c0) % p,
                (2 * d1 - d0) % p,
                p,
            )
            g3 += _h(
                (3 * a1 - 2 * a0) % p,
                (3 * b1 - 2 * b0) % p,
                (3 * c1 - 2 * c0) % p,
                (3 * d1 - 2 * d0) % p,
                p,
            )
        message = (g0 % p, g1 % p, g2 % p, g3 % p)
        rounds.append(message)
        transcript.absorb_scalars(b"sumcheck-round", list(message))
        r = transcript.challenge_scalar(b"sumcheck-r")
        challenges.append(r)
        a = [(a[2 * i] + r * (a[2 * i + 1] - a[2 * i])) % p for i in range(half)]
        b = [(b[2 * i] + r * (b[2 * i + 1] - b[2 * i])) % p for i in range(half)]
        c = [(c[2 * i] + r * (c[2 * i + 1] - c[2 * i])) % p for i in range(half)]
        d = [(d[2 * i] + r * (d[2 * i + 1] - d[2 * i])) % p for i in range(half)]
    return SumcheckProof(rounds), challenges, (a[0], b[0], c[0], d[0])


def _eval_cubic(g0: int, g1: int, g2: int, g3: int, t: int, p: int) -> int:
    """Lagrange interpolation of a cubic through t = 0, 1, 2, 3."""
    inv2 = (p + 1) // 2
    inv6 = pow(6, p - 2, p)
    l0 = (t - 1) * (t - 2) % p * (t - 3) % p * (p - inv6) % p
    l1 = t * (t - 2) % p * (t - 3) % p * inv2 % p
    l2 = t * (t - 1) % p * (t - 3) % p * (p - inv2) % p
    l3 = t * (t - 1) % p * (t - 2) % p * inv6 % p
    return (g0 * l0 + g1 * l1 + g2 * l2 + g3 * l3) % p


def sumcheck_verify(
    claim: int,
    proof: SumcheckProof,
    transcript: Transcript,
    field: Field = SCALAR_FIELD,
) -> tuple[bool, list[int], int]:
    """Check the round consistency; returns (ok, challenge point,
    final reduced claim) -- the caller must still check the final claim
    against the actual polynomial at the challenge point."""
    p = field.p
    current = claim % p
    challenges: list[int] = []
    for g0, g1, g2, g3 in proof.rounds:
        if (g0 + g1) % p != current:
            return False, challenges, 0
        transcript.absorb_scalars(
            b"sumcheck-round", [g0 % p, g1 % p, g2 % p, g3 % p]
        )
        r = transcript.challenge_scalar(b"sumcheck-r")
        challenges.append(r)
        current = _eval_cubic(g0, g1, g2, g3, r, p)
    return True, challenges, current
