"""Paper-scale cost calibration.

The pure-Python prover cannot run 60k-row TPC-H circuits directly, so
every benchmark reports two numbers per cell:

1. a **measured** value at a reduced scale (real proofs, real circuits),
2. a **paper-scale estimate** from this calibration: the per-row
   circuit work is counted exactly from our compiled circuits (a
   scale-independent quantity), then mapped to seconds/GB on the
   paper's Skylake node by an affine model anchored on a single paper
   data point (Q1 at 60k rows).

The estimates for every *other* cell are therefore genuine predictions
of our circuit designs, to be compared against the paper's reported
values (EXPERIMENTS.md tracks paper-vs-estimated for each).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plonkish.constraint_system import ConstraintSystem

#: Paper-reported values (SIGMOD'25, section 5).
PAPER = {
    # Table 2: public parameter generation seconds by circuit rows.
    "table2": {15: 104, 16: 221, 17: 410, 18: 832},
    # Table 3: database commitment seconds by lineitem rows.
    "table3": {60_000: 2.89, 120_000: 5.53, 240_000: 10.94},
    # Table 4: (proving s, verification s, proof KB).
    "table4_libra": {"Q1": (812, 1.290, 435.8), "Q3": (997, 1.212, 411.4),
                     "Q5": (1021, 1.227, 413.9)},
    "table4_pone": {"Q1": (180, 0.617, 8.6), "Q3": (161, 0.725, 24.7),
                    "Q5": (313, 0.739, 29.6)},
    # Figure 10 anchors for Q1.
    "fig10_q1_seconds": {60_000: 180, 240_000: 683},
    "fig10_q1_memory_gb": {60_000: 1.53, 240_000: 5.12},
    # Figure 8: the fixed base step ("circuit without any gates").
    "base_step_seconds": 52.0,
}


def circuit_rows_for_scale(lineitem_rows: int) -> int:
    """The power-of-two circuit size a TPC-H workload needs at a given
    scale: the lineitem table plus the largest join partner must fit
    (cf. paper Table 2 topping out at 2^18 for 240k rows)."""
    needed = lineitem_rows + lineitem_rows // 4 + 64
    return 1 << max(9, (needed - 1).bit_length())


def column_work(cs: ConstraintSystem) -> float:
    """Scale-independent per-row prover work of a compiled circuit, in
    'column units': committed polynomials dominate Halo2's prover
    (one MSM + a handful of FFTs each), with lookups contributing three
    auxiliary columns and shuffles/permutation chunks one each."""
    advice = len(cs.advice_columns)
    fixed = len(cs.fixed_columns)
    lookups = len(cs.lookups)
    shuffles = len(cs.shuffles)
    perm_chunks = (len(cs.equality_columns) + 2) // 3
    h_pieces = 8  # quotient pieces at the typical extended degree
    return advice + fixed + 3 * lookups + shuffles + perm_chunks + h_pieces


@dataclass
class PaperCalibration:
    """Affine paper-hardware model: seconds = base + alpha * work * rows."""

    alpha_seconds: float
    gamma_memory_bytes: float
    base_seconds: float = PAPER["base_step_seconds"]

    @classmethod
    def from_q1(cls, q1_work: float, lineitem_rows: int = 60_000) -> "PaperCalibration":
        """Anchor on the paper's Q1@60k: 180 s, 1.53 GB."""
        rows = circuit_rows_for_scale(lineitem_rows)
        seconds = PAPER["fig10_q1_seconds"][lineitem_rows]
        alpha = (seconds - PAPER["base_step_seconds"]) / (q1_work * rows)
        gamma = (
            PAPER["fig10_q1_memory_gb"][lineitem_rows] * (1 << 30)
        ) / (q1_work * rows)
        return cls(alpha_seconds=alpha, gamma_memory_bytes=gamma)

    def proving_seconds(self, work: float, lineitem_rows: int) -> float:
        rows = circuit_rows_for_scale(lineitem_rows)
        return self.base_seconds + self.alpha_seconds * work * rows

    def memory_gb(self, work: float, lineitem_rows: int) -> float:
        rows = circuit_rows_for_scale(lineitem_rows)
        return self.gamma_memory_bytes * work * rows / (1 << 30)
