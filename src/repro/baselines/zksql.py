"""ZKSQL cost simulator (the interactive baseline of Figure 7).

ZKSQL [Li et al., VLDB 2023] evaluates SQL queries inside an
interactive VOLE-based ZK protocol over *boolean* circuits, splitting
the query into per-operator sub-circuits verified round by round.  Its
artifact is not available offline, so this module reproduces its cost
*model*: every operator's boolean-gate count is computed from the same
logical plans PoneglyphDB executes (with ZKSQL's dummy-tuple padding,
so cardinalities are the padded input sizes), and gates/rounds are
mapped to seconds/bytes with constants calibrated on the paper's
figures (anchor: Q1 at 60k rows, where Figure 7 shows PoneglyphDB
about 40% faster).

Gate-count model (64-bit values, standard boolean building blocks):

- comparison: ``3 * bits`` gates (ripple comparator),
- equality: ``2 * bits``,
- addition: ``5 * bits`` (full adders),
- multiplication: ``2 * bits^2`` (schoolbook),
- sort / group-by: Batcher odd-even merge network,
  ``n/2 * log2(n)^2`` compare-exchange units of ``6 * bits`` gates,
- join: sort-merge over both inputs plus a linear merge scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import Between, BinOp, BinOpKind, InList, Logical, Not
from repro.sql.plan import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    Scan,
    SortNode,
    walk,
)

BITS = 64

#: seconds per boolean gate (calibrated so Q1@60k lands near the
#: paper's Figure 7 ZKSQL bar, ~1.66x PoneglyphDB's 180 s).  Note: the
#: simulator pads every operator to its input cardinality (oblivious
#: costing); interactive ZKSQL can exploit revealed intermediate sizes,
#: so join-heavy queries are overpriced relative to the paper's bars --
#: the Q1/Q9 advantage shape is preserved, absolute ZKSQL bars for
#: Q3/Q5/Q8 read high (documented in EXPERIMENTS.md).
SECONDS_PER_GATE = 4.95e-8
#: seconds per interactive round trip (LAN, as in the ZKSQL paper).
SECONDS_PER_ROUND = 0.25e-3
#: bytes of live VOLE correlation state per gate of the largest
#: operator sub-circuit (calibrated so PoneglyphDB's memory lands in
#: the paper's 23-60% band).
BYTES_PER_GATE = 1.35
MEMORY_BASE_BYTES = 256 << 20


def _log2ceil(n: int) -> int:
    return max(1, (max(n, 2) - 1).bit_length())


def _comparison_gates(bits: int = BITS) -> int:
    return 3 * bits


def _sort_gates(n: int, bits: int = BITS) -> int:
    log = _log2ceil(n)
    comparators = (n // 2) * log * log
    return comparators * 6 * bits


@dataclass
class OperatorCost:
    name: str
    gates: int
    rounds: int


@dataclass
class ZkSqlEstimate:
    query: str
    operators: list[OperatorCost] = field(default_factory=list)

    @property
    def total_gates(self) -> int:
        return sum(op.gates for op in self.operators)

    @property
    def total_rounds(self) -> int:
        return sum(op.rounds for op in self.operators)

    @property
    def proving_seconds(self) -> float:
        return (
            self.total_gates * SECONDS_PER_GATE
            + self.total_rounds * SECONDS_PER_ROUND
        )

    @property
    def memory_bytes(self) -> int:
        peak = max((op.gates for op in self.operators), default=0)
        return int(peak * BYTES_PER_GATE) + MEMORY_BASE_BYTES


class ZkSqlSimulator:
    """Estimate ZKSQL's cost for a logical plan at given base-table
    cardinalities."""

    def __init__(self, table_sizes: dict[str, int], bits: int = BITS):
        self.table_sizes = table_sizes
        self.bits = bits

    def estimate(self, plan: PlanNode, query_name: str = "") -> ZkSqlEstimate:
        estimate = ZkSqlEstimate(query_name)
        sizes: dict[int, int] = {}
        for node in walk(plan):
            if isinstance(node, Scan):
                sizes[id(node)] = self.table_sizes[node.table]
            elif isinstance(node, FilterNode):
                n = sizes[id(node.child)]
                sizes[id(node)] = n  # dummy-padded
                leaves = _predicate_leaves(node.predicate)
                gates = n * leaves * _comparison_gates(self.bits)
                estimate.operators.append(OperatorCost("filter", gates, 2))
            elif isinstance(node, JoinNode):
                n1 = sizes[id(node.left)]
                n2 = sizes[id(node.right)]
                sizes[id(node)] = n1
                gates = (
                    _sort_gates(n1, self.bits)
                    + _sort_gates(n2, self.bits)
                    + (n1 + n2) * _comparison_gates(self.bits)
                )
                estimate.operators.append(OperatorCost("join", gates, 4))
            elif isinstance(node, DeriveNode):
                n = sizes[id(node.child)]
                sizes[id(node)] = n
                # arithmetic on 64-bit values: one multiplication-ish op
                estimate.operators.append(
                    OperatorCost("derive", n * 2 * self.bits ** 2 // 32, 1)
                )
            elif isinstance(node, AggregateNode):
                n = sizes[id(node.child)]
                groups = max(2, min(n, 1 << (self.bits // 8)))
                sizes[id(node)] = n
                gates = _sort_gates(n, self.bits)
                for _spec in node.aggregates:
                    gates += n * 5 * self.bits  # running adders
                estimate.operators.append(
                    OperatorCost("group-by", gates, 3)
                )
            elif isinstance(node, SortNode):
                n = sizes[id(node.child)]
                sizes[id(node)] = n
                estimate.operators.append(
                    OperatorCost("order-by", _sort_gates(n, self.bits), 2)
                )
            elif isinstance(node, (ProjectNode, LimitNode)):
                child = node.child
                sizes[id(node)] = sizes[id(child)]
        return estimate


def _predicate_leaves(expr) -> int:
    if isinstance(expr, Logical):
        return sum(_predicate_leaves(t) for t in expr.terms)
    if isinstance(expr, Not):
        return _predicate_leaves(expr.term)
    if isinstance(expr, Between):
        return 2
    if isinstance(expr, InList):
        return len(expr.values)
    if isinstance(expr, BinOp) and expr.op in (
        BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT,
        BinOpKind.LE, BinOpKind.GT, BinOpKind.GE,
    ):
        return 1
    return 1
