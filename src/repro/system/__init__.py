"""The PoneglyphDB system roles (paper Figures 2 and 3).

- :class:`~repro.system.prover_node.ProverNode` hosts the private
  database, publishes its commitment, and answers SQL queries with
  results plus non-interactive proofs;
- :class:`~repro.system.verifier_node.VerifierNode` holds only public
  metadata and the database commitment, regenerates the circuit and
  verifying key deterministically, and checks proofs (optionally
  batching the expensive checks through the recursion accumulator);
- :func:`~repro.system.audit.audit` is the trusted third party that
  attests the published commitment matches the authentic raw database.
"""

from repro.system.metadata import PublicMetadata, shell_database
from repro.system.prover_node import ProverNode, QueryResponse
from repro.system.verifier_node import (
    AggReport,
    BatchReport,
    VerificationReport,
    VerifierNode,
)
from repro.system.audit import (
    AggregateAuditCertificate,
    audit,
    audit_aggregate,
)

__all__ = [
    "PublicMetadata",
    "shell_database",
    "ProverNode",
    "QueryResponse",
    "AggReport",
    "BatchReport",
    "VerificationReport",
    "VerifierNode",
    "AggregateAuditCertificate",
    "audit",
    "audit_aggregate",
]
