"""The prover: hosts the database, commits to it, answers queries.

``answer()`` runs the full workflow of paper Figure 2: circuit
construction (phase 2), key generation (phase 3), and proof generation
(phase 4), returning the decoded result together with the proof and the
scan-link deltas that bind the proof to the published database
commitment.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import telemetry
from repro.algebra.field import Field, SCALAR_FIELD
from repro.cache import ArtifactCache, resolve_cache
from repro.commit.params import PublicParams
from repro.config import ProverConfig
from repro.db.commitment import (
    CommitmentSecrets,
    DatabaseCommitment,
    commit_database,
)
from repro.db.database import Database
from repro.plonkish.assignment import Assignment
from repro.proving.keygen import ProvingKey, cached_keygen, finalize_fixed, keygen
from repro.proving.proof import Proof
from repro.proving.prover import ProverTiming, create_proof
from repro.sql.compiler import CompiledQuery, QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.metadata import PublicMetadata


@dataclass
class ScanLinkProof:
    """Reveals the blinding delta between a scan advice commitment and
    the corresponding database column commitment."""

    advice_index: int
    table: str
    column: str
    delta: int


@dataclass
class QueryResponse:
    """What the prover sends back: result + proof + binding evidence.

    ``proof_bytes`` is the wire serialization the verifier actually
    consumes -- the in-memory ``proof`` object is prover-side
    convenience (timing, inspection) and is never trusted by
    :class:`~repro.system.verifier_node.VerifierNode`.

    ``report`` is the flat telemetry phase report (phases, counters,
    gauges, ``phase_coverage``) when the session runs with telemetry
    enabled, else ``None``; ``timing`` is always populated.
    """

    sql: str
    result_encoded: list[list[int]]
    result: list[list[Any]]
    column_names: list[str]
    proof: Proof
    scan_links: list[ScanLinkProof]
    proof_bytes: bytes = b""
    timing: ProverTiming = field(default_factory=ProverTiming)
    circuit_summary: dict[str, int] = field(default_factory=dict)
    report: dict | None = None

    def wire_bytes(self) -> bytes:
        """The serialized proof: what a remote prover would transmit."""
        return self.proof_bytes or self.proof.to_bytes()

    @property
    def proof_size_bytes(self) -> int:
        return len(self.proof_bytes) if self.proof_bytes else self.proof.size_bytes()


class ProverNode:
    """The database owner / prover P.

    The preferred construction is ``ProverNode(db, params, config=cfg)``
    with a :class:`~repro.config.ProverConfig` (or, one level up, the
    :class:`repro.api.PoneglyphDB` facade).  The historical loose-kwarg
    signature ``ProverNode(db, params, k, field_, limb_bits, ...)``
    still works as a deprecation shim and behaves exactly as before
    (in particular: no artifact cache).
    """

    def __init__(
        self,
        db: Database,
        params: PublicParams,
        k: int | None = None,
        field_: Field = SCALAR_FIELD,
        limb_bits: int = 8,
        value_bits: int = 64,
        key_bits: int = 48,
        *,
        config: ProverConfig | None = None,
        cache: ArtifactCache | None = None,
    ):
        if config is None:
            if k is None:
                raise TypeError(
                    "ProverNode needs either k (legacy signature) or "
                    "config=ProverConfig(...)"
                )
            warnings.warn(
                "ProverNode's loose keyword signature is deprecated; pass "
                "config=ProverConfig(k=..., limb_bits=..., ...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            # The legacy path never caches: identical behavior to before
            # the config existed.
            config = ProverConfig(
                k=k,
                limb_bits=limb_bits,
                value_bits=value_bits,
                key_bits=key_bits,
                field=field_,
                use_cache=False,
            )
        elif k is not None:
            raise TypeError("pass k via ProverConfig, not alongside config=")
        if (1 << config.k) > params.n:
            raise ValueError("k exceeds public parameter capacity")
        self.config = config
        self.db = db
        self.params = (
            params.truncated(config.k) if params.k > config.k else params
        )
        self.k = config.k
        self.field = config.field
        self.limb_bits = config.limb_bits
        self.value_bits = config.value_bits
        self.key_bits = config.key_bits
        self.cache = cache if cache is not None else resolve_cache(
            config.cache_dir, enabled=config.use_cache
        )
        self.commitment: Optional[DatabaseCommitment] = None
        self._secrets: Optional[CommitmentSecrets] = None
        self._planner = Planner(db)
        self._executor = Executor(db)

    # -- phase 2: commitment -------------------------------------------------

    def publish_commitment(self) -> DatabaseCommitment:
        """Commit to the database (done once; Table 3 measures this)."""
        self.commitment, self._secrets = commit_database(
            self.db, self.params, self.k, self.field
        )
        return self.commitment

    def public_metadata(self) -> PublicMetadata:
        return PublicMetadata.from_database(
            self.db, self.k, self.limb_bits, self.value_bits, self.key_bits
        )

    # -- phases 3-4: answer a query -------------------------------------------

    def answer(self, sql: str) -> QueryResponse:
        """Execute ``sql`` and produce the proof of correct execution.

        The whole pipeline runs under one ``prove`` telemetry root span;
        compile/witness/keygen become direct children alongside the
        ``prove.*`` phase spans :func:`create_proof` emits, so the
        response's phase report accounts for essentially all wall time.
        """
        if self.commitment is None or self._secrets is None:
            raise RuntimeError("publish_commitment() must run first")
        timing = ProverTiming()
        counters_before = telemetry.counters_snapshot()
        root = telemetry.begin_span("prove", sql=sql, k=self.k)
        try:
            phase = telemetry.begin_span("prove.compile")
            query = parse(sql)
            plan = self._planner.plan(query)
            compiled = QueryCompiler(
                self.db, self.k, self.limb_bits, self.value_bits, self.key_bits
            ).compile(plan)
            phase.end()
            timing.extra["compile"] = phase.duration

            phase = telemetry.begin_span("prove.witness")
            asg = Assignment(compiled.cs, self.field, self.k)
            result_encoded = compiled.assign_witness(asg, self.db)
            # Replay the committed blinding tails in the scan columns so
            # the advice commitments differ from the database commitments
            # only in the W component.
            blind_overrides: dict[int, int] = {}
            links: list[ScanLinkProof] = []
            for link in compiled.scan_links:
                secret = self._secrets.columns[(link.table, link.column)]
                advice_col = compiled.cs.advice_columns[link.advice_index]
                asg.assign_tail(advice_col, secret.tail)
                delta = self.field.rand()
                blind_overrides[link.advice_index] = (
                    secret.blind + delta
                ) % self.field.p
                links.append(
                    ScanLinkProof(
                        link.advice_index, link.table, link.column, delta
                    )
                )
            phase.end()
            timing.extra["witness"] = phase.duration

            phase = telemetry.begin_span("prove.keygen")
            if self.cache.enabled:
                pk, cache_hit = cached_keygen(
                    self.cache, self.params, compiled.cs, self.field, self.k
                )
                timing.extra["keygen_cache_hit"] = 1.0 if cache_hit else 0.0
            else:
                pk: ProvingKey = keygen(
                    self.params, compiled.cs, self.field, self.k
                )
            finalize_fixed(pk, asg)
            phase.end()
            timing.extra["keygen"] = phase.duration

            proof = create_proof(
                pk, asg, timing=timing, advice_blind_overrides=blind_overrides
            )
        finally:
            root.end()
        timing.total = root.duration

        proof_bytes = proof.to_bytes()
        telemetry.gauge("proof.bytes", len(proof_bytes))
        decoded = self._decode(compiled, result_encoded)
        return QueryResponse(
            sql=sql,
            result_encoded=result_encoded,
            result=decoded,
            column_names=[meta.name for meta in compiled.outputs],
            proof=proof,
            proof_bytes=proof_bytes,
            scan_links=links,
            timing=timing,
            circuit_summary=compiled.cs.summary(),
            report=self._phase_report(root, counters_before),
        )

    @staticmethod
    def _phase_report(root, counters_before: dict[str, float]) -> dict | None:
        """The flat telemetry report for one answered query (None when
        telemetry is disabled).  Counters are reported as the delta over
        this query so back-to-back proves stay comparable."""
        if not telemetry.enabled() or not isinstance(root, telemetry.Span):
            return None
        after = telemetry.counters_snapshot()
        delta = {
            name: after[name] - counters_before.get(name, 0)
            for name in sorted(after)
            if after[name] != counters_before.get(name, 0)
        }
        return telemetry.phase_report(
            root, delta, telemetry.gauges_snapshot()
        )

    # -- helpers -----------------------------------------------------------

    def _decode(
        self, compiled: CompiledQuery, rows: list[list[int]]
    ) -> list[list[Any]]:
        from repro.db.types import int_to_date, int_to_decimal

        decoded = []
        for row in rows:
            out = []
            for meta, value in zip(compiled.outputs, row):
                if meta.kind == "decimal":
                    out.append(int_to_decimal(value, meta.scale))
                elif meta.kind == "date":
                    out.append(int_to_date(value))
                elif meta.kind == "string" and meta.source:
                    out.append(
                        self.db.encoder._rev.get(meta.source, {}).get(
                            value, value
                        )
                    )
                else:
                    out.append(value)
            decoded.append(out)
        return decoded
