"""The prover: hosts the database, commits to it, answers queries.

``answer()`` runs the full workflow of paper Figure 2: circuit
construction (phase 2), key generation (phase 3), and proof generation
(phase 4), returning the decoded result together with the proof and the
scan-link deltas that bind the proof to the published database
commitment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, MutableMapping, Optional

from repro import telemetry
from repro.cache import ArtifactCache, resolve_cache
from repro.commit.params import PublicParams
from repro.config import ProverConfig
from repro.errors import ConfigError, StateError
from repro.db.commitment import (
    CommitmentSecrets,
    DatabaseCommitment,
    commit_database,
)
from repro.db.database import Database
from repro.plonkish.assignment import Assignment
from repro.proving.keygen import (
    ProvingKey,
    cached_keygen,
    finalize_fixed,
    keygen,
    keygen_fingerprint,
)
from repro.proving.proof import Proof
from repro.proving.prover import ProverTiming, create_proof
from repro.sql.compiler import CompiledQuery, QueryCompiler
from repro.sql.executor import Executor
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.metadata import PublicMetadata


@dataclass
class ScanLinkProof:
    """Reveals the blinding delta between a scan advice commitment and
    the corresponding database column commitment."""

    advice_index: int
    table: str
    column: str
    delta: int


@dataclass
class QueryResponse:
    """What the prover sends back: result + proof + binding evidence.

    ``proof_bytes`` is the wire serialization the verifier actually
    consumes -- the in-memory ``proof`` object is prover-side
    convenience (timing, inspection) and is never trusted by
    :class:`~repro.system.verifier_node.VerifierNode`.

    ``report`` is the flat telemetry phase report (phases, counters,
    gauges, ``phase_coverage``) when the session runs with telemetry
    enabled, else ``None``; ``timing`` is always populated.
    """

    sql: str
    result_encoded: list[list[int]]
    result: list[list[Any]]
    column_names: list[str]
    proof: Proof
    scan_links: list[ScanLinkProof]
    proof_bytes: bytes = b""
    timing: ProverTiming = field(default_factory=ProverTiming)
    circuit_summary: dict[str, int] = field(default_factory=dict)
    report: dict | None = None

    def wire_bytes(self) -> bytes:
        """The serialized proof: what a remote prover would transmit."""
        return self.proof_bytes or self.proof.to_bytes()

    @property
    def proof_size_bytes(self) -> int:
        return len(self.proof_bytes) if self.proof_bytes else self.proof.size_bytes()


#: Legacy ``ProverNode`` keyword -> the ``ProverConfig`` field that
#: replaced it (used to build an actionable TypeError).
_LEGACY_KWARGS = {
    "k": "k",
    "field_": "field",
    "limb_bits": "limb_bits",
    "value_bits": "value_bits",
    "key_bits": "key_bits",
}


class ProverNode:
    """The database owner / prover P.

    Construct with ``ProverNode(db, params, config=ProverConfig(...))``
    (or, one level up, the :class:`repro.api.PoneglyphDB` facade).  The
    historical loose-kwarg signature ``ProverNode(db, params, k, ...)``
    was removed; passing any of its arguments raises a ``TypeError``
    naming the :class:`~repro.config.ProverConfig` field to use instead.

    ``key_cache`` is an optional in-memory mapping from keygen
    fingerprints to warm :class:`~repro.proving.keygen.ProvingKey`
    objects.  The proving service gives each long-lived worker its own
    (see :mod:`repro.service.scheduler`), so a worker pays keygen --
    or even just the disk-cache unpickle -- once per circuit shape
    instead of once per job.  The mapping must not be shared across
    threads: ``finalize_fixed`` mutates the cached key in place.
    """

    def __init__(
        self,
        db: Database,
        params: PublicParams,
        *legacy_args: Any,
        config: ProverConfig | None = None,
        cache: ArtifactCache | None = None,
        key_cache: MutableMapping[str, ProvingKey] | None = None,
        **legacy_kwargs: Any,
    ):
        if legacy_args or legacy_kwargs:
            offending = list(_LEGACY_KWARGS)[: len(legacy_args)] + [
                name for name in legacy_kwargs
            ]
            replacements = ", ".join(
                f"{_LEGACY_KWARGS.get(name, name)}=..." for name in offending
            )
            raise TypeError(
                "ProverNode's legacy loose-kwarg signature was removed; "
                f"instead of {', '.join(offending)} pass "
                f"config=ProverConfig({replacements})"
            )
        if config is None:
            raise TypeError(
                "ProverNode requires config=ProverConfig(k=..., "
                "limb_bits=..., value_bits=..., key_bits=...)"
            )
        if (1 << config.k) > params.n:
            raise ConfigError("k exceeds public parameter capacity")
        self.config = config
        self.db = db
        self.params = (
            params.truncated(config.k) if params.k > config.k else params
        )
        self.k = config.k
        self.field = config.field
        self.limb_bits = config.limb_bits
        self.value_bits = config.value_bits
        self.key_bits = config.key_bits
        self.cache = cache if cache is not None else resolve_cache(
            config.cache_dir, enabled=config.use_cache
        )
        self.key_cache = key_cache
        self.commitment: Optional[DatabaseCommitment] = None
        self._secrets: Optional[CommitmentSecrets] = None
        self._planner = Planner(db)
        self._executor = Executor(db)

    def worker_clone(
        self, key_cache: MutableMapping[str, ProvingKey] | None = None
    ) -> "ProverNode":
        """A prover sharing this node's database, parameters, published
        commitment, and artifact cache, but with its own planner state
        and warm-key mapping.

        The proving service hands one clone to each long-lived worker:
        the heavyweight state (db, params, commitment secrets) is
        shared by reference, while everything ``answer()`` mutates is
        per-clone, so workers never contend on a proving key.
        """
        clone = ProverNode(
            self.db, self.params, config=self.config, cache=self.cache,
            key_cache=key_cache if key_cache is not None else {},
        )
        clone.commitment = self.commitment
        clone._secrets = self._secrets
        return clone

    # -- phase 2: commitment -------------------------------------------------

    def publish_commitment(self) -> DatabaseCommitment:
        """Commit to the database (done once; Table 3 measures this)."""
        self.commitment, self._secrets = commit_database(
            self.db, self.params, self.k, self.field
        )
        return self.commitment

    def public_metadata(self) -> PublicMetadata:
        return PublicMetadata.from_database(
            self.db, self.k, self.limb_bits, self.value_bits, self.key_bits
        )

    # -- phases 3-4: answer a query -------------------------------------------

    def answer(self, sql: str) -> QueryResponse:
        """Execute ``sql`` and produce the proof of correct execution.

        The whole pipeline runs under one ``prove`` telemetry root span;
        compile/witness/keygen become direct children alongside the
        ``prove.*`` phase spans :func:`create_proof` emits, so the
        response's phase report accounts for essentially all wall time.
        """
        if self.commitment is None or self._secrets is None:
            raise StateError("publish_commitment() must run first")
        timing = ProverTiming()
        counters_before = telemetry.counters_snapshot()
        root = telemetry.begin_span("prove", sql=sql, k=self.k)
        try:
            phase = telemetry.begin_span("prove.compile")
            query = parse(sql)
            plan = self._planner.plan(query)
            compiled = QueryCompiler(
                self.db, self.k, self.limb_bits, self.value_bits, self.key_bits
            ).compile(plan)
            phase.end()
            timing.extra["compile"] = phase.duration

            phase = telemetry.begin_span("prove.witness")
            asg = Assignment(compiled.cs, self.field, self.k)
            result_encoded = compiled.assign_witness(asg, self.db)
            # Replay the committed blinding tails in the scan columns so
            # the advice commitments differ from the database commitments
            # only in the W component.
            blind_overrides: dict[int, int] = {}
            links: list[ScanLinkProof] = []
            for link in compiled.scan_links:
                secret = self._secrets.columns[(link.table, link.column)]
                advice_col = compiled.cs.advice_columns[link.advice_index]
                asg.assign_tail(advice_col, secret.tail)
                delta = self.field.rand()
                blind_overrides[link.advice_index] = (
                    secret.blind + delta
                ) % self.field.p
                links.append(
                    ScanLinkProof(
                        link.advice_index, link.table, link.column, delta
                    )
                )
            phase.end()
            timing.extra["witness"] = phase.duration

            phase = telemetry.begin_span("prove.keygen")
            pk = self._obtain_proving_key(compiled, timing)
            finalize_fixed(pk, asg)
            phase.end()
            timing.extra["keygen"] = phase.duration

            proof = create_proof(
                pk, asg, timing=timing, advice_blind_overrides=blind_overrides
            )
        finally:
            root.end()
        timing.total = root.duration
        self._observe_latency(root)

        proof_bytes = proof.to_bytes()
        telemetry.gauge("proof.bytes", len(proof_bytes))
        decoded = self._decode(compiled, result_encoded)
        return QueryResponse(
            sql=sql,
            result_encoded=result_encoded,
            result=decoded,
            column_names=[meta.name for meta in compiled.outputs],
            proof=proof,
            proof_bytes=proof_bytes,
            scan_links=links,
            timing=timing,
            circuit_summary=compiled.cs.summary(),
            report=self._phase_report(root, counters_before),
        )

    def _obtain_proving_key(
        self, compiled: CompiledQuery, timing: ProverTiming
    ) -> ProvingKey:
        """The proving key for ``compiled``, warmest source first:
        in-memory ``key_cache`` (long-lived service workers), then the
        on-disk artifact cache, then a fresh keygen.

        ``timing.extra`` records which tier served the key
        (``keygen_warm_hit`` / ``keygen_cache_hit``).
        """
        fingerprint = keygen_fingerprint(
            self.params, compiled.cs, self.field, self.k
        )
        # Denominator of the warm-hit ratio health() reports
        # (keygen.warm_hits / keygen.requests).
        telemetry.incr("keygen.requests")
        if self.key_cache is not None:
            pk = self.key_cache.get(fingerprint)
            if pk is not None:
                timing.extra["keygen_warm_hit"] = 1.0
                telemetry.incr("keygen.warm_hits")
                return pk
            timing.extra["keygen_warm_hit"] = 0.0
        if self.cache.enabled:
            pk, cache_hit = cached_keygen(
                self.cache, self.params, compiled.cs, self.field, self.k
            )
            timing.extra["keygen_cache_hit"] = 1.0 if cache_hit else 0.0
        else:
            pk = keygen(self.params, compiled.cs, self.field, self.k)
        if self.key_cache is not None:
            self.key_cache[fingerprint] = pk
        return pk

    @staticmethod
    def _observe_latency(root) -> None:
        """Feed the prove-latency histograms: one ``prove.seconds``
        sample for the whole pipeline plus one per-phase sample
        (``prove.phase_seconds{phase=...}``), so the exposition layer
        can report p50/p95/p99 per query *and* per phase across a
        service's lifetime."""
        if not telemetry.enabled() or not isinstance(root, telemetry.Span):
            return
        telemetry.observe("prove.seconds", root.duration)
        for child in root.children:
            name = child.name
            if name.startswith("prove."):
                telemetry.observe(
                    "prove.phase_seconds",
                    child.duration,
                    labels={"phase": name[len("prove."):]},
                )

    @staticmethod
    def _phase_report(root, counters_before: dict[str, float]) -> dict | None:
        """The flat telemetry report for one answered query (None when
        telemetry is disabled).  Counters are reported as the delta over
        this query so back-to-back proves stay comparable."""
        if not telemetry.enabled() or not isinstance(root, telemetry.Span):
            return None
        after = telemetry.counters_snapshot()
        delta = {
            name: after[name] - counters_before.get(name, 0)
            for name in sorted(after)
            if after[name] != counters_before.get(name, 0)
        }
        return telemetry.phase_report(
            root, delta, telemetry.gauges_snapshot()
        )

    # -- helpers -----------------------------------------------------------

    def _decode(
        self, compiled: CompiledQuery, rows: list[list[int]]
    ) -> list[list[Any]]:
        from repro.db.types import int_to_date, int_to_decimal

        decoded = []
        for row in rows:
            out = []
            for meta, value in zip(compiled.outputs, row):
                if meta.kind == "decimal":
                    out.append(int_to_decimal(value, meta.scale))
                elif meta.kind == "date":
                    out.append(int_to_date(value))
                elif meta.kind == "string" and meta.source:
                    out.append(
                        self.db.encoder._rev.get(meta.source, {}).get(
                            value, value
                        )
                    )
                else:
                    out.append(value)
            decoded.append(out)
        return decoded
