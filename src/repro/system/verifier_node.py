"""The verifier: checks query responses against the database commitment.

Workflow (paper Figure 2, phase 5) plus the binding checks:

1. Recompile the query circuit from public metadata only and
   regenerate the verifying key (deterministic keygen -- no trust in
   prover-supplied keys).
2. Decode the proof from its **wire bytes** with strict validation
   (:meth:`repro.proving.proof.Proof.from_bytes`) -- the verifier never
   trusts the prover's in-memory proof object, so this path exercises
   exactly what a remote prover could send.
3. Check every scan link: the proof's advice commitment for a scanned
   column must equal the published database column commitment shifted
   by ``delta * W`` -- binding the proof to the committed database.
4. Verify the proof against the claimed result (instance columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry

from repro.algebra.field import Field, SCALAR_FIELD
from repro.commit.params import PublicParams
from repro.db.commitment import DatabaseCommitment
from repro.plonkish.assignment import Assignment
from repro.proving.keygen import finalize_fixed, keygen
from repro.proving.proof import Proof
from repro.proving.recursion import Accumulator
from repro.proving.verifier import verify_proof
from repro.wire import WireFormatError
from repro.sql.compiler import QueryCompiler
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.metadata import PublicMetadata, shell_database
from repro.system.prover_node import QueryResponse


@dataclass
class VerificationReport:
    accepted: bool
    reason: str = ""
    elapsed_seconds: float = 0.0
    proof_size_bytes: int = 0


class VerifierNode:
    """A client / verifier V holding only public information."""

    def __init__(
        self,
        params: PublicParams,
        metadata: PublicMetadata,
        commitment: DatabaseCommitment,
        field_: Field = SCALAR_FIELD,
    ):
        self.params = (
            params.truncated(metadata.k) if params.k > metadata.k else params
        )
        self.metadata = metadata
        self.commitment = commitment
        self.field = field_
        self._shell = shell_database(metadata)
        self._planner = Planner(self._shell)

    def rebuild_verifying_key(self, sql: str, result_rows: int):
        """Recompile ``sql`` from public metadata and regenerate the
        verifying key (deterministic keygen; no trust in the prover).

        Returns ``(compiled, vk)``.  Raises on malformed queries.
        """
        query = parse(sql)
        plan = self._planner.plan(query)
        compiled = QueryCompiler(
            self._shell,
            self.metadata.k,
            self.metadata.limb_bits,
            self.metadata.value_bits,
            self.metadata.key_bits,
        ).compile(plan)
        asg = Assignment(compiled.cs, self.field, self.metadata.k)
        compiled.assign_public(asg, result_rows)
        pk = keygen(self.params, compiled.cs, self.field, self.metadata.k)
        finalize_fixed(pk, asg)
        return compiled, pk.vk

    def verify(
        self,
        response: QueryResponse,
        accumulator: Accumulator | None = None,
    ) -> VerificationReport:
        """Check a query response.  The whole check runs under a timed
        ``verify`` telemetry span, which is also the single source of the
        report's ``elapsed_seconds`` (no local clock arithmetic)."""
        span = telemetry.begin_span("verify", sql=response.sql)
        try:
            report = self._verify_inner(response, accumulator)
        except BaseException:
            span.end(status="error")
            raise
        span.set(accepted=report.accepted).end()
        report.elapsed_seconds = span.duration
        return report

    def _verify_inner(
        self,
        response: QueryResponse,
        accumulator: Accumulator | None,
    ) -> VerificationReport:
        try:
            with telemetry.span("verify.rebuild_vk"):
                compiled, vk = self.rebuild_verifying_key(
                    response.sql, len(response.result_encoded)
                )
        except Exception as exc:  # malformed query == reject
            return VerificationReport(False, f"recompilation failed: {exc}")

        # Structural cross-checks before any crypto.
        if len(compiled.scan_links) != len(response.scan_links):
            return VerificationReport(False, "scan link count mismatch")
        if compiled.limit is not None and len(
            response.result_encoded
        ) > compiled.limit:
            return VerificationReport(False, "result exceeds LIMIT")
        if len(response.result_encoded) > compiled.usable_rows:
            return VerificationReport(False, "result exceeds circuit capacity")

        # Decode the proof from wire bytes -- the only trusted source.
        wire = response.wire_bytes()
        try:
            proof = Proof.from_bytes(vk, wire)
        except WireFormatError as exc:
            return VerificationReport(
                False,
                f"proof decode failed: {exc}",
                proof_size_bytes=len(wire),
            )

        # Scan links: advice commitment == db column commitment + delta*W.
        expected_links = {
            (l.advice_index, l.table, l.column) for l in compiled.scan_links
        }
        for link in response.scan_links:
            if (link.advice_index, link.table, link.column) not in expected_links:
                return VerificationReport(False, "unexpected scan link")
            if link.advice_index >= len(proof.advice_commitments):
                return VerificationReport(False, "scan link out of range")
            db_commit = self.commitment.column_commitments.get(
                (link.table, link.column)
            )
            if db_commit is None:
                return VerificationReport(False, "column not in commitment")
            advice_commit = proof.advice_commitments[link.advice_index]
            if advice_commit != db_commit + self.params.w * link.delta:
                return VerificationReport(
                    False,
                    f"scan link broken for {link.table}.{link.column}: the "
                    "proof was not computed over the committed database",
                )

        instance = compiled.instance_vectors(response.result_encoded)
        with telemetry.span("verify.proof"):
            ok = verify_proof(vk, proof, instance, accumulator)
        if not ok:
            return VerificationReport(
                False, "proof rejected", proof_size_bytes=len(wire)
            )
        return VerificationReport(True, proof_size_bytes=len(wire))
