"""The verifier: checks query responses against the database commitment.

Workflow (paper Figure 2, phase 5) plus the binding checks:

1. Recompile the query circuit from public metadata only and
   regenerate the verifying key (deterministic keygen -- no trust in
   prover-supplied keys).
2. Decode the proof from its **wire bytes** with strict validation
   (:meth:`repro.proving.proof.Proof.from_bytes`) -- the verifier never
   trusts the prover's in-memory proof object, so this path exercises
   exactly what a remote prover could send.
3. Check every scan link: the proof's advice commitment for a scanned
   column must equal the published database column commitment shifted
   by ``delta * W`` -- binding the proof to the committed database.
4. Verify the proof against the claimed result (instance columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro import telemetry

from repro.algebra.field import Field, SCALAR_FIELD
from repro.commit.params import PublicParams
from repro.db.commitment import DatabaseCommitment
from repro.errors import VerificationFailure
from repro.plonkish.assignment import Assignment
from repro.proving.aggregate import AggProof
from repro.proving.keygen import finalize_fixed, keygen
from repro.proving.proof import Proof
from repro.proving.recursion import Accumulator
from repro.proving.verifier import verify_proof
from repro.wire import WireFormatError
from repro.sql.compiler import QueryCompiler
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.system.metadata import PublicMetadata, shell_database
from repro.system.prover_node import QueryResponse

#: Rebuilt verifying keys memoized per (sql, result_rows, params
#: fingerprint); bounded so a hostile query stream cannot grow the
#: verifier without limit.
_VK_CACHE_MAX = 32

_Item = TypeVar("_Item")


@dataclass
class VerificationReport:
    """The uniform verification outcome shape.

    Every verification surface -- :meth:`VerifierNode.verify`,
    :meth:`repro.api.Session.verify`, and each per-proof entry of a
    :class:`BatchReport` -- returns exactly this: the accept flag, the
    rejection reason, the elapsed wall time, and the wire size checked.
    """

    accepted: bool
    reason: str = ""
    elapsed_seconds: float = 0.0
    proof_size_bytes: int = 0

    def require(self) -> "VerificationReport":
        """Return ``self`` if accepted, else raise
        :class:`~repro.errors.VerificationFailure` with the reason."""
        if not self.accepted:
            raise VerificationFailure(
                f"proof rejected: {self.reason or 'unspecified'}", report=self
            )
        return self


@dataclass
class BatchReport:
    """The outcome of :meth:`VerifierNode.batch_verify`.

    ``reports`` holds one :class:`VerificationReport` per response, in
    submission order; ``accepted`` is True only when every individual
    report accepted *and* the shared accumulator's single folded MSM
    check passed.  ``deferred_openings`` counts the per-proof IPA
    base-folding MSMs that were amortized into that one final check.
    """

    accepted: bool
    reports: list[VerificationReport] = field(default_factory=list)
    reason: str = ""
    elapsed_seconds: float = 0.0
    finalize_seconds: float = 0.0
    deferred_openings: int = 0

    @property
    def proofs(self) -> int:
        return len(self.reports)

    @property
    def per_proof_seconds(self) -> float:
        return self.elapsed_seconds / len(self.reports) if self.reports else 0.0

    def require(self) -> "BatchReport":
        """Return ``self`` if the whole batch accepted, else raise
        :class:`~repro.errors.VerificationFailure`."""
        if not self.accepted:
            rejected = [
                i for i, rep in enumerate(self.reports) if not rep.accepted
            ]
            raise VerificationFailure(
                f"batch rejected ({self.reason or 'proof(s) rejected'}; "
                f"rejected indices {rejected})",
                report=self,
            )
        return self


@dataclass
class AggReport(BatchReport):
    """The outcome of :meth:`VerifierNode.verify_aggregate`: a
    :class:`BatchReport` over the aggregate's folded entries, plus the
    wire size of the aggregated claim that was checked."""

    aggregate_size_bytes: int = 0


class VerifierNode:
    """A client / verifier V holding only public information."""

    def __init__(
        self,
        params: PublicParams,
        metadata: PublicMetadata,
        commitment: DatabaseCommitment,
        field_: Field = SCALAR_FIELD,
    ):
        self.params = (
            params.truncated(metadata.k) if params.k > metadata.k else params
        )
        self.metadata = metadata
        self.commitment = commitment
        self.field = field_
        self._shell = shell_database(metadata)
        self._planner = Planner(self._shell)
        self._vk_cache: dict[tuple[str, int, str], tuple] = {}

    def rebuild_verifying_key(self, sql: str, result_rows: int):
        """Recompile ``sql`` from public metadata and regenerate the
        verifying key (deterministic keygen; no trust in the prover).

        Returns ``(compiled, vk)``.  Raises on malformed queries.

        Rebuilds are memoized per ``(sql, result_rows, params
        fingerprint)``: keygen is a pure function of public data, so a
        verifier checking many proofs of the same query shape (the
        batch-verification workload) pays compilation + keygen once.
        The fingerprint is part of the key because keygen commits the
        fixed columns under the *current* parameters -- a verifier
        whose parameters change across sessions must never serve a vk
        compiled for the old generators.
        """
        memo_key = (sql, result_rows, self.params.fingerprint())
        cached = self._vk_cache.get(memo_key)
        if cached is not None:
            telemetry.incr("verify.vk_cache_hits")
            return cached
        query = parse(sql)
        plan = self._planner.plan(query)
        compiled = QueryCompiler(
            self._shell,
            self.metadata.k,
            self.metadata.limb_bits,
            self.metadata.value_bits,
            self.metadata.key_bits,
        ).compile(plan)
        asg = Assignment(compiled.cs, self.field, self.metadata.k)
        compiled.assign_public(asg, result_rows)
        pk = keygen(self.params, compiled.cs, self.field, self.metadata.k)
        finalize_fixed(pk, asg)
        if len(self._vk_cache) >= _VK_CACHE_MAX:
            self._vk_cache.pop(next(iter(self._vk_cache)))
        self._vk_cache[memo_key] = (compiled, pk.vk)
        return compiled, pk.vk

    def verify(
        self,
        response: QueryResponse,
        accumulator: Accumulator | None = None,
    ) -> VerificationReport:
        """Check a query response.  The whole check runs under a timed
        ``verify`` telemetry span, which is also the single source of the
        report's ``elapsed_seconds`` (no local clock arithmetic)."""
        return self._verify_timed(
            response.sql,
            response.result_encoded,
            response.scan_links,
            response.wire_bytes(),
            accumulator,
        )

    def _verify_timed(
        self,
        sql: str,
        result_encoded: list[list[int]],
        scan_links: Sequence,
        wire: bytes,
        accumulator: Accumulator | None,
    ) -> VerificationReport:
        span = telemetry.begin_span("verify", sql=sql)
        try:
            report = self._verify_claim(
                sql, result_encoded, scan_links, wire, accumulator
            )
        except BaseException:
            span.end(status="error")
            raise
        span.set(accepted=report.accepted).end()
        report.elapsed_seconds = span.duration
        telemetry.observe("verify.seconds", span.duration)
        return report

    def _verify_claim(
        self,
        sql: str,
        result_encoded: list[list[int]],
        scan_links: Sequence,
        wire: bytes,
        accumulator: Accumulator | None,
    ) -> VerificationReport:
        """The per-claim verification core, shared by :meth:`verify`
        (claims arrive inside a :class:`QueryResponse`) and
        :meth:`verify_aggregate` (claims arrive as decoded ``PDBA``
        entries).  ``scan_links`` is any sequence of objects with
        ``advice_index`` / ``table`` / ``column`` / ``delta``."""
        try:
            with telemetry.span("verify.rebuild_vk"):
                compiled, vk = self.rebuild_verifying_key(
                    sql, len(result_encoded)
                )
        except Exception as exc:  # malformed query == reject
            return VerificationReport(False, f"recompilation failed: {exc}")

        # Structural cross-checks before any crypto.
        if len(compiled.scan_links) != len(scan_links):
            return VerificationReport(False, "scan link count mismatch")
        if compiled.limit is not None and len(
            result_encoded
        ) > compiled.limit:
            return VerificationReport(False, "result exceeds LIMIT")
        if len(result_encoded) > compiled.usable_rows:
            return VerificationReport(False, "result exceeds circuit capacity")

        # Decode the proof from wire bytes -- the only trusted source.
        try:
            proof = Proof.from_bytes(vk, wire)
        except WireFormatError as exc:
            return VerificationReport(
                False,
                f"proof decode failed: {exc}",
                proof_size_bytes=len(wire),
            )

        # Scan links: advice commitment == db column commitment + delta*W.
        expected_links = {
            (l.advice_index, l.table, l.column) for l in compiled.scan_links
        }
        for link in scan_links:
            if (link.advice_index, link.table, link.column) not in expected_links:
                return VerificationReport(False, "unexpected scan link")
            if link.advice_index >= len(proof.advice_commitments):
                return VerificationReport(False, "scan link out of range")
            db_commit = self.commitment.column_commitments.get(
                (link.table, link.column)
            )
            if db_commit is None:
                return VerificationReport(False, "column not in commitment")
            advice_commit = proof.advice_commitments[link.advice_index]
            if advice_commit != db_commit + self.params.w * link.delta:
                return VerificationReport(
                    False,
                    f"scan link broken for {link.table}.{link.column}: the "
                    "proof was not computed over the committed database",
                )

        instance = compiled.instance_vectors(result_encoded)
        with telemetry.span("verify.proof"):
            ok = verify_proof(vk, proof, instance, accumulator)
        if not ok:
            return VerificationReport(
                False, "proof rejected", proof_size_bytes=len(wire)
            )
        return VerificationReport(True, proof_size_bytes=len(wire))

    def _amortized_verify(
        self,
        items: Sequence[_Item],
        verify_item: Callable[
            [_Item, Accumulator | None], VerificationReport
        ],
    ) -> tuple[bool, list[VerificationReport], str, float, int]:
        """The shared deferred-MSM engine behind :meth:`batch_verify`
        and :meth:`verify_aggregate`.

        Runs every item's full cheap pipeline against one fresh
        recursion accumulator, settles all deferred base-folding MSMs
        with a single finalize, and -- because a failed fold cannot say
        *which* claim broke -- re-verifies provisionally-accepted items
        eagerly to attribute the failure.  The accumulator is consumed
        by its finalize either way (fresh one per call), so stale
        claims can never leak into a later batch.

        Returns ``(accepted, reports, reason, finalize_seconds,
        deferred_openings)``.
        """
        accumulator = Accumulator(self.params, self.field)
        reports = [verify_item(item, accumulator) for item in items]
        deferred = accumulator.deferred_count
        finalize_sw = telemetry.stopwatch().start()
        folded_ok = accumulator.finalize()
        finalize_seconds = finalize_sw.end()
        reason = ""
        if not folded_ok:
            reason = "batch accumulator check failed"
            for i, item in enumerate(items):
                if reports[i].accepted:
                    reports[i] = verify_item(item, None)
        if not all(rep.accepted for rep in reports):
            reason = reason or "proof(s) rejected"
        accepted = folded_ok and all(rep.accepted for rep in reports)
        return accepted, reports, reason, finalize_seconds, deferred

    def batch_verify(
        self, responses: Sequence[QueryResponse]
    ) -> BatchReport:
        """Verify many responses, amortizing the expensive MSMs.

        Each proof runs the full per-proof pipeline (wire decode, scan
        links, constraint identity, logarithmic IPA round checks), but
        the *linear-time* base-folding MSM of every IPA opening is
        deferred into one shared recursion
        :class:`~repro.proving.recursion.Accumulator` -- the same trick
        :func:`~repro.proving.multiopen.multi_verify` plays across the
        IPA rounds of a single proof, lifted across proofs.  One folded
        MSM at the end replaces ``proofs x openings`` of them.

        Soundness: a per-proof report may come back provisionally
        accepted with its MSM claim still deferred; the batch is
        accepted only if the final folded check also passes.  When it
        fails, every provisionally-accepted proof is re-verified
        individually so the reports attribute the failure to the
        tampered proof(s) rather than condemning the whole batch
        blindly.
        """
        span = telemetry.begin_span("batch_verify", proofs=len(responses))
        try:
            accepted, reports, reason, finalize_seconds, deferred = (
                self._amortized_verify(
                    responses,
                    lambda response, acc: self.verify(
                        response, accumulator=acc
                    ),
                )
            )
        except BaseException:
            span.end(status="error")
            raise
        span.set(accepted=accepted, deferred=deferred).end()
        # The amortization histogram: per-proof cost of a batched
        # verify, comparable against the verify.seconds series.
        if responses:
            telemetry.observe(
                "verify.batch_per_proof_seconds",
                span.duration / len(responses),
            )
        return BatchReport(
            accepted=accepted,
            reports=reports,
            reason=reason,
            elapsed_seconds=span.duration,
            finalize_seconds=finalize_seconds,
            deferred_openings=deferred,
        )

    def verify_aggregate(self, agg: "AggProof | bytes") -> AggReport:
        """Check an aggregated claim (``PDBA`` wire bytes or a decoded
        :class:`~repro.proving.aggregate.AggProof`) with one final MSM.

        The aggregate must be bound to this verifier's exact public
        parameters (content fingerprint, not just size).  Every folded
        entry replays its cheap checks -- strict proof decode, scan
        links against the database commitment, the constraint identity,
        the logarithmic IPA rounds -- while all the linear-time
        base-folding MSMs collapse into a single fixed-base
        accumulator finalize.  On a failed fold, entries are re-verified
        eagerly so the report attributes the failure to the tampered
        entry (or entries) instead of condemning the batch blindly.
        """
        span = telemetry.begin_span("verify_aggregate")
        try:
            report = self._verify_aggregate_inner(agg)
        except BaseException:
            span.end(status="error")
            raise
        span.set(accepted=report.accepted, proofs=report.proofs).end()
        report.elapsed_seconds = span.duration
        return report

    def _verify_aggregate_inner(self, agg: "AggProof | bytes") -> AggReport:
        if isinstance(agg, (bytes, bytearray, memoryview)):
            data = bytes(agg)
            size = len(data)
            try:
                agg = AggProof.from_bytes(data, self.field)
            except WireFormatError as exc:
                return AggReport(
                    accepted=False,
                    reason=f"aggregate decode failed: {exc}",
                    aggregate_size_bytes=size,
                )
        else:
            size = agg.size_bytes()
        if agg.params_fingerprint != bytes.fromhex(self.params.fingerprint()):
            return AggReport(
                accepted=False,
                reason=(
                    "aggregate bound to different public parameters "
                    f"(expected fingerprint {self.params.fingerprint()}, "
                    f"got {agg.params_fingerprint.hex()})"
                ),
                aggregate_size_bytes=size,
            )
        accepted, reports, reason, finalize_seconds, deferred = (
            self._amortized_verify(
                agg.entries,
                lambda entry, acc: self._verify_timed(
                    entry.sql,
                    entry.result_encoded,
                    entry.scan_links,
                    entry.proof_bytes,
                    acc,
                ),
            )
        )
        return AggReport(
            accepted=accepted,
            reports=reports,
            reason=reason,
            finalize_seconds=finalize_seconds,
            deferred_openings=deferred,
            aggregate_size_bytes=size,
        )
