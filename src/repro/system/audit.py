"""The auditor role (paper section 3.3).

A regulator trusted by both sides reads the raw database from the
prover, validates its authenticity out of band, and attests that the
published commitment corresponds to it.  Clients compare the attested
commitment (e.g. pinned on a blockchain) with the commitment every
proof links to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import telemetry
from repro.commit.params import PublicParams
from repro.db.commitment import (
    CommitmentSecrets,
    DatabaseCommitment,
    audit_commitment,
)
from repro.db.database import Database
from repro.wire import WireFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.proving.aggregate import AggProof
    from repro.system.verifier_node import VerifierNode


@dataclass
class AuditCertificate:
    """The auditor's attestation over a commitment root."""

    root: bytes
    valid: bool
    detail: str = ""
    elapsed_seconds: float = 0.0


@dataclass
class AggregateAuditCertificate:
    """The auditor's attestation over one epoch's aggregated claim.

    ``digest`` pins the canonical ``PDBA`` wire bytes (what an audit log
    or blockchain entry stores); ``proofs`` is how many query proofs the
    attested aggregate folds."""

    digest: bytes
    proofs: int
    valid: bool
    detail: str = ""
    elapsed_seconds: float = 0.0


def audit_aggregate(
    verifier: "VerifierNode", agg: "AggProof | bytes"
) -> AggregateAuditCertificate:
    """Attest an aggregated claim by checking **one** accumulator.

    Instead of replaying every query proof independently, the auditor
    round-trips the aggregate through its canonical ``PDBA`` wire bytes
    (the attestation must cover exactly what decodes), runs
    :meth:`~repro.system.verifier_node.VerifierNode.verify_aggregate` --
    all deferred MSMs settle in a single fixed-base finalize -- and pins
    the content digest of those bytes.  Anyone holding the certificate
    can later match an audit-log entry against the digest without
    re-verifying."""
    span = telemetry.begin_span("audit_aggregate")
    try:
        cert = _audit_aggregate_inner(verifier, agg)
    except BaseException:
        span.end(status="error")
        raise
    span.set(valid=cert.valid, proofs=cert.proofs).end()
    cert.elapsed_seconds = span.duration
    return cert


def _audit_aggregate_inner(
    verifier: "VerifierNode", agg: "AggProof | bytes"
) -> AggregateAuditCertificate:
    import hashlib

    from repro.proving.aggregate import AggProof

    if isinstance(agg, (bytes, bytearray, memoryview)):
        data = bytes(agg)
    else:
        try:
            data = agg.to_bytes()
        except ValueError as exc:
            return AggregateAuditCertificate(
                b"", 0, False, f"aggregate not serializable: {exc}"
            )
    digest = hashlib.blake2b(data, digest_size=20).digest()
    try:
        decoded = AggProof.from_bytes(data, verifier.field)
    except WireFormatError as exc:
        return AggregateAuditCertificate(
            digest, 0, False, f"aggregate decode failed: {exc}"
        )
    report = verifier.verify_aggregate(decoded)
    if not report.accepted:
        return AggregateAuditCertificate(
            digest, decoded.proofs, False, report.reason
        )
    return AggregateAuditCertificate(digest, decoded.proofs, True)


def audit(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> AuditCertificate:
    """Recompute every column commitment from the raw database and the
    prover's disclosed randomness; attest the published root.

    The commitment is first round-tripped through its wire encoding
    (:meth:`DatabaseCommitment.to_bytes` / ``from_bytes``): an auditor
    receives the commitment over the wire, so the attestation must cover
    exactly what decodes -- including the Merkle-root consistency check
    baked into ``from_bytes``.  The whole check runs under a timed
    ``audit`` telemetry span that also provides ``elapsed_seconds``."""
    span = telemetry.begin_span("audit", k=commitment.k)
    try:
        cert = _audit_inner(db, commitment, secrets, params)
    except BaseException:
        span.end(status="error")
        raise
    span.set(valid=cert.valid).end()
    cert.elapsed_seconds = span.duration
    return cert


def _audit_inner(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> AuditCertificate:
    try:
        commitment = DatabaseCommitment.from_bytes(
            params.curve, commitment.to_bytes()
        )
    except WireFormatError as exc:
        return AuditCertificate(
            commitment.root, False, f"commitment decode failed: {exc}"
        )
    try:
        fit = params.truncated(commitment.k) if params.k > commitment.k else params
        ok = audit_commitment(db, commitment, secrets, fit)
    except (KeyError, ValueError) as exc:
        return AuditCertificate(commitment.root, False, f"audit error: {exc}")
    if not ok:
        return AuditCertificate(
            commitment.root, False, "commitment does not match the database"
        )
    return AuditCertificate(commitment.root, True)
