"""The auditor role (paper section 3.3).

A regulator trusted by both sides reads the raw database from the
prover, validates its authenticity out of band, and attests that the
published commitment corresponds to it.  Clients compare the attested
commitment (e.g. pinned on a blockchain) with the commitment every
proof links to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.commit.params import PublicParams
from repro.db.commitment import (
    CommitmentSecrets,
    DatabaseCommitment,
    audit_commitment,
)
from repro.db.database import Database
from repro.wire import WireFormatError


@dataclass
class AuditCertificate:
    """The auditor's attestation over a commitment root."""

    root: bytes
    valid: bool
    detail: str = ""
    elapsed_seconds: float = 0.0


def audit(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> AuditCertificate:
    """Recompute every column commitment from the raw database and the
    prover's disclosed randomness; attest the published root.

    The commitment is first round-tripped through its wire encoding
    (:meth:`DatabaseCommitment.to_bytes` / ``from_bytes``): an auditor
    receives the commitment over the wire, so the attestation must cover
    exactly what decodes -- including the Merkle-root consistency check
    baked into ``from_bytes``.  The whole check runs under a timed
    ``audit`` telemetry span that also provides ``elapsed_seconds``."""
    span = telemetry.begin_span("audit", k=commitment.k)
    try:
        cert = _audit_inner(db, commitment, secrets, params)
    except BaseException:
        span.end(status="error")
        raise
    span.set(valid=cert.valid).end()
    cert.elapsed_seconds = span.duration
    return cert


def _audit_inner(
    db: Database,
    commitment: DatabaseCommitment,
    secrets: CommitmentSecrets,
    params: PublicParams,
) -> AuditCertificate:
    try:
        commitment = DatabaseCommitment.from_bytes(
            params.curve, commitment.to_bytes()
        )
    except WireFormatError as exc:
        return AuditCertificate(
            commitment.root, False, f"commitment decode failed: {exc}"
        )
    try:
        fit = params.truncated(commitment.k) if params.k > commitment.k else params
        ok = audit_commitment(db, commitment, secrets, fit)
    except (KeyError, ValueError) as exc:
        return AuditCertificate(commitment.root, False, f"audit error: {exc}")
    if not ok:
        return AuditCertificate(
            commitment.root, False, "commitment does not match the database"
        )
    return AuditCertificate(commitment.root, True)
