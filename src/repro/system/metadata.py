"""Public database metadata.

The verifier regenerates the query circuit (and hence the verifying
key) from public information only: table schemas, row counts, string
dictionaries, and the commitment parameter ``k``.  Cell values never
leave the prover.

Note on dictionaries: publishing them reveals the *set* of distinct
strings per column (market segments, nation names, ...), not which rows
hold which value.  TPC-H's string domains are public vocabulary; for
columns where the domain itself is sensitive, a keyed-PRF encoding
would be substituted (out of scope, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.types import SqlType


@dataclass
class PublicMetadata:
    k: int
    schemas: dict[str, TableSchema]
    table_sizes: dict[str, int]
    dictionaries: dict[str, dict[str, int]] = field(default_factory=dict)
    #: circuit geometry both parties must agree on (paper defaults:
    #: 8-bit u8 cells over 64-bit values, 48-bit sort-key components).
    limb_bits: int = 8
    value_bits: int = 64
    key_bits: int = 48

    @classmethod
    def from_database(
        cls,
        db: Database,
        k: int,
        limb_bits: int = 8,
        value_bits: int = 64,
        key_bits: int = 48,
    ) -> "PublicMetadata":
        dictionaries = {}
        for name, table in db.tables.items():
            for col in table.schema.columns:
                if col.type.base is SqlType.STRING:
                    qualified = f"{name}.{col.name}"
                    dictionaries[qualified] = db.encoder.dictionary(qualified)
        return cls(
            k=k,
            schemas={name: t.schema for name, t in db.tables.items()},
            table_sizes={name: len(t) for name, t in db.tables.items()},
            dictionaries=dictionaries,
            limb_bits=limb_bits,
            value_bits=value_bits,
            key_bits=key_bits,
        )


def shell_database(metadata: PublicMetadata) -> Database:
    """A data-free database stand-in: right schemas, right sizes, right
    dictionaries, all-zero cells.  Sufficient for circuit compilation
    and key generation on the verifier side."""
    db = Database()
    for name, schema in metadata.schemas.items():
        size = metadata.table_sizes[name]
        columns = {col.name: [0] * size for col in schema.columns}
        db.add_table(Table(schema, columns))
    for qualified, codes in metadata.dictionaries.items():
        db.encoder._dicts[qualified] = dict(codes)
        db.encoder._rev[qualified] = {c: s for s, c in codes.items()}
    return db
