"""PoneglyphDB reproduction: ZK proofs of SQL query execution.

The top-level names are the full public surface: the session facade,
its configuration, the explicit system roles, the async proving
service, and the typed error hierarchy::

    from repro import PoneglyphDB, ProverConfig

    with PoneglyphDB.open(db, ProverConfig(k=7)) as session:
        response = session.prove("select count(*) from patients")
        assert session.verify(response).accepted

or, serving many clients asynchronously::

    from repro import ServiceConfig

    with session.serve(ServiceConfig(workers=4)) as service:
        job = service.submit("select count(*) from patients")
        response = service.wait(job)

Everything else lives in the subpackages (``repro.sql`` for the query
pipeline, ``repro.proving`` for the proof system internals,
``repro.ecc`` for curve arithmetic and the kernel fast path).
"""

from repro import telemetry
from repro.api import PoneglyphDB, Session
from repro.cache import ArtifactCache, default_cache_dir
from repro.config import ProverConfig, ServiceConfig
from repro.errors import (
    BatchInversionError,
    ConfigError,
    DeadlineExceeded,
    JobFailed,
    JobNotFound,
    JobTimeout,
    JournalCorrupt,
    JournalError,
    RecoveryMismatch,
    ReproError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    StateError,
    VerificationFailure,
    WireFormatError,
)
from repro.service import (
    JobId,
    JobState,
    JobStatus,
    Priority,
    ProvingService,
)
from repro.proving.aggregate import AggProof, aggregate
from repro.system import (
    AggReport,
    BatchReport,
    ProverNode,
    QueryResponse,
    VerificationReport,
    VerifierNode,
)

__all__ = [
    # Session facade
    "PoneglyphDB",
    "Session",
    "ProverConfig",
    "ServiceConfig",
    "ArtifactCache",
    "default_cache_dir",
    "telemetry",
    # System roles and their artifacts
    "ProverNode",
    "VerifierNode",
    "QueryResponse",
    "VerificationReport",
    "BatchReport",
    # Proof aggregation
    "AggProof",
    "AggReport",
    "aggregate",
    # Async proving service
    "ProvingService",
    "JobId",
    "JobState",
    "JobStatus",
    "Priority",
    # Error hierarchy
    "ReproError",
    "BatchInversionError",
    "ConfigError",
    "StateError",
    "WireFormatError",
    "VerificationFailure",
    "ServiceError",
    "ServiceClosed",
    "ServiceOverloaded",
    "JobFailed",
    "JobNotFound",
    "JobTimeout",
    "DeadlineExceeded",
    "JournalError",
    "JournalCorrupt",
    "RecoveryMismatch",
]
