"""PoneglyphDB reproduction: ZK proofs of SQL query execution.

The top-level names are the session facade -- everything else lives in
the subpackages (``repro.system`` for the explicit prover/verifier
roles, ``repro.sql`` for the query pipeline, ``repro.proving`` for the
proof system internals)::

    from repro import PoneglyphDB, ProverConfig

    with PoneglyphDB.open(db, ProverConfig(k=7)) as session:
        response = session.prove("select count(*) from patients")
        assert session.verify(response).accepted
"""

from repro import telemetry
from repro.api import PoneglyphDB, Session
from repro.cache import ArtifactCache, default_cache_dir
from repro.config import ProverConfig

__all__ = [
    "PoneglyphDB",
    "Session",
    "ProverConfig",
    "ArtifactCache",
    "default_cache_dir",
    "telemetry",
]
