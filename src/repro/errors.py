"""The ``repro`` exception hierarchy.

Everything this package raises on purpose derives from
:class:`ReproError`, so callers embedding the stack can catch one type
at a service boundary.  Each subclass *also* inherits the builtin type
the code historically raised (``ValueError``, ``RuntimeError``,
``KeyError``), so pre-existing ``except`` clauses keep working
unchanged.

This module is dependency-free on purpose: it must be importable from
the lowest layers (:mod:`repro.wire`, :mod:`repro.config`) without
cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by ``repro``."""


class ConfigError(ReproError, ValueError):
    """A configuration object (:class:`~repro.config.ProverConfig`,
    :class:`~repro.config.ServiceConfig`) rejected its inputs, or a
    component was asked to run outside its configured capacity."""


class StateError(ReproError, RuntimeError):
    """An operation was invoked out of lifecycle order -- verifying
    before committing, fetching a result before the job finished."""


class WireFormatError(ReproError, ValueError):
    """Serialized proof material is malformed: bad magic, inconsistent
    counts, non-canonical scalars, off-curve points, or trailing
    bytes.  (Re-exported by :mod:`repro.wire`, where the decoding rules
    live.)"""


class VerificationFailure(ReproError, RuntimeError):
    """Raised by the ``require()``-style helpers when a proof that was
    expected to verify did not.  Carries the rejecting report."""

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class ServiceError(ReproError, RuntimeError):
    """Base class for :mod:`repro.service` failures."""


class ServiceOverloaded(ServiceError):
    """The proving service shed the submission: the job queue is at its
    configured depth for the job's priority lane.  Carries the depth
    observed at rejection time so clients can back off intelligently."""

    def __init__(self, message: str, queue_depth: int = 0):
        super().__init__(message)
        self.queue_depth = queue_depth


class ServiceClosed(ServiceError):
    """The proving service is shut down and no longer accepts jobs."""


class JobNotFound(ServiceError, KeyError):
    """No job with the given id exists in this service."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0] if self.args else ""


class JobFailed(ServiceError):
    """The job ran and its prover raised; ``error`` is the worker-side
    failure description."""

    def __init__(self, job_id: str, error: str):
        super().__init__(f"job {job_id} failed: {error}")
        self.job_id = job_id
        self.error = error


__all__ = [
    "ReproError",
    "ConfigError",
    "StateError",
    "WireFormatError",
    "VerificationFailure",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceClosed",
    "JobNotFound",
    "JobFailed",
]
