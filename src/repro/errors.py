"""The ``repro`` exception hierarchy.

Everything this package raises on purpose derives from
:class:`ReproError`, so callers embedding the stack can catch one type
at a service boundary.  Each subclass *also* inherits the builtin type
the code historically raised (``ValueError``, ``RuntimeError``,
``KeyError``), so pre-existing ``except`` clauses keep working
unchanged.

This module is dependency-free on purpose: it must be importable from
the lowest layers (:mod:`repro.wire`, :mod:`repro.config`) without
cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by ``repro``."""


class ConfigError(ReproError, ValueError):
    """A configuration object (:class:`~repro.config.ProverConfig`,
    :class:`~repro.config.ServiceConfig`) rejected its inputs, or a
    component was asked to run outside its configured capacity."""


class BatchInversionError(ReproError, ValueError, ZeroDivisionError):
    """Batch inversion was handed a zero element, which has no inverse.
    ``index`` names the offending position in the input batch.  Also a
    ``ZeroDivisionError`` (the type this code historically raised), so
    pre-existing handlers keep working."""

    def __init__(self, index: int):
        super().__init__(
            f"batch_inv input at index {index} is zero (0 has no inverse)"
        )
        self.index = index


class StateError(ReproError, RuntimeError):
    """An operation was invoked out of lifecycle order -- verifying
    before committing, fetching a result before the job finished."""


class WireFormatError(ReproError, ValueError):
    """Serialized proof material is malformed: bad magic, inconsistent
    counts, non-canonical scalars, off-curve points, or trailing
    bytes.  (Re-exported by :mod:`repro.wire`, where the decoding rules
    live.)"""


class VerificationFailure(ReproError, RuntimeError):
    """Raised by the ``require()``-style helpers when a proof that was
    expected to verify did not.  Carries the rejecting report."""

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class ServiceError(ReproError, RuntimeError):
    """Base class for :mod:`repro.service` failures."""


class ServiceOverloaded(ServiceError):
    """The proving service shed the submission: the job queue is at its
    configured depth for the job's priority lane, or the submitting
    tenant is at its admission quota.  Carries the depth observed at
    rejection time (and, for quota rejections, the ``tenant`` and its
    ``quota``) so clients can back off intelligently."""

    def __init__(
        self,
        message: str,
        queue_depth: int = 0,
        tenant: str | None = None,
        quota: int | None = None,
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.tenant = tenant
        self.quota = quota


class ServiceClosed(ServiceError):
    """The proving service is shut down and no longer accepts jobs."""


class JobNotFound(ServiceError, KeyError):
    """No job with the given id exists in this service."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0] if self.args else ""


class JobFailed(ServiceError):
    """The job ran and its prover raised; ``error`` is the worker-side
    failure description."""

    def __init__(self, job_id: str, error: str):
        super().__init__(f"job {job_id} failed: {error}")
        self.job_id = job_id
        self.error = error


class JobTimeout(ServiceError, TimeoutError):
    """``ProvingService.wait()`` gave up before the job finished.  The
    job itself keeps running; poll or ``wait`` again.  Also a
    ``TimeoutError`` (the type this code historically raised), so
    pre-existing ``except TimeoutError`` handlers keep working."""

    def __init__(self, job_id: str, message: str):
        super().__init__(message)
        self.job_id = job_id


class DeadlineExceeded(ServiceError, TimeoutError):
    """The job blew through its ``deadline_seconds`` budget and was
    failed (cooperatively aborted mid-prove, or shed at dequeue when it
    expired while queued).  Deterministic with respect to the deadline:
    never retried."""


class JournalError(ServiceError):
    """Base class for durable job-journal failures
    (:mod:`repro.service.journal`)."""


class JournalCorrupt(JournalError):
    """The journal contains a damaged record *before* its final frame.
    A torn final record (the normal signature of a crash mid-append) is
    tolerated silently; anything earlier means the file was tampered
    with or the storage layer lost bytes, and replaying it could
    resurrect the wrong job set."""

    def __init__(self, message: str, offset: int = -1):
        super().__init__(message)
        self.offset = offset


class RecoveryMismatch(ServiceError):
    """A replayed job completed with proof bytes that do not match the
    result digest the journal recorded before the crash.  With a pinned
    ``rng_seed`` proofs are byte-deterministic, so a mismatch means the
    database, parameters, or prover changed under the journal."""


__all__ = [
    "ReproError",
    "BatchInversionError",
    "ConfigError",
    "StateError",
    "WireFormatError",
    "VerificationFailure",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceClosed",
    "JobNotFound",
    "JobFailed",
    "JobTimeout",
    "DeadlineExceeded",
    "JournalError",
    "JournalCorrupt",
    "RecoveryMismatch",
]
