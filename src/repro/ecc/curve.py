"""Short-Weierstrass curve arithmetic for the Pasta curves.

Points are held in Jacobian projective coordinates ``(X, Y, Z)`` where
the affine point is ``(X/Z^2, Y/Z^3)`` and the identity has ``Z = 0``.
This avoids a field inversion per group operation; affine coordinates
are recovered only at serialization boundaries (transcripts, proofs).

Nothing here is constant-time -- this reproduction targets protocol
correctness and performance *shape*, not side-channel hardening (the
paper's artifact inherits hardening from the Rust `halo2` crate).
"""

from __future__ import annotations

import hashlib

from repro.algebra.field import (
    BASE_FIELD,
    SCALAR_FIELD,
    Field,
    PALLAS_BASE_MODULUS,
    PALLAS_SCALAR_MODULUS,
    montgomery_batch_inv,
)


class Curve:
    """Parameters of a short-Weierstrass curve ``y^2 = x^3 + b`` with
    prime order, plus its generator."""

    __slots__ = ("name", "field", "scalar_field", "b", "generator")

    def __init__(self, name: str, field: Field, scalar_field: Field, b: int,
                 gx: int, gy: int):
        self.name = name
        self.field = field
        self.scalar_field = scalar_field
        self.b = b % field.p
        self.generator = Point(self, gx, gy)
        if not self.generator.is_on_curve():
            raise ValueError(f"generator not on curve {name}")

    def identity(self) -> "Point":
        return Point._identity(self)

    def point(self, x: int, y: int) -> "Point":
        pt = Point(self, x, y)
        if not pt.is_on_curve():
            raise ValueError(f"({x}, {y}) is not on {self.name}")
        return pt

    def hash_to_curve(self, domain: bytes, message: bytes) -> "Point":
        """Derive a curve point with unknown discrete log from public
        bytes (try-and-increment).

        This is how the commitment bases are derived: no trusted setup,
        only publicly verifiable randomness (paper section 3.2).
        """
        p = self.field.p
        counter = 0
        while True:
            digest = hashlib.blake2b(
                domain + message + counter.to_bytes(4, "little"),
                digest_size=64,
            ).digest()
            x = int.from_bytes(digest, "little") % p
            rhs = (x * x % p * x + self.b) % p
            y = self.field.sqrt(rhs)
            if y is not None:
                # Deterministic sign choice keyed to the digest parity.
                if (digest[0] & 1) != (y & 1):
                    y = p - y
                return Point(self, x, y)
            counter += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Curve({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Curve) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Curve", self.name))


class Point:
    """A point on a :class:`Curve` in Jacobian coordinates."""

    __slots__ = ("curve", "x", "y", "z")

    def __init__(self, curve: Curve, x: int, y: int, z: int = 1):
        self.curve = curve
        self.x = x % curve.field.p
        self.y = y % curve.field.p
        self.z = z % curve.field.p

    @classmethod
    def _identity(cls, curve: Curve) -> "Point":
        return cls(curve, 1, 1, 0)

    def is_identity(self) -> bool:
        return self.z == 0

    def is_on_curve(self) -> bool:
        if self.z == 0:
            return True
        p = self.curve.field.p
        x, y, z = self.x, self.y, self.z
        # y^2 = x^3 + b z^6 in Jacobian form.
        z2 = z * z % p
        z6 = z2 * z2 % p * z2 % p
        return (y * y - x * x % p * x - self.curve.b * z6) % p == 0

    # -- group law ---------------------------------------------------------

    def double(self) -> "Point":
        if self.z == 0 or self.y == 0:
            return Point._identity(self.curve)
        p = self.curve.field.p
        x, y, z = self.x, self.y, self.z
        a = x * x % p
        b = y * y % p
        c = b * b % p
        t = (x + b) % p
        d = (2 * (t * t % p - a - c)) % p
        e = 3 * a % p
        f = e * e % p
        x3 = (f - 2 * d) % p
        y3 = (e * (d - x3) - 8 * c) % p
        z3 = 2 * y * z % p
        return Point(self.curve, x3, y3, z3)

    def __add__(self, other: "Point") -> "Point":
        if self.curve is not other.curve and self.curve != other.curve:
            raise ValueError("points on different curves")
        if self.z == 0:
            return other
        if other.z == 0:
            return self
        p = self.curve.field.p
        x1, y1, z1 = self.x, self.y, self.z
        x2, y2, z2 = other.x, other.y, other.z
        z1z1 = z1 * z1 % p
        z2z2 = z2 * z2 % p
        u1 = x1 * z2z2 % p
        u2 = x2 * z1z1 % p
        s1 = y1 * z2 % p * z2z2 % p
        s2 = y2 * z1 % p * z1z1 % p
        if u1 == u2:
            if s1 != s2:
                return Point._identity(self.curve)
            return self.double()
        h = (u2 - u1) % p
        i = (2 * h) % p
        i = i * i % p
        j = h * i % p
        r = 2 * (s2 - s1) % p
        v = u1 * i % p
        x3 = (r * r - j - 2 * v) % p
        y3 = (r * (v - x3) - 2 * s1 * j) % p
        z3 = ((z1 + z2) % p) ** 2 % p
        z3 = (z3 - z1z1 - z2z2) % p * h % p
        return Point(self.curve, x3, y3, z3)

    def __neg__(self) -> "Point":
        if self.z == 0:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.field.p, self.z)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        """Scalar multiplication (left-to-right, 4-bit windows).

        Full-width scalars take the GLV fast path when the kernel layer
        is enabled: two interleaved ~128-bit halves against the curve's
        cube-root endomorphism (same group element either way).
        """
        n = scalar % self.curve.scalar_field.p
        if n == 0 or self.z == 0:
            return Point._identity(self.curve)
        if n.bit_length() > 128:
            from repro import kernels

            if kernels.fastpath_enabled():
                from repro.ecc import glv

                endo = glv.curve_endo(self.curve)
                if endo is not None:
                    return glv.endo_mul(self, n, endo)
        # Window precomputation sized to the scalar: table[w] = w * P.
        # A scalar that fits one 4-bit window only ever indexes up to
        # its own value; full-width scalars use all 15 entries.
        bits = n.bit_length()
        size = n if bits <= 4 else 15
        table = [self]
        for _ in range(size - 1):
            table.append(table[-1] + self)
        acc = Point._identity(self.curve)
        top = ((bits + 3) // 4) * 4 - 4
        for shift in range(top, -1, -4):
            if not acc.is_identity():
                acc = acc.double().double().double().double()
            window = (n >> shift) & 0xF
            if window:
                acc = acc + table[window - 1]
        return acc

    __rmul__ = __mul__

    # -- conversions -------------------------------------------------------

    def to_affine(self) -> tuple[int, int]:
        """Affine coordinates; the identity maps to ``(0, 0)`` (which is
        never a valid curve point for b != 0)."""
        if self.z == 0:
            return (0, 0)
        if self.z == 1:
            return (self.x, self.y)
        p = self.curve.field.p
        # Raw modexp, not Field.inv: normalization happens at
        # serialization boundaries whose count depends on the execution
        # backend (worker tasks re-serialize), so it must not feed the
        # field.inversions workload counter.
        z_inv = pow(self.z, p - 2, p)
        z_inv2 = z_inv * z_inv % p
        return (self.x * z_inv2 % p, self.y * z_inv2 % p * z_inv % p)

    def to_bytes(self) -> bytes:
        """Uncompressed little-endian encoding for transcript absorption."""
        x, y = self.to_affine()
        size = self.curve.field._byte_length
        return x.to_bytes(size, "little") + y.to_bytes(size, "little")

    @classmethod
    def from_bytes(cls, curve: Curve, data: bytes) -> "Point":
        """Strict inverse of :meth:`to_bytes`.

        Rejects bad lengths, non-canonical coordinates (``>= p``, which
        would silently re-encode to different bytes), and off-curve
        points; the ``(0, 0)`` encoding is the identity (never a valid
        affine point when ``b != 0``).
        """
        size = curve.field._byte_length
        if len(data) != 2 * size:
            raise ValueError("bad point encoding length")
        x = int.from_bytes(data[:size], "little")
        y = int.from_bytes(data[size:], "little")
        if x >= curve.field.p or y >= curve.field.p:
            raise ValueError("non-canonical point coordinates")
        if x == 0 and y == 0:
            return cls._identity(curve)
        return curve.point(x, y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve != other.curve:
            return False
        if self.z == 0 or other.z == 0:
            return self.z == other.z
        p = self.curve.field.p
        # Cross-multiplied comparison avoids inversions.
        z1z1 = self.z * self.z % p
        z2z2 = other.z * other.z % p
        if (self.x * z2z2 - other.x * z1z1) % p:
            return False
        return (self.y * z2z2 % p * other.z - other.y * z1z1 % p * self.z) % p == 0

    def __hash__(self) -> int:
        return hash((self.curve.name,) + self.to_affine())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.z == 0:
            return f"Point({self.curve.name}, identity)"
        x, y = self.to_affine()
        return f"Point({self.curve.name}, x={hex(x)[:12]}..., y={hex(y)[:12]}...)"


def batch_to_affine(points: list[Point]) -> list[tuple[int, int]]:
    """Normalize many Jacobian points with one field inversion."""
    if not points:
        return []
    field = points[0].curve.field
    p = field.p
    zs = [pt.z if pt.z else 1 for pt in points]
    # Uncounted (see Point.to_affine): serialization bookkeeping, not a
    # workload inversion.
    invs = montgomery_batch_inv(zs, p)
    out = []
    for pt, z_inv in zip(points, invs):
        if pt.z == 0:
            out.append((0, 0))
        else:
            z_inv2 = z_inv * z_inv % p
            out.append((pt.x * z_inv2 % p, pt.y * z_inv2 % p * z_inv % p))
    return out


#: Pallas: order(PALLAS) == Fq modulus.  Generator (-1, 2).
PALLAS = Curve(
    "pallas",
    BASE_FIELD,
    SCALAR_FIELD,
    b=5,
    gx=PALLAS_BASE_MODULUS - 1,
    gy=2,
)

#: Vesta: the cycle partner (order == Fp modulus).  Generator (-1, 2).
VESTA = Curve(
    "vesta",
    SCALAR_FIELD,
    BASE_FIELD,
    b=5,
    gx=PALLAS_SCALAR_MODULUS - 1,
    gy=2,
)

#: Registry used to ship points across process boundaries by name
#: (worker tasks reattach affine coordinates to the curve singleton).
CURVES: dict[str, Curve] = {PALLAS.name: PALLAS, VESTA.name: VESTA}


def curve_by_name(name: str) -> Curve:
    try:
        return CURVES[name]
    except KeyError:
        raise ValueError(f"unknown curve {name!r}") from None


def points_to_affine_tuples(points: list[Point]) -> list[tuple[int, int]]:
    """Plain-data form of many points for worker-task arguments (the
    identity maps to ``(0, 0)``, mirroring :meth:`Point.to_affine`)."""
    return batch_to_affine(points)


def points_from_affine_tuples(
    curve: Curve, coords: list[tuple[int, int]]
) -> list[Point]:
    """Inverse of :func:`points_to_affine_tuples` (no on-curve check:
    inputs come from our own serialization)."""
    identity = Point._identity(curve)
    return [
        identity if x == 0 and y == 0 else Point(curve, x, y)
        for x, y in coords
    ]
