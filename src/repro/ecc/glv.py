"""GLV endomorphism scalar decomposition for the Pasta curves.

Curves ``y^2 = x^3 + b`` over fields with ``p = 1 mod 3`` carry the
cube-root endomorphism ``phi(x, y) = (zeta_p * x, y)`` where ``zeta_p``
is a primitive cube root of unity in the base field; on the group,
``phi`` acts as multiplication by a cube root of unity ``lambda`` in
the scalar field.  Writing a 255-bit scalar ``k = k1 + lambda * k2``
with ``|k1|, |k2| ~ 2^128`` (closest-vector rounding against a short
lattice basis, GLV 2001) turns one full-width scalar multiplication
into two half-width ones sharing a doubling chain -- and halves the
window count of every Pippenger MSM.

Everything here is derived, not hard-coded: the zeta/lambda pairing is
found by testing ``phi(G) == lambda * G`` on the curve generator, and
the short basis comes from the extended Euclidean algorithm on
``(n, lambda)``.  Curves without the endomorphism (``p != 1 mod 3``)
get ``None`` and callers fall back to plain scalars.
"""

from __future__ import annotations

from math import isqrt

from repro import telemetry


class Endo:
    """Derived endomorphism data for one curve."""

    __slots__ = ("zeta", "lam", "a1", "b1", "a2", "b2", "det")

    def __init__(self, zeta: int, lam: int, v1: tuple[int, int], v2: tuple[int, int]):
        self.zeta = zeta
        self.lam = lam
        self.a1, self.b1 = v1
        self.a2, self.b2 = v2
        self.det = self.a1 * self.b2 - self.a2 * self.b1


#: Per-curve cache; None records "no endomorphism" (and doubles as the
#: in-progress sentinel so the derivation's own scalar multiplications
#: do not recurse back into the GLV path).
_ENDOS: dict[str, "Endo | None"] = {}


def _short_basis(n: int, lam: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """Two short lattice vectors ``(a, b)`` with ``a + b*lam = 0 mod n``
    via the extended Euclidean algorithm (stop at ``r < sqrt(n)``)."""
    bound = isqrt(n)
    r0, r1 = n, lam % n
    t0, t1 = 0, 1
    while r1 >= bound:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    v1 = (r1, -t1)
    # Second vector: the shorter of the neighbours of v1 in the
    # remainder sequence (both satisfy the lattice relation).
    q = r0 // r1
    r2, t2 = r0 - q * r1, t0 - q * t1
    if r0 * r0 + t0 * t0 <= r2 * r2 + t2 * t2:
        v2 = (r0, -t0)
    else:
        v2 = (r2, -t2)
    return v1, v2


def curve_endo(curve) -> "Endo | None":
    """The curve's cube-root endomorphism, or ``None`` if it has none.

    Derived once per curve and cached: zeta/lambda candidates are the
    two primitive cube roots of unity in the base/scalar field, and the
    matching pair is confirmed against the generator.
    """
    cached = _ENDOS.get(curve.name, _ENDOS)
    if cached is not _ENDOS:
        return cached
    # Sentinel first: the lambda*G checks below run plain windowed
    # scalar multiplication instead of recursing into GLV.
    _ENDOS[curve.name] = None
    p = curve.field.p
    n = curve.scalar_field.p
    if p % 3 != 1 or n % 3 != 1:
        return None
    z = pow(curve.field.multiplicative_generator, (p - 1) // 3, p)
    l = pow(curve.scalar_field.multiplicative_generator, (n - 1) // 3, n)
    g = curve.generator
    gx, gy = g.to_affine()
    endo = None
    for zeta in (z, z * z % p):
        phi_g = type(g)(curve, zeta * gx % p, gy)
        for lam in (l, l * l % n):
            if g * lam == phi_g:
                v1, v2 = _short_basis(n, lam)
                endo = Endo(zeta, lam, v1, v2)
                break
        if endo is not None:
            break
    _ENDOS[curve.name] = endo
    return endo


def _round_div(a: int, b: int) -> int:
    """Nearest-integer division (b > 0)."""
    return (a + (b >> 1)) // b


def decompose(endo: Endo, k: int) -> tuple[int, int]:
    """Split ``k`` into ``(k1, k2)`` with ``k1 + lam*k2 = k mod n`` and
    both halves around 128 bits (possibly negative)."""
    det = endo.det
    if det < 0:
        c1 = _round_div(-endo.b2 * k, -det)
        c2 = _round_div(endo.b1 * k, -det)
    else:
        c1 = _round_div(endo.b2 * k, det)
        c2 = _round_div(-endo.b1 * k, det)
    k1 = k - c1 * endo.a1 - c2 * endo.a2
    k2 = -c1 * endo.b1 - c2 * endo.b2
    return k1, k2


def split_entries(
    curve, coords: list[tuple[int, int]], scalars: list[int]
) -> list[tuple[int, int, int]]:
    """GLV-split (affine point, scalar) pairs into half-width entries.

    Returns ``(x, y, s)`` triples with ``s > 0`` of roughly half the
    scalar width: each input contributes ``(P, k1)`` and ``(phi(P), k2)``
    with negative halves folded into the point's sign.  With no
    endomorphism the input pairs are returned unchanged.
    """
    endo = curve_endo(curve)
    p = curve.field.p
    if endo is None:
        return [(x, y, s) for (x, y), s in zip(coords, scalars)]
    telemetry.incr("msm.glv_splits", len(scalars))
    entries: list[tuple[int, int, int]] = []
    zeta = endo.zeta
    for (x, y), s in zip(coords, scalars):
        k1, k2 = decompose(endo, s)
        if k1:
            entries.append((x, y if k1 > 0 else p - y, abs(k1)))
        if k2:
            entries.append((zeta * x % p, y if k2 > 0 else p - y, abs(k2)))
    return entries


def endo_mul(pt, n: int, endo: Endo):
    """GLV scalar multiplication: interleaved 4-bit windows over the
    two half-width halves of ``n`` (same group element as ``pt * n``)."""
    curve = pt.curve
    p = curve.field.p
    k1, k2 = decompose(endo, n)
    telemetry.incr("msm.glv_splits")
    x, y = pt.to_affine()
    point = type(pt)
    a1, a2 = abs(k1), abs(k2)
    # Window table for the k1 half; the k2 table is its endomorphism
    # image (zeta * x per entry), with the relative sign folded in.
    t1 = [point(curve, x, y if k1 >= 0 else p - y)]
    size = min(15, max(a1, a2, 1))
    base = t1[0]
    for _ in range(size - 1):
        t1.append(t1[-1] + base)
    flip = (k1 >= 0) != (k2 >= 0)
    t2 = []
    for q in t1:
        # phi on Jacobian coords: X' = zeta * X (affine x scales by
        # zeta, y and z are untouched); flip negates for the relative
        # sign between the two halves.
        t2.append(
            point(curve, endo.zeta * q.x % p, (p - q.y) if flip else q.y, q.z)
        )
    acc = curve.identity()
    top = ((max(a1.bit_length(), a2.bit_length(), 1) + 3) // 4) * 4 - 4
    for shift in range(top, -1, -4):
        if not acc.is_identity():
            acc = acc.double().double().double().double()
        w1 = (a1 >> shift) & 0xF
        if w1:
            acc = acc + t1[w1 - 1]
        w2 = (a2 >> shift) & 0xF
        if w2:
            acc = acc + t2[w2 - 1]
    return acc
