"""Fixed-base MSM over precomputed window tables.

Every Pedersen/IPA commitment in a proving session is an MSM against
the *same* bases: the public-parameter generators ``G_i`` plus the
blinding base ``W`` (and ``U`` for the inner-product rounds).  Those
bases never change, so the doubling chains that dominate a generic
Pippenger run can be paid once: for window width ``c`` we precompute
the shifted bases ``B[i][j] = 2^(j*c) * G_i`` for every window ``j``.

A commitment then needs **zero doublings**: each scalar's base-``2^c``
digits index straight into one shared bucket set (all shifted bases
are plain affine points, so windows do not need separate buckets), the
buckets are reduced with one batch-affine accumulation
(:func:`~repro.ecc.batch_affine.sum_affine_lists`), and a single
running-sum collapse finishes the job.

Tables are keyed by the :meth:`~repro.commit.params.PublicParams.fingerprint`
of the parameter set.  A process-local registry serves repeat lookups
(forked workers inherit it for free); optionally an
:class:`~repro.cache.ArtifactCache` attached via :func:`configure_cache`
persists tables across runs next to the cached parameters themselves.
The result is always the same group element the generic
:func:`~repro.ecc.msm.msm` would produce -- only the schedule differs.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Sequence

from repro import telemetry
from repro.cache import cache_key
from repro.ecc.batch_affine import batch_double, sum_affine_lists
from repro.ecc.curve import Curve, Point, curve_by_name, points_to_affine_tuples
from repro.ecc.msm import collapse_buckets

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import ArtifactCache
    from repro.commit.params import PublicParams

#: Window width for the shifted-base tables.  Memory per base is
#: ``ceil(255 / c)`` affine points; c = 8 keeps that at 32 points
#: (~2 KiB) per base while the shared bucket set stays small (255
#: buckets) next to the number of digit insertions.
FIXED_BASE_WINDOW = 8


class FixedBaseTables:
    """Shifted window multiples of a fixed base vector.

    ``tables[i][j]`` is the affine ``(x, y)`` of ``2^(j*c) * base_i``
    (``None`` when the multiple is the identity).  Plain picklable data
    so tables travel through the artifact cache and fork boundaries.
    """

    __slots__ = ("curve_name", "c", "windows", "tables")

    def __init__(
        self,
        curve_name: str,
        c: int,
        windows: int,
        tables: list,
    ):
        self.curve_name = curve_name
        self.c = c
        self.windows = windows
        self.tables = tables

    def __len__(self) -> int:
        return len(self.tables)

    def __getstate__(self):
        return (self.curve_name, self.c, self.windows, self.tables)

    def __setstate__(self, state):
        self.curve_name, self.c, self.windows, self.tables = state


def build_tables(
    curve: Curve, points: Sequence[Point], c: int = FIXED_BASE_WINDOW
) -> FixedBaseTables:
    """Precompute shifted window bases for ``points``.

    Pure doublings: the whole base vector is doubled ``c`` times per
    window with elementwise batch-affine passes (one shared inversion
    each), so building costs ~255 batch passes regardless of how many
    bases there are.
    """
    if c < 1:
        raise ValueError("window width must be positive")
    p = curve.field.p
    num_bits = curve.scalar_field.p.bit_length()
    windows = (num_bits + c - 1) // c
    coords = points_to_affine_tuples(list(points))
    vec = [None if xy == (0, 0) else xy for xy in coords]
    shifted = [list(vec)]
    for _ in range(windows - 1):
        for _ in range(c):
            vec = batch_double(p, vec)
        shifted.append(list(vec))
    tables = [
        [shifted[j][i] for j in range(windows)] for i in range(len(coords))
    ]
    return FixedBaseTables(curve.name, c, windows, tables)


def fixed_base_msm(
    tables: FixedBaseTables,
    scalars: Sequence[int],
    indices: Sequence[int] | None = None,
) -> Point:
    """``sum_i scalars[i] * base[indices[i]]`` against precomputed tables.

    ``indices`` defaults to ``range(len(scalars))``.  Same group element
    as the generic MSM over the corresponding bases; no doubling chain,
    one shared bucket set across every window of every scalar.
    """
    curve = curve_by_name(tables.curve_name)
    order = curve.scalar_field.p
    c = tables.c
    mask = (1 << c) - 1
    rows = tables.tables
    buckets: dict[int, list[tuple[int, int]]] = {}
    live = 0
    if indices is None:
        indices = range(len(scalars))
    for idx, s in zip(indices, scalars):
        s %= order
        if not s:
            continue
        row = rows[idx]
        live += 1
        w = 0
        while s:
            d = s & mask
            if d:
                pt = row[w]
                if pt is not None:
                    lst = buckets.get(d)
                    if lst is None:
                        buckets[d] = [pt]
                    else:
                        lst.append(pt)
            s >>= c
            w += 1
    telemetry.incr("msm.fixed_base_calls")
    telemetry.incr("msm.fixed_base_points", live)
    if not buckets:
        return curve.identity()
    rounds = sum_affine_lists(curve.field.p, list(buckets.values()))
    telemetry.incr("msm.batch_affine_rounds", rounds)
    return collapse_buckets(
        curve,
        {d: Point(curve, *pts[0]) for d, pts in buckets.items() if pts},
    )


# -- per-parameter-set table registry ----------------------------------------

#: Process-local tables keyed by (params fingerprint, window width).
#: Forked workers inherit whatever the parent built before the pool
#: started; later misses rebuild (or disk-load) per worker.
_REGISTRY: dict[tuple[str, int], FixedBaseTables] = {}

#: Optional artifact cache for cross-run persistence (see
#: :func:`configure_cache`; sessions attach their cache here).
_CACHE: "ArtifactCache | None" = None


def configure_cache(cache: "ArtifactCache | None") -> None:
    """Attach (or detach, with ``None``) the on-disk artifact cache used
    to persist tables across runs."""
    global _CACHE
    _CACHE = cache


def clear_registry() -> None:
    """Drop every in-process table (tests)."""
    _REGISTRY.clear()


def _disk_key(fingerprint: str, c: int) -> str:
    return cache_key("fixedbase", fingerprint, c)


def lookup_tables(fingerprint: str, c: int = FIXED_BASE_WINDOW) -> FixedBaseTables | None:
    """Registry (then disk) lookup only -- never builds.  Worker tasks
    use this: on a miss they fall back to the generic MSM."""
    key = (fingerprint, c)
    tables = _REGISTRY.get(key)
    if tables is not None:
        telemetry.incr("msm.fixed_base_table_hits")
        return tables
    if _CACHE is not None:
        raw = _CACHE.get_bytes(_disk_key(fingerprint, c))
        if raw is not None:
            try:
                tables = pickle.loads(raw)
            except Exception:
                tables = None
            if isinstance(tables, FixedBaseTables):
                _REGISTRY[key] = tables
                telemetry.incr("msm.fixed_base_table_hits")
                return tables
    return None


def tables_for_params(
    params: "PublicParams", c: int = FIXED_BASE_WINDOW
) -> FixedBaseTables:
    """The (cached) tables for ``params``'s bases ``g + [w, u]``.

    Base index ``i < n`` is ``g[i]``; index ``n`` is the blinding base
    ``w`` and ``n + 1`` is ``u``.  Built on first use per parameter
    fingerprint, registered in-process, and persisted through the
    attached artifact cache when one is configured.
    """
    fingerprint = params.fingerprint()
    tables = lookup_tables(fingerprint, c)
    if tables is not None:
        return tables
    bases = list(params.g) + [params.w, params.u]
    tables = build_tables(params.curve, bases, c)
    _REGISTRY[(fingerprint, c)] = tables
    telemetry.incr("msm.fixed_base_table_builds")
    if _CACHE is not None:
        _CACHE.put_bytes(
            _disk_key(fingerprint, c),
            pickle.dumps(tables, protocol=pickle.HIGHEST_PROTOCOL),
        )
    return tables
