"""Pippenger multi-scalar multiplication.

The IPA commitment cost is dominated by MSMs ``sum_i s_i * G_i``.
Pippenger's bucket method computes an n-point MSM in roughly
``n * 255 / c + 2^c`` group additions for window size ``c``, versus
``n * 255`` for naive per-point scalar multiplication.
"""

from __future__ import annotations

from typing import Sequence

from repro.ecc.curve import Curve, Point


def _window_size(n: int) -> int:
    """Heuristic window size ~ log2(n) (clamped), the standard choice."""
    if n < 4:
        return 1
    if n < 32:
        return 3
    c = n.bit_length() - 1
    return min(c, 16)


def msm(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Compute ``sum_i scalars[i] * points[i]``.

    All points must share a curve; an empty input raises ValueError since
    the curve could not be inferred (use ``curve.identity()`` directly).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    curve: Curve = points[0].curve
    order = curve.scalar_field.p
    pairs = [
        (pt, s % order)
        for pt, s in zip(points, scalars)
        if s % order != 0 and not pt.is_identity()
    ]
    if not pairs:
        return curve.identity()
    if len(pairs) == 1:
        pt, s = pairs[0]
        return pt * s

    c = _window_size(len(pairs))
    num_bits = order.bit_length()
    num_windows = (num_bits + c - 1) // c
    mask = (1 << c) - 1

    window_sums: list[Point] = []
    for w in range(num_windows):
        shift = w * c
        buckets: list[Point | None] = [None] * mask
        for pt, s in pairs:
            idx = (s >> shift) & mask
            if idx:
                existing = buckets[idx - 1]
                buckets[idx - 1] = pt if existing is None else existing + pt
        # Running-sum trick: sum_k k * bucket[k] via two passes.
        running = curve.identity()
        total = curve.identity()
        for b in reversed(buckets):
            if b is not None:
                running = running + b
            total = total + running
        window_sums.append(total)

    acc = window_sums[-1]
    for total in reversed(window_sums[:-1]):
        for _ in range(c):
            acc = acc.double()
        acc = acc + total
    return acc


def msm_naive(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Reference implementation used in tests to validate :func:`msm`."""
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    acc = points[0].curve.identity()
    for pt, s in zip(points, scalars):
        acc = acc + pt * s
    return acc
