"""Pippenger multi-scalar multiplication.

The IPA commitment cost is dominated by MSMs ``sum_i s_i * G_i``.
Pippenger's bucket method computes an n-point MSM in roughly
``n * 255 / c + 2^c`` group additions for window size ``c``, versus
``n * 255`` for naive per-point scalar multiplication.

Two independent kernel optimizations ride on top (both produce the
same group elements as the reference path, see ``repro.kernels``):

- **GLV splitting** (:mod:`repro.ecc.glv`): every scalar is decomposed
  against the curve's cube-root endomorphism into two ~128-bit halves,
  halving the number of bucket windows and the doubling chain.
- **Batch-affine buckets** (:mod:`repro.ecc.batch_affine`): bucket
  accumulation runs on affine coordinates, resolving each round of
  pairwise additions with one shared Montgomery batch inversion
  instead of one ~16-multiplication Jacobian add per pair.

The bucket windows are independent, so with workers configured in
:mod:`repro.parallel` they are computed across processes and combined
in the usual doubling chain; the result is bit-identical to the serial
path because only window *ownership* moves, never the arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels, parallel, telemetry
from repro.ecc import glv
from repro.ecc.batch_affine import linear_combination, sum_affine_lists
from repro.ecc.curve import (
    Curve,
    Point,
    curve_by_name,
    points_from_affine_tuples,
    points_to_affine_tuples,
)

#: Below this many nonzero pairs the fork/pickle overhead of farming
#: out windows exceeds the bucket work itself.
PARALLEL_THRESHOLD = 64

#: Below this many nonzero pairs the fast path sums per-point GLV
#: scalar multiplications directly -- bucket machinery only pays off
#: once the shared inversions amortize.
_TINY_MSM = 8


def _window_size(n: int) -> int:
    """Heuristic window size ~ log2(n) (clamped), the standard choice."""
    if n < 4:
        return 1
    if n < 32:
        return 3
    c = n.bit_length() - 1
    return min(c, 16)


def _fast_window_size(n: int) -> int:
    """Window size for the batch-affine path: smaller than the classic
    ``log2(n)`` so buckets collect several points each.

    The classic choice makes buckets singletons, which starves the
    shared inversion: all the work lands in the per-bucket Jacobian
    collapse.  Batched affine adds cost ~4 multiplications against ~16
    for the collapse's Jacobian ops, so the optimum shifts toward more
    collisions per bucket (~2^c = n/16) and fewer live buckets.
    """
    if n < 64:
        return 3
    return max(3, min(n.bit_length() - 5, 16))


def _window_sum(
    curve: Curve,
    pairs: Sequence[tuple[Point, int]],
    c: int,
    w: int,
) -> Point:
    """The bucketed sum of window ``w`` (the reference Jacobian inner
    loop, kept as the kernel baseline)."""
    mask = (1 << c) - 1
    shift = w * c
    buckets: list[Point | None] = [None] * mask
    for pt, s in pairs:
        idx = (s >> shift) & mask
        if idx:
            existing = buckets[idx - 1]
            buckets[idx - 1] = pt if existing is None else existing + pt
    # Running-sum trick: sum_k k * bucket[k] via two passes.
    running = curve.identity()
    total = curve.identity()
    for b in reversed(buckets):
        if b is not None:
            running = running + b
        total = total + running
    return total


def _window_sums_task(
    curve_name: str,
    coords: list[tuple[int, int]],
    scalars: list[int],
    c: int,
    w_lo: int,
    w_hi: int,
) -> list[tuple[int, int]]:
    """Worker task: window sums for windows ``[w_lo, w_hi)``.

    Top-level (picklable) and pure: points travel as affine tuples and
    come back the same way.
    """
    curve = curve_by_name(curve_name)
    points = points_from_affine_tuples(curve, coords)
    pairs = list(zip(points, scalars))
    return points_to_affine_tuples(
        [_window_sum(curve, pairs, c, w) for w in range(w_lo, w_hi)]
    )


def _all_window_sums(
    curve: Curve,
    pairs: list[tuple[Point, int]],
    c: int,
    num_windows: int,
) -> list[Point]:
    """Every window sum, farmed out across workers when configured."""
    if (
        not parallel.is_parallel()
        or len(pairs) < PARALLEL_THRESHOLD
        or num_windows < 2
    ):
        return [_window_sum(curve, pairs, c, w) for w in range(num_windows)]
    coords = points_to_affine_tuples([pt for pt, _ in pairs])
    scalars = [s for _, s in pairs]
    tasks = [
        (curve.name, coords, scalars, c, lo, hi)
        for lo, hi in parallel.chunk_bounds(num_windows, parallel.workers())
    ]
    window_sums: list[Point] = []
    for chunk in parallel.pmap(_window_sums_task, tasks):
        window_sums.extend(points_from_affine_tuples(curve, chunk))
    return window_sums


# -- batch-affine fast path ---------------------------------------------------


def collapse_buckets(curve: Curve, buckets: dict[int, Point]) -> Point:
    """``sum_k k * buckets[k]`` by descending running sums, multiplying
    across empty runs (``total += gap * running``) instead of visiting
    every empty slot."""
    total = curve.identity()
    running = curve.identity()
    prev = 0
    for idx in sorted(buckets, reverse=True):
        if prev:
            total = total + running * (prev - idx)
        running = running + buckets[idx]
        prev = idx
    if prev:
        total = total + running * prev
    return total


def _affine_window_sums(
    curve: Curve,
    entries: list[tuple[int, int, int]],
    c: int,
    w_lo: int,
    w_hi: int,
) -> list[Point]:
    """Window sums ``[w_lo, w_hi)`` over GLV-split affine entries.

    All windows of the range share one batch-affine accumulation, so
    the per-round inversion amortizes across every bucket of every
    window at once.
    """
    p = curve.field.p
    mask = (1 << c) - 1
    per_window: list[dict[int, list[tuple[int, int]]]] = [
        {} for _ in range(w_lo, w_hi)
    ]
    for x, y, s in entries:
        pt = (x, y)
        for w, buckets in enumerate(per_window, start=w_lo):
            idx = (s >> (w * c)) & mask
            if idx:
                buckets.setdefault(idx, []).append(pt)
    all_lists = [pts for buckets in per_window for pts in buckets.values()]
    rounds = sum_affine_lists(p, all_lists)
    telemetry.incr("msm.batch_affine_rounds", rounds)
    return [
        collapse_buckets(
            curve,
            {
                idx: Point(curve, *pts[0])
                for idx, pts in buckets.items()
                if pts
            },
        )
        for buckets in per_window
    ]


def _affine_window_sums_task(
    curve_name: str,
    entries: list[tuple[int, int, int]],
    c: int,
    w_lo: int,
    w_hi: int,
) -> list[tuple[int, int]]:
    """Worker task: batch-affine window sums for a window range."""
    curve = curve_by_name(curve_name)
    return points_to_affine_tuples(
        _affine_window_sums(curve, entries, c, w_lo, w_hi)
    )


def _msm_fast(curve: Curve, pairs: list[tuple[Point, int]]) -> Point:
    """Batch-affine Pippenger over GLV-split half-width scalars."""
    if len(pairs) < _TINY_MSM:
        acc = curve.identity()
        for pt, s in pairs:
            acc = acc + pt * s
        return acc
    coords = points_to_affine_tuples([pt for pt, _ in pairs])
    entries = glv.split_entries(curve, coords, [s for _, s in pairs])
    if not entries:
        return curve.identity()
    c = _fast_window_size(len(entries))
    num_bits = max(s.bit_length() for _, _, s in entries)
    num_windows = (num_bits + c - 1) // c
    if (
        not parallel.is_parallel()
        or len(pairs) < PARALLEL_THRESHOLD
        or num_windows < 2
    ):
        window_sums = _affine_window_sums(curve, entries, c, 0, num_windows)
    else:
        tasks = [
            (curve.name, entries, c, lo, hi)
            for lo, hi in parallel.chunk_bounds(num_windows, parallel.workers())
        ]
        window_sums = []
        for chunk in parallel.pmap(_affine_window_sums_task, tasks):
            window_sums.extend(points_from_affine_tuples(curve, chunk))
    acc = window_sums[-1]
    for total in reversed(window_sums[:-1]):
        for _ in range(c):
            acc = acc.double()
        acc = acc + total
    return acc


#: Base folds shorter than this run the per-element reference path --
#: the vectorized schedule needs enough elements to amortize its
#: digit-table construction.
_FOLD_MIN = 32


def fold_bases(
    g_lo: Sequence[Point],
    g_hi: Sequence[Point],
    u_inv: int,
    u: int,
) -> list[Point]:
    """The IPA base fold ``[u_inv * lo + u * hi for lo, hi in zip(..)]``.

    The reference path pays a two-point MSM (two full scalar
    multiplications) per element.  Since *every* element shares the same
    two scalars, the fast path runs one vectorized double-and-add over
    the whole vector -- each step a single batch-affine pass with one
    shared inversion -- after GLV-splitting both scalars to half width.
    Same group elements either way.
    """
    curve = g_lo[0].curve
    if not kernels.fastpath_enabled() or len(g_lo) < _FOLD_MIN:
        return [msm([lo, hi], [u_inv, u]) for lo, hi in zip(g_lo, g_hi)]
    p = curve.field.p
    order = curve.scalar_field.p
    endo = glv.curve_endo(curve)
    streams: list[tuple[list, int]] = []
    for pts, s in ((g_lo, u_inv % order), (g_hi, u % order)):
        coords = points_to_affine_tuples(list(pts))
        vec = [None if xy == (0, 0) else xy for xy in coords]
        if endo is None:
            if s:
                streams.append((vec, s))
            continue
        k1, k2 = glv.decompose(endo, s)
        if k1:
            v1 = (
                vec
                if k1 > 0
                else [None if q is None else (q[0], p - q[1]) for q in vec]
            )
            streams.append((v1, k1 if k1 > 0 else -k1))
        if k2:
            zeta = endo.zeta
            v2 = [
                None
                if q is None
                else (zeta * q[0] % p, q[1] if k2 > 0 else p - q[1])
                for q in vec
            ]
            streams.append((v2, k2 if k2 > 0 else -k2))
    if endo is not None:
        telemetry.incr("msm.glv_splits", 2)
    if not streams:
        identity = curve.identity()
        return [identity for _ in g_lo]
    acc = linear_combination(p, streams, width=4)
    identity = curve.identity()
    return [identity if a is None else Point(curve, *a) for a in acc]


# -- public entry points ------------------------------------------------------


def msm(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Compute ``sum_i scalars[i] * points[i]``.

    All points must share a curve; an empty input raises ValueError since
    the curve could not be inferred (use ``curve.identity()`` directly).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    curve: Curve = points[0].curve
    order = curve.scalar_field.p
    pairs = []
    for pt, s in zip(points, scalars):
        s %= order  # reduced once, reused for both the filter and the sum
        if s and not pt.is_identity():
            pairs.append((pt, s))
    # Counted here (not in the window workers) so serial and parallel
    # runs report identical totals.
    telemetry.incr("msm.calls")
    telemetry.incr("msm.points", len(pairs))
    telemetry.observe("msm.points_per_call", len(pairs))
    if not pairs:
        return curve.identity()
    if len(pairs) == 1:
        pt, s = pairs[0]
        return pt * s
    if kernels.fastpath_enabled():
        return _msm_fast(curve, pairs)
    return _msm_jacobian(curve, pairs)


def _msm_jacobian(curve: Curve, pairs: list[tuple[Point, int]]) -> Point:
    """The pre-existing full-width Jacobian Pippenger (the benchmark
    baseline the batch-affine path is validated and raced against)."""
    c = _window_size(len(pairs))
    num_bits = curve.scalar_field.p.bit_length()
    num_windows = (num_bits + c - 1) // c

    window_sums = _all_window_sums(curve, pairs, c, num_windows)

    acc = window_sums[-1]
    for total in reversed(window_sums[:-1]):
        for _ in range(c):
            acc = acc.double()
        acc = acc + total
    return acc


def msm_naive(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Reference implementation used in tests to validate :func:`msm`."""
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    acc = points[0].curve.identity()
    for pt, s in zip(points, scalars):
        acc = acc + pt * s
    return acc
