"""Pippenger multi-scalar multiplication.

The IPA commitment cost is dominated by MSMs ``sum_i s_i * G_i``.
Pippenger's bucket method computes an n-point MSM in roughly
``n * 255 / c + 2^c`` group additions for window size ``c``, versus
``n * 255`` for naive per-point scalar multiplication.

The bucket windows are independent, so with workers configured in
:mod:`repro.parallel` they are computed across processes and combined
in the usual doubling chain; the result is bit-identical to the serial
path because only window *ownership* moves, never the arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro import parallel, telemetry
from repro.ecc.curve import (
    Curve,
    Point,
    curve_by_name,
    points_from_affine_tuples,
    points_to_affine_tuples,
)

#: Below this many nonzero pairs the fork/pickle overhead of farming
#: out windows exceeds the bucket work itself.
PARALLEL_THRESHOLD = 64


def _window_size(n: int) -> int:
    """Heuristic window size ~ log2(n) (clamped), the standard choice."""
    if n < 4:
        return 1
    if n < 32:
        return 3
    c = n.bit_length() - 1
    return min(c, 16)


def _window_sum(
    curve: Curve,
    pairs: Sequence[tuple[Point, int]],
    c: int,
    w: int,
) -> Point:
    """The bucketed sum of window ``w`` (the Pippenger inner loop)."""
    mask = (1 << c) - 1
    shift = w * c
    buckets: list[Point | None] = [None] * mask
    for pt, s in pairs:
        idx = (s >> shift) & mask
        if idx:
            existing = buckets[idx - 1]
            buckets[idx - 1] = pt if existing is None else existing + pt
    # Running-sum trick: sum_k k * bucket[k] via two passes.
    running = curve.identity()
    total = curve.identity()
    for b in reversed(buckets):
        if b is not None:
            running = running + b
        total = total + running
    return total


def _window_sums_task(
    curve_name: str,
    coords: list[tuple[int, int]],
    scalars: list[int],
    c: int,
    w_lo: int,
    w_hi: int,
) -> list[tuple[int, int]]:
    """Worker task: window sums for windows ``[w_lo, w_hi)``.

    Top-level (picklable) and pure: points travel as affine tuples and
    come back the same way.
    """
    curve = curve_by_name(curve_name)
    points = points_from_affine_tuples(curve, coords)
    pairs = list(zip(points, scalars))
    return points_to_affine_tuples(
        [_window_sum(curve, pairs, c, w) for w in range(w_lo, w_hi)]
    )


def _all_window_sums(
    curve: Curve,
    pairs: list[tuple[Point, int]],
    c: int,
    num_windows: int,
) -> list[Point]:
    """Every window sum, farmed out across workers when configured."""
    if (
        not parallel.is_parallel()
        or len(pairs) < PARALLEL_THRESHOLD
        or num_windows < 2
    ):
        return [_window_sum(curve, pairs, c, w) for w in range(num_windows)]
    coords = points_to_affine_tuples([pt for pt, _ in pairs])
    scalars = [s for _, s in pairs]
    tasks = [
        (curve.name, coords, scalars, c, lo, hi)
        for lo, hi in parallel.chunk_bounds(num_windows, parallel.workers())
    ]
    window_sums: list[Point] = []
    for chunk in parallel.pmap(_window_sums_task, tasks):
        window_sums.extend(points_from_affine_tuples(curve, chunk))
    return window_sums


def msm(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Compute ``sum_i scalars[i] * points[i]``.

    All points must share a curve; an empty input raises ValueError since
    the curve could not be inferred (use ``curve.identity()`` directly).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    curve: Curve = points[0].curve
    order = curve.scalar_field.p
    pairs = [
        (pt, s % order)
        for pt, s in zip(points, scalars)
        if s % order != 0 and not pt.is_identity()
    ]
    # Counted here (not in the window workers) so serial and parallel
    # runs report identical totals.
    telemetry.incr("msm.calls")
    telemetry.incr("msm.points", len(pairs))
    if not pairs:
        return curve.identity()
    if len(pairs) == 1:
        pt, s = pairs[0]
        return pt * s

    c = _window_size(len(pairs))
    num_bits = order.bit_length()
    num_windows = (num_bits + c - 1) // c

    window_sums = _all_window_sums(curve, pairs, c, num_windows)

    acc = window_sums[-1]
    for total in reversed(window_sums[:-1]):
        for _ in range(c):
            acc = acc.double()
        acc = acc + total
    return acc


def msm_naive(points: Sequence[Point], scalars: Sequence[int]) -> Point:
    """Reference implementation used in tests to validate :func:`msm`."""
    if not points:
        raise ValueError("msm of zero points; use curve.identity()")
    acc = points[0].curve.identity()
    for pt, s in zip(points, scalars):
        acc = acc + pt * s
    return acc
