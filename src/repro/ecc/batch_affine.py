"""Batch-affine group arithmetic (the zcash/halo2 MSM trick).

A Jacobian addition costs ~16 field multiplications because it dodges
the inversion an affine addition needs.  But when *many* independent
additions happen at once -- Pippenger bucket accumulation, fixed-base
digit accumulation, the IPA base fold -- their inversions can share one
Montgomery batch inversion: each affine addition then costs ~4 field
multiplications plus an O(1) amortized share of a single modexp, less
than a third of the Jacobian cost.

Points here are affine coordinate pairs ``(x, y)`` with ``None`` for
the identity; all functions are pure coordinate kernels over a prime
modulus ``p`` and never touch :class:`~repro.ecc.curve.Point` (callers
convert at the boundary).  Exceptional cases (doubling, inverse pairs,
identity operands) are handled explicitly, so the results equal the
Jacobian path on every input -- bit-identical once normalized.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.field import montgomery_batch_inv

#: Affine point: coordinates, or None for the group identity.
Affine = "tuple[int, int] | None"


def sum_affine_lists(p: int, lists: Sequence[list[tuple[int, int]]]) -> int:
    """Reduce every list of affine points to at most one point, in place.

    Each round pairs up the entries of every list and resolves all the
    pairwise additions with ONE shared batch inversion; a list of ``m``
    points finishes in ``ceil(log2 m)`` rounds.  Lists may end empty
    when their points cancel to the identity.  Returns the number of
    shared-inversion rounds (the ``msm.batch_affine_rounds`` counter).
    """
    rounds = 0
    active = [pts for pts in lists if len(pts) > 1]
    while active:
        denoms: list[int] = []
        kinds: list[int] = []
        for pts in active:
            for t in range(0, len(pts) - 1, 2):
                x1, y1 = pts[t]
                x2, y2 = pts[t + 1]
                if x1 != x2:
                    denoms.append(x2 - x1)
                    kinds.append(0)
                elif (y1 + y2) % p == 0:
                    kinds.append(2)  # P + (-P): cancels to the identity
                else:
                    denoms.append(2 * y1)
                    kinds.append(1)  # equal points: affine doubling
        rounds += 1
        invs = montgomery_batch_inv(denoms, p)
        vi = 0
        ki = 0
        still_active = []
        for pts in active:
            m = len(pts)
            new: list[tuple[int, int]] = []
            for t in range(0, m - 1, 2):
                kind = kinds[ki]
                ki += 1
                if kind == 2:
                    continue
                x1, y1 = pts[t]
                if kind == 0:
                    x2, y2 = pts[t + 1]
                    lam = (y2 - y1) * invs[vi] % p
                    vi += 1
                    x3 = (lam * lam - x1 - x2) % p
                else:
                    lam = 3 * x1 * x1 * invs[vi] % p
                    vi += 1
                    x3 = (lam * lam - 2 * x1) % p
                new.append((x3, (lam * (x1 - x3) - y1) % p))
            if m & 1:
                new.append(pts[-1])
            pts[:] = new
            if len(new) > 1:
                still_active.append(pts)
        active = still_active
    return rounds


def batch_double(p: int, pts: list) -> list:
    """Elementwise affine doubling; ``None`` doubles to ``None``."""
    denoms = [2 * pt[1] for pt in pts if pt is not None and pt[1]]
    if not denoms:
        return [None] * len(pts)
    invs = montgomery_batch_inv(denoms, p)
    out = []
    vi = 0
    for pt in pts:
        if pt is None or not pt[1]:
            out.append(None)
            continue
        x1, y1 = pt
        lam = 3 * x1 * x1 * invs[vi] % p
        vi += 1
        x3 = (lam * lam - 2 * x1) % p
        out.append((x3, (lam * (x1 - x3) - y1) % p))
    return out


def batch_add(p: int, lhs: list, rhs: list) -> list:
    """Elementwise affine addition ``lhs[i] + rhs[i]`` (None-aware)."""
    denoms: list[int] = []
    kinds: list[int] = []
    for a, b in zip(lhs, rhs):
        if a is None or b is None:
            kinds.append(3)  # copy the non-identity operand
        elif a[0] != b[0]:
            denoms.append(b[0] - a[0])
            kinds.append(0)
        elif (a[1] + b[1]) % p == 0:
            kinds.append(2)
        else:
            denoms.append(2 * a[1])
            kinds.append(1)
    invs = montgomery_batch_inv(denoms, p) if denoms else []
    out = []
    vi = 0
    for a, b, kind in zip(lhs, rhs, kinds):
        if kind == 3:
            out.append(a if b is None else b)
            continue
        if kind == 2:
            out.append(None)
            continue
        x1, y1 = a
        if kind == 0:
            x2, y2 = b
            lam = (y2 - y1) * invs[vi] % p
            vi += 1
            x3 = (lam * lam - x1 - x2) % p
        else:
            lam = 3 * x1 * x1 * invs[vi] % p
            vi += 1
            x3 = (lam * lam - 2 * x1) % p
        out.append((x3, (lam * (x1 - x3) - y1) % p))
    return out


def linear_combination(
    p: int, streams: Sequence[tuple[list, int]], width: int = 2
) -> list:
    """``out[i] = sum_k scalar_k * points_k[i]`` for shared scalars.

    Every stream pairs a point *vector* with one non-negative scalar
    shared by all elements, so the double-and-add schedule is common to
    the whole vector: each step is a single elementwise batch pass with
    one shared inversion.  This is the IPA base-fold kernel -- the
    per-round ``g' = u^-1 * g_lo + u * g_hi`` -- where the reference
    path pays a full two-point MSM per element.
    """
    if not streams:
        raise ValueError("linear_combination of zero streams")
    m = len(streams[0][0])
    mask = (1 << width) - 1
    # Per-stream digit tables: [P, 2P, .., (2^width - 1)P] as vectors.
    tables = []
    for pts, _scalar in streams:
        tab = [list(pts)]
        if width > 1:
            doubled = batch_double(p, pts)
            tab.append(doubled)
            cur = doubled
            for _ in range(3, 1 << width):
                cur = batch_add(p, cur, pts)
                tab.append(cur)
        tables.append(tab)
    nbits = max(s.bit_length() for _, s in streams)
    nwin = max(1, (nbits + width - 1) // width)
    acc: list = [None] * m
    for w in range(nwin - 1, -1, -1):
        if w != nwin - 1:
            for _ in range(width):
                acc = batch_double(p, acc)
        for (pts, scalar), tab in zip(streams, tables):
            digit = (scalar >> (w * width)) & mask
            if digit:
                acc = batch_add(p, acc, tab[digit - 1])
    return acc
