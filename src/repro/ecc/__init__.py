"""Elliptic-curve substrate: the Pasta curves and multi-scalar multiplication.

PoneglyphDB's commitment scheme (IPA, paper section 3.2) operates over a
254/255-bit prime-order group.  We implement the same curves Halo2 uses:

- **Pallas**: ``y^2 = x^3 + 5`` over ``Fp``, with group order ``q``,
- **Vesta**:  ``y^2 = x^3 + 5`` over ``Fq``, with group order ``p``.

The two orders swap (a "curve cycle"), which is what enables Halo-style
recursive proof composition.
"""

from repro.ecc.curve import Curve, Point, PALLAS, VESTA
from repro.ecc.msm import fold_bases, msm
from repro.ecc.fixed_base import (
    FixedBaseTables,
    build_tables,
    fixed_base_msm,
    tables_for_params,
)
from repro.ecc.glv import curve_endo, decompose

__all__ = [
    "Curve",
    "Point",
    "PALLAS",
    "VESTA",
    "msm",
    "fold_bases",
    "FixedBaseTables",
    "build_tables",
    "fixed_base_msm",
    "tables_for_params",
    "curve_endo",
    "decompose",
]
