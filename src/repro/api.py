"""The one-stop session facade.

Everything the paper's Figure 2 workflow needs -- parameter setup,
database commitment, query proving, verification, auditing -- behind a
single object::

    from repro import PoneglyphDB, ProverConfig

    with PoneglyphDB.open(db, ProverConfig(k=7, workers=4)) as session:
        session.commit()
        response = session.prove("select count(*) from patients")
        assert session.verify(response).accepted

The facade owns the cross-cutting plumbing the lower layers expose as
knobs: it obtains public parameters through the artifact cache, applies
the configured worker count to the parallel backend for the session's
lifetime (restoring the previous setting on close), and keeps the
prover/verifier pair consistent so a proved response verifies against
the same commitment without ferrying metadata by hand.

The role classes (:class:`~repro.system.prover_node.ProverNode`,
:class:`~repro.system.verifier_node.VerifierNode`, the auditor) remain
the right interface when prover and verifier genuinely run on different
machines; :attr:`Session.prover` and :meth:`Session.verifier` hand them
out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro import parallel, telemetry
from repro.algebra import backend as field_backend
from repro.cache import ArtifactCache, resolve_cache
from repro.commit.params import PublicParams, cached_setup, setup
from repro.config import ProverConfig, ServiceConfig
from repro.db.commitment import DatabaseCommitment
from repro.db.database import Database
from repro.errors import StateError
from repro.proving.aggregate import AggProof, aggregate
from repro.system.audit import (
    AggregateAuditCertificate,
    AuditCertificate,
    audit,
    audit_aggregate,
)
from repro.system.prover_node import ProverNode, QueryResponse
from repro.system.verifier_node import (
    AggReport,
    BatchReport,
    VerificationReport,
    VerifierNode,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import ProvingService


class Session:
    """One prover-side proving session over one database.

    Create via :meth:`PoneglyphDB.open`.  The session is a context
    manager; leaving the ``with`` block (or calling :meth:`close`)
    restores the global parallelism setting it overrode.
    """

    def __init__(
        self,
        db: Database,
        config: ProverConfig,
        params: PublicParams | None = None,
        cache: ArtifactCache | None = None,
    ):
        self.config = config
        self.db = db
        self.cache = (
            cache
            if cache is not None
            else resolve_cache(config.cache_dir, enabled=config.use_cache)
        )
        self._previous_workers = parallel.workers()
        parallel.configure(config.workers)
        self._previous_telemetry = (
            telemetry.enable(True) if config.telemetry else telemetry.enabled()
        )
        self._previous_field_backend = field_backend.set_backend(
            config.field_backend
        )
        self._closed = False

        self.params_cache_hit = False
        if params is None:
            if self.cache.enabled:
                params, self.params_cache_hit = cached_setup(
                    self.cache, config.k, config.curve
                )
            else:
                params = setup(config.k, config.curve)
        self.params = params
        if self.cache.enabled:
            # Let the kernel layer persist its fixed-base MSM tables
            # next to the cached parameters they derive from.
            from repro.ecc import fixed_base

            fixed_base.configure_cache(self.cache)
        self.prover = ProverNode(db, params, config=config, cache=self.cache)
        self._verifier: VerifierNode | None = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Restore the parallelism, telemetry and field-backend
        settings the session overrode."""
        if not self._closed:
            parallel.configure(self._previous_workers)
            if self.config.telemetry:
                telemetry.enable(self._previous_telemetry)
            field_backend.set_backend(self._previous_field_backend)
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the Figure 2 workflow ------------------------------------------

    @property
    def commitment(self) -> DatabaseCommitment | None:
        return self.prover.commitment

    def commit(self) -> DatabaseCommitment:
        """Publish the database commitment (phase 2; done once)."""
        commitment = self.prover.publish_commitment()
        self._verifier = None  # the old one pins the old commitment
        return commitment

    def prove(self, sql: str) -> QueryResponse:
        """Answer ``sql`` with a result and a proof of correct
        execution (phases 3-4).  Commits first if not yet committed."""
        if self.prover.commitment is None:
            self.commit()
        return self.prover.answer(sql)

    def verifier(self) -> VerifierNode:
        """A verifier holding only public data (params, metadata,
        commitment) -- what an untrusting client would construct."""
        if self.prover.commitment is None:
            raise StateError("commit() before creating a verifier")
        if self._verifier is None:
            self._verifier = VerifierNode(
                self.params,
                self.prover.public_metadata(),
                self.prover.commitment,
                self.config.field,
            )
        return self._verifier

    def verify(self, response: QueryResponse) -> VerificationReport:
        """Check a response the way a client would (phase 5).

        Verification consumes the response's **wire bytes**
        (``response.wire_bytes()``), decoded with the strict
        :meth:`repro.proving.proof.Proof.from_bytes` validator -- the
        in-memory proof object is never trusted."""
        return self.verifier().verify(response)

    def batch_verify(
        self, responses: Sequence[QueryResponse]
    ) -> BatchReport:
        """Verify many responses with one folded accumulator check.

        Each proof is still checked individually up to its expensive
        opening claims, which are deferred into a shared recursion
        accumulator and settled with a single combined MSM -- the
        per-proof cost drops accordingly (DESIGN.md section 5f)."""
        return self.verifier().batch_verify(responses)

    def aggregate(self, responses: Sequence[QueryResponse]) -> AggProof:
        """Fold N proved responses into one transportable aggregated
        claim bound to this session's exact public parameters
        (DESIGN.md section 5g)."""
        return aggregate(responses, self.params)

    def verify_aggregate(self, agg: AggProof | bytes) -> AggReport:
        """Check an aggregated claim (``PDBA`` bytes or a decoded
        :class:`~repro.proving.aggregate.AggProof`): every folded
        entry's cheap checks replay, all the expensive MSMs settle in
        one fixed-base accumulator finalize."""
        return self.verifier().verify_aggregate(agg)

    def audit_aggregate(
        self, agg: AggProof | bytes
    ) -> AggregateAuditCertificate:
        """Attest an epoch's aggregated claim: one accumulator check
        instead of replaying every proof, pinned by content digest."""
        return audit_aggregate(self.verifier(), agg)

    def serve(
        self,
        config: ServiceConfig | None = None,
        *,
        journal_path=None,
        chaos=None,
    ) -> "ProvingService":
        """Start an async proving service over this session.

        Returns a :class:`~repro.service.service.ProvingService` (a
        context manager) whose workers share this session's database,
        parameters, and commitment.  Commits first if needed.
        ``journal_path`` (or ``config.journal_path``) enables the
        durable job journal -- opening an existing journal replays it
        and recovers interrupted jobs; see DESIGN.md section 5i."""
        from repro.service.service import ProvingService

        return ProvingService(
            self, config or ServiceConfig(),
            journal_path=journal_path, chaos=chaos,
        )

    def audit(self) -> AuditCertificate:
        """Run the trusted auditor over the published commitment."""
        if self.prover.commitment is None or self.prover._secrets is None:
            raise StateError("commit() before auditing")
        return audit(
            self.db, self.prover.commitment, self.prover._secrets, self.params
        )

    # -- instrumentation -------------------------------------------------

    def cache_summary(self) -> str:
        """Hit/miss counts for the session's artifact cache."""
        return self.cache.stats.summary()


class PoneglyphDB:
    """The entry point: ``PoneglyphDB.open(db, config) -> Session``."""

    @staticmethod
    def open(
        db: Database,
        config: ProverConfig | None = None,
        *,
        params: PublicParams | None = None,
        cache: ArtifactCache | None = None,
    ) -> Session:
        """Open a proving session over ``db``.

        ``config`` defaults to ``ProverConfig()``; pass ``params`` to
        reuse pre-generated public parameters (they must support at
        least ``2^config.k`` rows), and ``cache`` to share one
        :class:`~repro.cache.ArtifactCache` across sessions.
        """
        return Session(db, config or ProverConfig(), params, cache)
