"""SQL frontend: parser, logical planner, plaintext executor, and the
plan-to-circuit compiler (paper section 4.6, "Combining Gates").

The supported subset covers the paper's TPC-H workload: SELECT with
arithmetic and CASE expressions, aggregates (SUM/AVG/COUNT/MIN/MAX),
multi-table FROM with PK-FK equijoin predicates, WHERE with
comparisons/BETWEEN/IN/AND/OR, GROUP BY, HAVING, ORDER BY, LIMIT,
DATE +/- INTERVAL arithmetic, and EXTRACT(YEAR FROM ...).
"""

from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.sql.executor import Executor
from repro.sql.compiler import QueryCompiler

__all__ = ["parse", "Planner", "Executor", "QueryCompiler"]
