"""Plaintext plan execution.

The executor evaluates a logical plan over the encoded database with
**exactly the integer semantics the circuits enforce** (fixed-point
scales, floor division with remainder, integer square roots).  The
prover uses it to compute the query answer and the per-operator
witnesses; tests use it as the reference the circuit output must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.db.types import int_to_date
from repro.sql.ast import (
    Agg,
    AggFunc,
    Between,
    BinOp,
    BinOpKind,
    Case,
    ColRef,
    Expr,
    Extract,
    InList,
    Literal,
    Logical,
    Not,
)
from repro.sql.plan import (
    AggregateNode,
    AggSpec,
    DeriveNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputColumn,
    PlanNode,
    ProjectNode,
    Scan,
    SortNode,
)


@dataclass
class Relation:
    """An intermediate result: named integer columns of equal length."""

    outputs: list[OutputColumn]
    columns: dict[str, list[int]]

    @property
    def num_rows(self) -> int:
        return len(next(iter(self.columns.values()))) if self.columns else 0

    def row(self, i: int) -> dict[str, int]:
        return {name: values[i] for name, values in self.columns.items()}

    def rows(self) -> list[dict[str, int]]:
        return [self.row(i) for i in range(self.num_rows)]

    def scale_of(self, name: str) -> int:
        for col in self.outputs:
            if col.name == name:
                return col.scale
        raise KeyError(name)


class ExecError(ValueError):
    pass


def year_of_days(days: int) -> int:
    """EXTRACT(YEAR) on the day-number encoding."""
    return int_to_date(days).year


class ScalarEvaluator:
    """Shared scalar semantics (also used by the circuit compiler for
    witness generation)."""

    def __init__(self, db: Database, binding_tables: dict[str, str]):
        self.db = db
        self.bindings = binding_tables

    # -- scale tracking -----------------------------------------------------

    def eval(self, expr: Expr, row: dict[str, int], scales: dict[str, int]):
        """Returns (value, scale).  Predicates return (0/1, 1)."""
        if isinstance(expr, Literal):
            return self._literal(expr)
        if isinstance(expr, ColRef):
            name = f"{expr.table}.{expr.name}" if expr.table else expr.name
            if name not in row:
                raise ExecError(f"unknown column {name!r}")
            return row[name], scales.get(name, 1)
        if isinstance(expr, BinOp):
            return self._binop(expr, row, scales)
        if isinstance(expr, Logical):
            flags = [self.eval(t, row, scales)[0] for t in expr.terms]
            if expr.op == "and":
                result = 1
                for f in flags:
                    result &= 1 if f else 0
            else:
                result = 1 if any(flags) else 0
            return result, 1
        if isinstance(expr, Not):
            value, _ = self.eval(expr.term, row, scales)
            return (0 if value else 1), 1
        if isinstance(expr, Between):
            value, vs = self.eval(expr.expr, row, scales)
            low, ls = self.eval(expr.low, row, scales)
            high, hs = self.eval(expr.high, row, scales)
            a, b = _align(value, vs, low, ls)
            c, d = _align(value, vs, high, hs)
            return (1 if (a >= b and c <= d) else 0), 1
        if isinstance(expr, InList):
            value, vs = self.eval(expr.expr, row, scales)
            for lit in expr.values:
                lv, lscale = self._literal(lit, context=expr.expr)
                a, b = _align(value, vs, lv, lscale)
                if a == b:
                    return 1, 1
            return 0, 1
        if isinstance(expr, Case):
            cond, _ = self.eval(expr.condition, row, scales)
            tv, ts = self.eval(expr.then, row, scales)
            ov, os_ = self.eval(expr.otherwise, row, scales)
            scale = max(ts, os_)
            tv *= scale // ts
            ov *= scale // os_
            return (tv if cond else ov), scale
        if isinstance(expr, Extract):
            days, _ = self.eval(expr.expr, row, scales)
            return year_of_days(days), 1
        raise ExecError(f"cannot evaluate {type(expr).__name__} here")

    def _literal(self, lit: Literal, context: Expr | None = None):
        if lit.kind == "int":
            return int(lit.value), 1
        if lit.kind == "decimal":
            return round(lit.value * 100), 100
        if lit.kind == "date":
            from repro.db.types import date_to_int

            return date_to_int(lit.value), 1
        # string literal: encode against the referenced column's dictionary
        target = context
        if target is None or not isinstance(target, ColRef):
            raise ExecError(f"string literal {lit.value!r} without column context")
        table = self.bindings.get(target.table or "", target.table)
        qualified = f"{table}.{target.name}"
        return self.db.encoder.decode_literal(qualified, lit.value), 1

    def _binop(self, expr: BinOp, row, scales):
        # String equality needs the dictionary: handle literal operands.
        left_lit = isinstance(expr.left, Literal) and expr.left.kind == "string"
        right_lit = isinstance(expr.right, Literal) and expr.right.kind == "string"
        if left_lit or right_lit:
            col = expr.right if left_lit else expr.left
            lit = expr.left if left_lit else expr.right
            value, _ = self.eval(col, row, scales)
            code, _ = self._literal(lit, context=col)
            return self._compare(expr.op, value, code), 1

        lv, ls = self.eval(expr.left, row, scales)
        rv, rs = self.eval(expr.right, row, scales)
        if expr.op in (BinOpKind.ADD, BinOpKind.SUB):
            a, b = _align(lv, ls, rv, rs)
            scale = max(ls, rs)
            return (a + b if expr.op is BinOpKind.ADD else a - b), scale
        if expr.op is BinOpKind.MUL:
            return lv * rv, ls * rs
        if expr.op is BinOpKind.DIV:
            if rv == 0:
                raise ExecError("division by zero")
            # result scale 100: floor(100 * lv * rs / (ls * rv))
            return (100 * lv * rs) // (ls * rv), 100
        a, b = _align(lv, ls, rv, rs)
        return self._compare(expr.op, a, b), 1

    @staticmethod
    def _compare(op: BinOpKind, a: int, b: int) -> int:
        if op is BinOpKind.EQ:
            return 1 if a == b else 0
        if op is BinOpKind.NE:
            return 1 if a != b else 0
        if op is BinOpKind.LT:
            return 1 if a < b else 0
        if op is BinOpKind.LE:
            return 1 if a <= b else 0
        if op is BinOpKind.GT:
            return 1 if a > b else 0
        if op is BinOpKind.GE:
            return 1 if a >= b else 0
        raise ExecError(f"not a comparison: {op}")


def _align(a: int, sa: int, b: int, sb: int) -> tuple[int, int]:
    scale = max(sa, sb)
    return a * (scale // sa), b * (scale // sb)


def aggregate_rows(
    spec: AggSpec,
    rows: list[dict[str, int]],
    evaluator: ScalarEvaluator,
    scales: dict[str, int],
) -> int:
    """Integer-exact aggregation of one group (shared with the circuit
    witness generator)."""
    if spec.func is AggFunc.COUNT:
        if spec.arg is None:
            return len(rows)
        if spec.distinct:
            return len(
                {evaluator.eval(spec.arg, row, scales)[0] for row in rows}
            )
        return len(rows)
    values = [evaluator.eval(spec.arg, row, scales)[0] for row in rows]
    if spec.func is AggFunc.SUM:
        return sum(values)
    if spec.func is AggFunc.MIN:
        return min(values)
    if spec.func is AggFunc.MAX:
        return max(values)
    if spec.func is AggFunc.AVG:
        return (sum(values) * 100) // len(values)
    if spec.func is AggFunc.MEDIAN:
        return sorted(values)[(len(values) - 1) // 2]
    if spec.func is AggFunc.VARIANCE:
        n = len(values)
        return (n * sum(v * v for v in values) - sum(values) ** 2) // (n * n)
    if spec.func is AggFunc.STDDEV:
        import math

        n = len(values)
        var = (n * sum(v * v for v in values) - sum(values) ** 2) // (n * n)
        return math.isqrt(max(var, 0))
    raise ExecError(f"unsupported aggregate {spec.func}")


class Executor:
    """Evaluate plans bottom-up into :class:`Relation` values."""

    def __init__(self, db: Database):
        self.db = db

    def execute(self, plan: PlanNode) -> Relation:
        bindings = {
            node.binding: node.table
            for node in _scans(plan)
        }
        evaluator = ScalarEvaluator(self.db, bindings)
        return self._exec(plan, evaluator)

    # ------------------------------------------------------------------

    def _exec(self, node: PlanNode, ev: ScalarEvaluator) -> Relation:
        if isinstance(node, Scan):
            table = self.db.table(node.table)
            columns = {
                f"{node.binding}.{name}": list(table.column(name))
                for name in table.schema.column_names()
            }
            return Relation(list(node.outputs), columns)
        if isinstance(node, FilterNode):
            child = self._exec(node.child, ev)
            scales = _scale_map(child)
            keep = [
                i
                for i in range(child.num_rows)
                if ev.eval(node.predicate, child.row(i), scales)[0]
            ]
            columns = {
                name: [values[i] for i in keep]
                for name, values in child.columns.items()
            }
            return Relation(list(node.outputs), columns)
        if isinstance(node, JoinNode):
            left = self._exec(node.left, ev)
            right = self._exec(node.right, ev)
            index: dict[int, int] = {}
            for j in range(right.num_rows):
                index.setdefault(right.columns[node.pk_column][j], j)
            out_columns: dict[str, list[int]] = {
                name: [] for name in list(left.columns) + list(right.columns)
            }
            fk_values = left.columns[node.fk_column]
            for i in range(left.num_rows):
                j = index.get(fk_values[i])
                if j is None:
                    continue
                for name in left.columns:
                    out_columns[name].append(left.columns[name][i])
                for name in right.columns:
                    out_columns[name].append(right.columns[name][j])
            return Relation(list(node.outputs), out_columns)
        if isinstance(node, DeriveNode):
            child = self._exec(node.child, ev)
            scales = _scale_map(child)
            values = [
                ev.eval(node.expr, child.row(i), scales)[0]
                for i in range(child.num_rows)
            ]
            columns = dict(child.columns)
            columns[node.name] = values
            return Relation(list(node.outputs), columns)
        if isinstance(node, AggregateNode):
            child = self._exec(node.child, ev)
            scales = _scale_map(child)
            groups: dict[tuple[int, ...], list[int]] = {}
            for i in range(child.num_rows):
                key = tuple(child.columns[k][i] for k in node.group_keys)
                groups.setdefault(key, []).append(i)
            columns: dict[str, list[int]] = {
                name: [] for name in node.output_names()
            }
            for key in sorted(groups):
                rows = [child.row(i) for i in groups[key]]
                for k, value in zip(node.group_keys, key):
                    columns[k].append(value)
                for spec in node.aggregates:
                    columns[spec.name].append(
                        aggregate_rows(spec, rows, ev, scales)
                    )
            return Relation(list(node.outputs), columns)
        if isinstance(node, ProjectNode):
            child = self._exec(node.child, ev)
            scales = _scale_map(child)
            columns = {}
            for name, expr in node.items:
                columns[name] = [
                    ev.eval(expr, child.row(i), scales)[0]
                    for i in range(child.num_rows)
                ]
            return Relation(list(node.outputs), columns)
        if isinstance(node, SortNode):
            child = self._exec(node.child, ev)
            order = list(range(child.num_rows))
            for name, descending in reversed(node.keys):
                order.sort(
                    key=lambda i: child.columns[name][i], reverse=descending
                )
            columns = {
                name: [values[i] for i in order]
                for name, values in child.columns.items()
            }
            return Relation(list(node.outputs), columns)
        if isinstance(node, LimitNode):
            child = self._exec(node.child, ev)
            columns = {
                name: values[: node.count]
                for name, values in child.columns.items()
            }
            return Relation(list(node.outputs), columns)
        raise ExecError(f"unknown plan node {type(node).__name__}")


def _scale_map(relation: Relation) -> dict[str, int]:
    return {col.name: col.scale for col in relation.outputs}


def _scans(node: PlanNode):
    from repro.sql.plan import walk

    for n in walk(node):
        if isinstance(n, Scan):
            yield n
