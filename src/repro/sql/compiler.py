"""Plan-to-circuit compilation (paper section 4.6, "Combining Gates").

Each plan operator compiles to the corresponding custom gate from
:mod:`repro.gates`; gates chain by feeding one operator's output
columns (plus a ``valid`` dummy-tuple flag, section 3.4) into the next.
The circuit layout is *oblivious*: its shape depends only on public
metadata (query text, schemas, table sizes, string dictionaries and the
public result cardinality), never on private cell values; intermediate
cardinalities ride in advice columns.

:class:`CompiledQuery` splits assignment into a **public** phase (fixed
columns: selectors, lookup tables, the calendar, the result-binding
region) that the verifier replays to regenerate the verifying key, and
a **witness** phase (advice) only the prover runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.db.database import Database
from repro.gates.aggregate import CompactChip, DivModChip, RunningAggChip
from repro.gates.compare import EqFlagChip, LtFlagChip
from repro.gates.datetime import YearChip
from repro.gates.groupby import GroupByChip
from repro.gates.join import PkFkJoinChip
from repro.gates.sort import SortChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment, ZK_ROWS
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Constant, Expression
from repro.sql.ast import (
    AggFunc,
    Between,
    BinOp,
    BinOpKind,
    Case,
    ColRef,
    Expr,
    Extract,
    InList,
    Literal,
    Logical,
    Not,
)
from repro.sql.plan import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    Scan,
    SortNode,
)

#: bits per component of composite sort/group keys (paper default).
DEFAULT_KEY_BITS = 48
#: limb width of the shared range table (the paper's u8 cells).
DEFAULT_LIMB_BITS = 8
#: bit width of comparable values (paper: 64-bit integers).
DEFAULT_VALUE_BITS = 64

_CMP_OPS = {
    BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT,
    BinOpKind.LE, BinOpKind.GT, BinOpKind.GE,
}


class CompileError(ValueError):
    pass


@dataclass
class CircuitRelation:
    """An operator's in-circuit output: column expressions, a validity
    flag, fixed-point scales, and whether valid rows form a dense
    prefix."""

    node_id: int
    columns: dict[str, Expression]
    valid: Expression
    scales: dict[str, int]
    dense: bool = False


@dataclass
class ScanLink:
    """An advice column that must link to the database commitment."""

    advice_index: int
    table: str
    column: str


@dataclass
class OutputMeta:
    name: str
    scale: int
    kind: str
    source: Optional[str] = None  # "table.column" for dictionary decode


class WitnessCtx:
    """State threaded through witness assignment."""

    def __init__(self, asg: Assignment, db: Database):
        self.asg = asg
        self.db = db
        #: node id -> (positional rows, validity flags)
        self.rels: dict[int, tuple[list[dict[str, int]], list[int]]] = {}
        self.result_rows: list[list[int]] = []


@dataclass
class CompiledQuery:
    cs: ConstraintSystem
    k: int
    range_table: RangeTable
    instance_columns: list[Column]
    outputs: list[OutputMeta]
    scan_links: list[ScanLink]
    public_steps: list[Callable[[Assignment, int], None]]
    witness_steps: list[Callable[[WitnessCtx], None]]
    db_bindings: dict[str, str]
    limit: Optional[int] = None
    result: list[list[int]] = field(default_factory=list)

    @property
    def usable_rows(self) -> int:
        return (1 << self.k) - ZK_ROWS

    def assign_public(self, asg: Assignment, result_count: int) -> None:
        """Fixed columns only -- verifier-replayable."""
        for step in self.public_steps:
            step(asg, result_count)

    def assign_witness(self, asg: Assignment, db: Database) -> list[list[int]]:
        """Full assignment; returns the (encoded) result rows."""
        ctx = WitnessCtx(asg, db)
        for step in self.witness_steps:
            step(ctx)
        self.result = ctx.result_rows
        self.assign_public(asg, len(ctx.result_rows))
        for i, row in enumerate(ctx.result_rows):
            for col, value in zip(self.instance_columns, row):
                asg.assign(col, i, value)
        return ctx.result_rows

    def instance_vectors(self, result_rows: list[list[int]]) -> list[list[int]]:
        """Instance column vectors for verify_proof."""
        usable = self.usable_rows
        out = []
        for j in range(len(self.instance_columns)):
            column = [0] * usable
            for i, row in enumerate(result_rows):
                column[i] = row[j]
            out.append(column)
        return out


class QueryCompiler:
    """Compiles logical plans against a database's public metadata.

    ``limb_bits``/``value_bits``/``key_bits`` control the lookup-table
    size and decomposition widths (the paper's u8-cell design is
    ``limb_bits=8, value_bits=64``); tests shrink them to fit small
    circuits.  Prover and verifier must agree on them -- they ship in
    :class:`repro.system.metadata.PublicMetadata`.
    """

    def __init__(
        self,
        db: Database,
        k: int,
        limb_bits: int = DEFAULT_LIMB_BITS,
        value_bits: int = DEFAULT_VALUE_BITS,
        key_bits: int = DEFAULT_KEY_BITS,
    ):
        self.db = db
        self.k = k
        self.limb_bits = limb_bits
        self.value_bits = value_bits
        self.key_bits = key_bits

    def compile(self, plan: PlanNode) -> CompiledQuery:
        builder = _Builder(
            self.db, self.k, self.limb_bits, self.value_bits, self.key_bits
        )
        return builder.run(plan)


class _Builder:
    def __init__(
        self, db: Database, k: int, limb_bits: int, value_bits: int,
        key_bits: int,
    ):
        self.db = db
        self.k = k
        self.limb_bits = limb_bits
        self.value_limbs = -(-value_bits // limb_bits)
        self.key_bits = key_bits
        self.usable = (1 << k) - ZK_ROWS
        self.cs = ConstraintSystem()
        self.table = RangeTable(self.cs, limb_bits)
        if self.usable < self.table.size:
            raise CompileError(
                f"k={k} too small for the {self.table.size}-entry range table"
            )
        self.q_all: Column = self.cs.fixed_column("q_all")
        self.public_steps: list[Callable[[Assignment, int], None]] = []
        self.witness_steps: list[Callable[[WitnessCtx], None]] = []
        self.scan_links: list[ScanLink] = []
        self.bindings: dict[str, str] = {}
        self._fresh = 0
        self._limit: Optional[int] = None

        def base(asg: Assignment, result_count: int) -> None:
            self.table.assign(asg)
            for row in range(asg.usable_rows):
                asg.assign(self.q_all, row, 1)

        self.public_steps.append(base)

    # -- top level -------------------------------------------------------

    def run(self, plan: PlanNode) -> CompiledQuery:
        rel = self.build(plan)
        rel = self._ensure_dense(plan, rel)

        out_names = plan.output_names()
        q_result = self.cs.fixed_column("q_result")
        instance_columns = [
            self.cs.instance_column(f"result.{name}") for name in out_names
        ]
        self.cs.create_gate(
            "result_binding",
            [
                q_result.cur() * (rel.columns[name] - inst.cur())
                for name, inst in zip(out_names, instance_columns)
            ],
        )
        # Result rows must actually be valid rows of the final relation.
        self.cs.create_gate(
            "result_valid", [q_result.cur() * (Constant(1) - rel.valid)]
        )

        def bind_public(asg: Assignment, result_count: int) -> None:
            for row in range(result_count):
                asg.assign(q_result, row, 1)

        self.public_steps.append(bind_public)

        limit = self._limit

        def final_step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[rel.node_id]
            result = [
                [row[name] for name in out_names]
                for row, v in zip(rows, valid)
                if v
            ]
            if limit is not None:
                result = result[:limit]
            ctx.result_rows = result

        self.witness_steps.append(final_step)

        outputs = [
            OutputMeta(
                name=col.name,
                scale=col.scale,
                kind=col.kind,
                source=self._source_of(plan, col.name),
            )
            for col in plan.outputs
        ]
        return CompiledQuery(
            cs=self.cs,
            k=self.k,
            range_table=self.table,
            instance_columns=instance_columns,
            outputs=outputs,
            scan_links=self.scan_links,
            public_steps=self.public_steps,
            witness_steps=self.witness_steps,
            db_bindings=dict(self.bindings),
            limit=limit,
        )

    def _source_of(self, plan: PlanNode, name: str) -> Optional[str]:
        """Qualified table.column for dictionary decoding (only direct
        column references keep a source)."""
        if isinstance(plan, (SortNode, LimitNode)):
            return self._source_of(plan.child, name)
        if isinstance(plan, ProjectNode):
            for item_name, expr in plan.items:
                if item_name == name and isinstance(expr, ColRef) and expr.table:
                    table = self.bindings.get(expr.table)
                    if table:
                        return f"{table}.{expr.name}"
            return None
        if "." in name:
            binding, col = name.split(".", 1)
            table = self.bindings.get(binding)
            if table:
                return f"{table}.{col}"
        return None

    def _ensure_dense(self, node: PlanNode, rel: CircuitRelation) -> CircuitRelation:
        if rel.dense:
            return rel
        names = node.output_names()
        compact = CompactChip(
            self.cs,
            self.name("final_compact"),
            rel.valid,
            [rel.columns[n] for n in names],
            self.q_all.cur(),
        )
        new_id = self._new_node_id()

        def step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[rel.node_id]
            selected = [
                [row[n] for n in names] for row, v in zip(rows, valid) if v
            ]
            compact.assign(ctx.asg, selected)
            out_rows = [dict(zip(names, r)) for r in selected]
            ctx.rels[new_id] = (out_rows, [1] * len(out_rows))

        self.witness_steps.append(step)
        columns = {n: compact.out[j].cur() for j, n in enumerate(names)}
        return CircuitRelation(
            new_id, columns, compact.q_out.cur(), dict(rel.scales), dense=True
        )

    # -- helpers -----------------------------------------------------------

    def name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    _node_counter = 10**9

    def _new_node_id(self) -> int:
        _Builder._node_counter += 1
        return _Builder._node_counter

    def materialize(
        self,
        prefix: str,
        expr: Expression,
        fn: Callable[[WitnessCtx, int], int],
    ) -> Column:
        """Advice column constrained to ``expr`` on all usable rows."""
        col = self.cs.advice_column(self.name(prefix))
        self.cs.create_gate(
            self.name(f"{prefix}.eq"),
            [self.q_all.cur() * (col.cur() - expr)],
        )

        def step(ctx: WitnessCtx) -> None:
            for row in range(self.usable):
                ctx.asg.assign(col, row, fn(ctx, row))

        self.witness_steps.append(step)
        return col

    # -- operators -----------------------------------------------------------

    def build(self, node: PlanNode) -> CircuitRelation:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, DeriveNode):
            return self._derive(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, SortNode):
            return self._order_by(node)
        if isinstance(node, LimitNode):
            rel = self.build(node.child)
            self._limit = node.count
            new_rel = CircuitRelation(
                rel.node_id, rel.columns, rel.valid, rel.scales, rel.dense
            )
            return new_rel
        raise CompileError(f"cannot compile {type(node).__name__}")

    def _scan(self, node: Scan) -> CircuitRelation:
        table = self.db.table(node.table)
        self.bindings[node.binding] = node.table
        if len(table) > self.usable:
            raise CompileError(
                f"table {node.table} ({len(table)} rows) exceeds circuit "
                f"capacity {self.usable} at k={self.k}"
            )
        valid_col = self.cs.fixed_column(self.name(f"{node.binding}.valid"))
        columns: dict[str, Expression] = {}
        scales: dict[str, int] = {}
        advice_cols: dict[str, Column] = {}
        for out in node.outputs:
            col_name = out.name.split(".", 1)[1]
            advice = self.cs.advice_column(self.name(out.name))
            self.scan_links.append(ScanLink(advice.index, node.table, col_name))
            columns[out.name] = advice.cur()
            scales[out.name] = out.scale
            advice_cols[out.name] = advice

        rows_count = len(table)

        def fixed_step(asg: Assignment, result_count: int) -> None:
            for row in range(rows_count):
                asg.assign(valid_col, row, 1)

        self.public_steps.append(fixed_step)

        node_id = id(node)

        def witness_step(ctx: WitnessCtx) -> None:
            data = ctx.db.table(node.table)
            rows = []
            for out in node.outputs:
                col_name = out.name.split(".", 1)[1]
                ctx.asg.assign_column(
                    advice_cols[out.name], data.column(col_name)
                )
            for i in range(len(data)):
                rows.append(
                    {
                        out.name: data.column(out.name.split(".", 1)[1])[i]
                        for out in node.outputs
                    }
                )
            ctx.rels[node_id] = (rows, [1] * len(rows))

        self.witness_steps.append(witness_step)
        return CircuitRelation(node_id, columns, valid_col.cur(), scales)

    def _filter(self, node: FilterNode) -> CircuitRelation:
        child = self.build(node.child)
        flag_expr, flag_fn = self._predicate(node.predicate, child)
        node_id = id(node)

        def valid_fn(ctx: WitnessCtx, row: int) -> int:
            rows, valid = ctx.rels[child.node_id]
            if row >= len(rows):
                return 0
            return valid[row] * flag_fn(ctx, row)

        valid_col = self.materialize("fvalid", child.valid * flag_expr, valid_fn)

        def rel_step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[child.node_id]
            new_valid = [v * flag_fn(ctx, i) for i, v in enumerate(valid)]
            ctx.rels[node_id] = (rows, new_valid)

        self.witness_steps.append(rel_step)
        return CircuitRelation(
            node_id, dict(child.columns), valid_col.cur(), dict(child.scales)
        )

    def _join(self, node: JoinNode) -> CircuitRelation:
        child = self.build(node.left)
        right = self.build(node.right)
        right_names = [out.name for out in node.right.outputs]
        ordered = [node.pk_column] + [
            n for n in right_names if n != node.pk_column
        ]
        t2_exprs = [right.valid * right.columns[n] for n in ordered]
        chip = PkFkJoinChip(
            self.cs,
            self.name("join"),
            child.columns[node.fk_column],
            child.valid,
            t2_exprs,
            right.valid,
            self.table,
            self.value_limbs,
        )

        def public_step(asg: Assignment, result_count: int) -> None:
            for row in range(asg.usable_rows - 1):
                asg.assign(chip._disjoint.q_sort, row, 1)

        self.public_steps.append(public_step)

        node_id = id(node)

        def step(ctx: WitnessCtx) -> None:
            l_rows, l_valid = ctx.rels[child.node_id]
            r_rows, r_valid = ctx.rels[right.node_id]
            t1_keys = [
                (row[node.fk_column], v) for row, v in zip(l_rows, l_valid)
            ]
            t2_rows = [
                [row[n] for n in ordered]
                for row, v in zip(r_rows, r_valid)
                if v
            ]
            flags = chip.assign(ctx.asg, t1_keys, t2_rows)
            pk_index: dict[int, list[int]] = {}
            for r in t2_rows:
                pk_index.setdefault(r[0], r)
            out_rows = []
            for (row, flag) in zip(l_rows, flags):
                merged = dict(row)
                partner = pk_index.get(row[node.fk_column]) if flag else None
                for j, rname in enumerate(ordered):
                    merged[rname] = partner[j] if partner else 0
                out_rows.append(merged)
            ctx.rels[node_id] = (out_rows, list(flags))

        self.witness_steps.append(step)

        columns = dict(child.columns)
        scales = dict(child.scales)
        for j, rname in enumerate(ordered):
            columns[rname] = chip.match[j].cur()
            scales[rname] = right.scales[rname]
        return CircuitRelation(node_id, columns, chip.out_valid_expr, scales)

    def _derive(self, node: DeriveNode) -> CircuitRelation:
        child = self.build(node.child)
        expr, fn = self._scalar(node.expr, child)
        node_id = id(node)

        if isinstance(node.expr, Extract):
            # YearChip already produced an advice column.
            col_expr = expr
        else:
            col = self.materialize(
                f"derive.{node.name}", expr, lambda ctx, row: fn(ctx, row)
            )
            col_expr = col.cur()

        def rel_step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[child.node_id]
            for i, row in enumerate(rows):
                row[node.name] = fn(ctx, i)
            ctx.rels[node_id] = (rows, valid)

        self.witness_steps.append(rel_step)
        columns = dict(child.columns)
        columns[node.name] = col_expr
        scales = dict(child.scales)
        scales[node.name] = node.scale
        return CircuitRelation(node_id, columns, child.valid, scales)

    def _aggregate(self, node: AggregateNode) -> CircuitRelation:
        child = self.build(node.child)
        node_id = id(node)
        shift = 1 << self.key_bits
        n_group = len(node.group_keys)
        n_aggs = len(node.aggregates)

        key_expr: Expression = Constant(1)
        for key_name in node.group_keys:
            key_expr = key_expr * shift + child.columns[key_name]
        gated_key = child.valid * key_expr

        # Aggregate argument columns (materialized so the sort tuple
        # stays degree-2).
        arg_exprs: list[Expression] = []
        arg_fns: list[Callable[[WitnessCtx, int], int]] = []
        for spec in node.aggregates:
            if spec.arg is None or spec.func is AggFunc.COUNT:
                arg_exprs.append(Constant(1))
                arg_fns.append(lambda ctx, row: 1)
            else:
                expr, fn = self._scalar(spec.arg, child)
                col = self.materialize(f"aggarg.{spec.name}", expr, fn)
                arg_exprs.append(col.cur())
                arg_fns.append(fn)

        tuple_exprs: list[Expression] = [gated_key]
        tuple_exprs += [child.valid * child.columns[k] for k in node.group_keys]
        tuple_exprs += [child.valid * e for e in arg_exprs]
        tuple_exprs.append(child.valid)
        key_limbs = -(-(self.key_bits * (n_group + 1)) // self.limb_bits)
        sort = SortChip(
            self.cs, self.name("gsort"), tuple_exprs, 0, self.table, key_limbs
        )
        gb = GroupByChip(
            self.cs, self.name("gb"), sort.out[0].cur(), sort.out[0].prev()
        )
        valid_sorted = sort.out[-1]

        running: list[RunningAggChip] = []
        for j, spec in enumerate(node.aggregates):
            if spec.func not in (AggFunc.SUM, AggFunc.COUNT, AggFunc.AVG):
                raise CompileError(
                    f"aggregate {spec.func.value} is not wired into the "
                    "query compiler (SUM/COUNT/AVG cover the paper's "
                    "workload; MIN/MAX/STDDEV gates exist standalone)"
                )
            running.append(
                RunningAggChip(
                    self.cs,
                    self.name(f"run.{spec.name}"),
                    gb.q_first.cur(),
                    gb.q_rest.cur(),
                    gb.same.cur(),
                    sort.out[1 + n_group + j].cur(),
                )
            )
        count_chip = None
        if any(s.func is AggFunc.AVG for s in node.aggregates):
            count_chip = RunningAggChip(
                self.cs,
                self.name("run.__count"),
                gb.q_first.cur(),
                gb.q_rest.cur(),
                gb.same.cur(),
                valid_sorted.cur(),
            )

        compact_values: list[Expression] = [
            sort.out[1 + j].cur() for j in range(n_group)
        ]
        compact_values += [chip.m.cur() for chip in running]
        if count_chip is not None:
            compact_values.append(count_chip.m.cur())
        compact = CompactChip(
            self.cs,
            self.name("gcompact"),
            gb.end_expr * valid_sorted.cur(),
            compact_values,
            self.q_all.cur(),
        )

        usable = self.usable

        def public_step(asg: Assignment, result_count: int) -> None:
            asg.assign(gb.q_first, 0, 1)
            asg.assign(gb.q_last, usable - 1, 1)
            for row in range(1, usable):
                asg.assign(gb.q_rest, row, 1)
            for row in range(usable - 1):
                asg.assign(sort.q_pair, row, 1)

        self.public_steps.append(public_step)

        columns: dict[str, Expression] = {}
        scales: dict[str, int] = {}
        for j, key_name in enumerate(node.group_keys):
            columns[key_name] = compact.out[j].cur()
            scales[key_name] = child.scales[key_name]
        count_pos = n_group + len(running)
        div_chips: dict[str, DivModChip] = {}
        for j, spec in enumerate(node.aggregates):
            agg_col = compact.out[n_group + j]
            if spec.func is AggFunc.AVG:
                chip = DivModChip(
                    self.cs,
                    self.name(f"avg.{spec.name}"),
                    compact.q_out.cur(),
                    agg_col.cur() * 100,
                    compact.out[count_pos].cur(),
                    self.table,
                    self.value_limbs,
                )
                div_chips[spec.name] = chip
                columns[spec.name] = chip.quot.cur()
            else:
                columns[spec.name] = agg_col.cur()
            scales[spec.name] = spec.scale

        def witness_step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[child.node_id]
            width = 1 + n_group + n_aggs + 1
            data = []
            for i in range(usable):
                if i < len(rows) and valid[i]:
                    row = rows[i]
                    key = 1
                    for key_name in node.group_keys:
                        component = row[key_name]
                        if component >= shift:
                            raise CompileError(
                                f"group key component {component} exceeds "
                                f"{self.key_bits} bits"
                            )
                        key = key * shift + component
                    group_vals = [row[k] for k in node.group_keys]
                    args = [arg_fns[j](ctx, i) for j in range(n_aggs)]
                    data.append(tuple([key] + group_vals + args + [1]))
                else:
                    data.append((0,) * width)
            sorted_rows = sort.assign(ctx.asg, data)
            keys = [r[0] for r in sorted_rows]
            gb.assign(ctx.asg, keys)
            same_flags = [0] + [
                1 if keys[i] == keys[i - 1] else 0 for i in range(1, usable)
            ]
            for j, chip in enumerate(running):
                chip.assign(
                    ctx.asg, [r[1 + n_group + j] for r in sorted_rows], same_flags
                )
            if count_chip is not None:
                count_chip.assign(
                    ctx.asg, [r[-1] for r in sorted_rows], same_flags
                )
            # Collect real bins.
            results = []
            start = 0
            for i in range(usable + 1):
                if i == usable or (i > 0 and keys[i] != keys[i - 1]):
                    end = i - 1
                    if keys[end] != 0 and sorted_rows[end][-1] == 1:
                        group_vals = list(sorted_rows[end][1 : 1 + n_group])
                        sums = [
                            sum(r[1 + n_group + j] for r in sorted_rows[start:i])
                            for j in range(n_aggs)
                        ]
                        tup = group_vals + sums
                        if count_chip is not None:
                            tup.append(i - start)
                        results.append(tup)
                    start = i
            results.sort(key=lambda t: t[:n_group])
            compact.assign(ctx.asg, results)
            out_rows = []
            for i, tup in enumerate(results):
                row = {}
                for j, key_name in enumerate(node.group_keys):
                    row[key_name] = tup[j]
                for j, spec in enumerate(node.aggregates):
                    value = tup[n_group + j]
                    if spec.func is AggFunc.AVG:
                        count = tup[-1]
                        value, _ = div_chips[spec.name].assign_row(
                            ctx.asg, i, value * 100, count
                        )
                    row[spec.name] = value
                out_rows.append(row)
            ctx.rels[node_id] = (out_rows, [1] * len(out_rows))

        self.witness_steps.append(witness_step)
        return CircuitRelation(
            node_id, columns, compact.q_out.cur(), scales, dense=True
        )

    def _project(self, node: ProjectNode) -> CircuitRelation:
        child = self.build(node.child)
        node_id = id(node)
        columns: dict[str, Expression] = {}
        scales: dict[str, int] = {}
        fns: dict[str, Callable[[WitnessCtx, int], int]] = {}
        for (name, expr), out in zip(node.items, node.outputs):
            compiled, fn = self._scalar(expr, child)
            if isinstance(expr, ColRef) or compiled.degree() <= 1:
                columns[name] = compiled
            else:
                col = self.materialize(f"proj.{name}", compiled, fn)
                columns[name] = col.cur()
            scales[name] = out.scale
            fns[name] = fn

        def step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[child.node_id]
            out_rows = [
                {name: fns[name](ctx, i) for name, _ in node.items}
                for i in range(len(rows))
            ]
            ctx.rels[node_id] = (out_rows, list(valid))

        self.witness_steps.append(step)
        return CircuitRelation(node_id, columns, child.valid, scales, child.dense)

    def _order_by(self, node: SortNode) -> CircuitRelation:
        child = self.build(node.child)
        node_id = id(node)
        shift = 1 << self.key_bits
        bound = shift - 1
        big_bound = 1 << (self.key_bits * (len(node.keys) + 1))

        key_expr: Expression = Constant(1)
        for name, descending in node.keys:
            component = child.columns[name]
            if descending:
                component = Constant(bound) - component
            key_expr = key_expr * shift + component
        gated = child.valid * (Constant(big_bound) - key_expr)

        out_names = [c.name for c in node.outputs]
        tuple_exprs: list[Expression] = [gated]
        tuple_exprs += [child.valid * child.columns[n] for n in out_names]
        tuple_exprs.append(child.valid)
        key_limbs = -(-(self.key_bits * (len(node.keys) + 1) + 1) // self.limb_bits)
        sort = SortChip(
            self.cs,
            self.name("osort"),
            tuple_exprs,
            0,
            self.table,
            key_limbs,
            descending=True,
        )
        usable = self.usable

        def public_step(asg: Assignment, result_count: int) -> None:
            for row in range(usable - 1):
                asg.assign(sort.q_pair, row, 1)

        self.public_steps.append(public_step)

        def key_of(row: dict[str, int]) -> int:
            acc = 1
            for name, descending in node.keys:
                v = row[name]
                if v > bound:
                    raise CompileError(
                        f"ORDER BY value {v} exceeds {self.key_bits} bits"
                    )
                acc = acc * shift + ((bound - v) if descending else v)
            return big_bound - acc

        def step(ctx: WitnessCtx) -> None:
            rows, valid = ctx.rels[child.node_id]
            data = []
            for i in range(usable):
                if i < len(rows) and valid[i]:
                    data.append(
                        tuple(
                            [key_of(rows[i])]
                            + [rows[i][n] for n in out_names]
                            + [1]
                        )
                    )
                else:
                    data.append((0,) * (len(out_names) + 2))
            sorted_rows = sort.assign(ctx.asg, data)
            out_rows = [dict(zip(out_names, r[1:-1])) for r in sorted_rows]
            out_valid = [r[-1] for r in sorted_rows]
            ctx.rels[node_id] = (out_rows, out_valid)

        self.witness_steps.append(step)
        columns = {
            name: sort.out[1 + j].cur() for j, name in enumerate(out_names)
        }
        return CircuitRelation(
            node_id, columns, sort.out[-1].cur(), dict(child.scales), dense=True
        )

    # -- scalar / predicate compilation -----------------------------------

    def _scalar(
        self, expr: Expr, rel: CircuitRelation
    ) -> tuple[Expression, Callable[[WitnessCtx, int], int]]:
        if isinstance(expr, Literal):
            value, _ = self._encode_literal(expr, None)
            return Constant(value), (lambda ctx, row, v=value: v)
        if isinstance(expr, ColRef):
            name = f"{expr.table}.{expr.name}" if expr.table else expr.name
            if name not in rel.columns:
                raise CompileError(f"unknown column {name!r} in relation")
            circuit_expr = rel.columns[name]
            rel_id = rel.node_id

            def fn(ctx: WitnessCtx, row: int, name=name, rel_id=rel_id) -> int:
                rows, _ = ctx.rels[rel_id]
                return rows[row][name] if row < len(rows) else 0

            return circuit_expr, fn
        if isinstance(expr, BinOp):
            if expr.op in _CMP_OPS:
                return self._comparison(expr, rel)
            return self._arith(expr, rel)
        if isinstance(expr, Case):
            return self._case(expr, rel)
        if isinstance(expr, Extract):
            return self._extract_year(expr, rel)
        if isinstance(expr, (Logical, Not, Between, InList)):
            return self._predicate(expr, rel)
        raise CompileError(f"cannot compile scalar {type(expr).__name__}")

    def _arith(self, expr: BinOp, rel: CircuitRelation):
        left_expr, left_fn = self._scalar(expr.left, rel)
        right_expr, right_fn = self._scalar(expr.right, rel)
        ls = self._scale_of(expr.left, rel)
        rs = self._scale_of(expr.right, rel)
        if expr.op in (BinOpKind.ADD, BinOpKind.SUB):
            scale = max(ls, rs)
            le = left_expr * (scale // ls)
            re = right_expr * (scale // rs)
            combined = le + re if expr.op is BinOpKind.ADD else le - re
            sign = 1 if expr.op is BinOpKind.ADD else -1

            def fn(ctx, row):
                return (
                    left_fn(ctx, row) * (scale // ls)
                    + sign * right_fn(ctx, row) * (scale // rs)
                )

            return combined, fn
        if expr.op is BinOpKind.MUL:
            return (
                left_expr * right_expr,
                lambda ctx, row: left_fn(ctx, row) * right_fn(ctx, row),
            )
        # Division: floor(100 * a * rs / (ls * b)), proven exactly.  The
        # common factor of the scale multipliers is cancelled so the
        # divisor (which must fit the limb decomposition) stays small.
        import math

        g = math.gcd(100 * rs, ls)
        num_scale = (100 * rs) // g
        den_scale = ls // g
        chip = DivModChip(
            self.cs,
            self.name("div"),
            rel.valid,
            left_expr * num_scale,
            right_expr * den_scale,
            self.table,
            self.value_limbs,
        )
        rel_id = rel.node_id

        def fn(ctx: WitnessCtx, row: int) -> int:
            rows, valid = ctx.rels[rel_id]
            if row >= len(rows) or not valid[row]:
                return 0
            quot, _ = chip.assign_row(
                ctx.asg,
                row,
                left_fn(ctx, row) * num_scale,
                right_fn(ctx, row) * den_scale,
            )
            return quot

        return chip.quot.cur(), fn

    def _case(self, expr: Case, rel: CircuitRelation):
        cond_expr, cond_fn = self._predicate(expr.condition, rel)
        then_expr, then_fn = self._scalar(expr.then, rel)
        else_expr, else_fn = self._scalar(expr.otherwise, rel)
        ts = self._scale_of(expr.then, rel)
        os_ = self._scale_of(expr.otherwise, rel)
        scale = max(ts, os_)
        te = then_expr * (scale // ts)
        ee = else_expr * (scale // os_)
        combined = cond_expr * te + (Constant(1) - cond_expr) * ee

        def fn(ctx, row):
            if cond_fn(ctx, row):
                return then_fn(ctx, row) * (scale // ts)
            return else_fn(ctx, row) * (scale // os_)

        return combined, fn

    def _extract_year(self, expr: Extract, rel: CircuitRelation):
        inner_expr, inner_fn = self._scalar(expr.expr, rel)
        chip = YearChip(
            self.cs,
            self.name("year"),
            rel.valid,
            inner_expr,
            self.table,
            self.value_limbs,
        )
        self.public_steps.append(
            lambda asg, result_count: chip.assign_table(asg)
        )
        rel_id = rel.node_id

        def fn(ctx: WitnessCtx, row: int) -> int:
            rows, valid = ctx.rels[rel_id]
            if row >= len(rows) or not valid[row]:
                return 0
            return chip.assign_row(ctx.asg, row, inner_fn(ctx, row))

        return chip.year.cur(), fn

    def _predicate(self, expr: Expr, rel: CircuitRelation):
        """Compile a predicate to a 0/1 flag expression + witness fn."""
        if isinstance(expr, Logical):
            parts = [self._predicate(t, rel) for t in expr.terms]
            if expr.op == "and":
                combined: Expression = parts[0][0]
                for sub, _ in parts[1:]:
                    combined = combined * sub

                def fn(ctx, row):
                    result = 1
                    for _, sub_fn in parts:
                        result &= 1 if sub_fn(ctx, row) else 0
                    return result

            else:
                inv: Expression = Constant(1)
                for sub, _ in parts:
                    inv = inv * (Constant(1) - sub)
                combined = Constant(1) - inv

                def fn(ctx, row):
                    # Evaluate every branch (no short-circuit): each
                    # sub-predicate must assign its chip witnesses.
                    flags = [sub_fn(ctx, row) for _, sub_fn in parts]
                    return 1 if any(flags) else 0

            if combined.degree() > 4:
                col = self.materialize("flag", combined, fn)
                return col.cur(), fn
            return combined, fn
        if isinstance(expr, Not):
            sub, sub_fn = self._predicate(expr.term, rel)
            return (
                Constant(1) - sub,
                lambda ctx, row: 0 if sub_fn(ctx, row) else 1,
            )
        if isinstance(expr, Between):
            lowered = Logical(
                "and",
                (
                    BinOp(BinOpKind.GE, expr.expr, expr.low),
                    BinOp(BinOpKind.LE, expr.expr, expr.high),
                ),
            )
            return self._predicate(lowered, rel)
        if isinstance(expr, InList):
            terms = tuple(
                BinOp(BinOpKind.EQ, expr.expr, lit) for lit in expr.values
            )
            return self._predicate(Logical("or", terms), rel)
        if isinstance(expr, BinOp) and expr.op in _CMP_OPS:
            return self._comparison(expr, rel)
        raise CompileError(f"cannot compile predicate {type(expr).__name__}")

    def _comparison(self, expr: BinOp, rel: CircuitRelation):
        context = expr.left if isinstance(expr.left, ColRef) else (
            expr.right if isinstance(expr.right, ColRef) else None
        )
        left_expr, left_fn = self._scalar_operand(expr.left, rel, context)
        right_expr, right_fn = self._scalar_operand(expr.right, rel, context)
        ls = self._scale_of(expr.left, rel)
        rs = self._scale_of(expr.right, rel)
        scale = max(ls, rs)
        le = left_expr * (scale // ls)
        re = right_expr * (scale // rs)
        q = rel.valid
        rel_id = rel.node_id

        def aligned(ctx, row):
            return (
                left_fn(ctx, row) * (scale // ls),
                right_fn(ctx, row) * (scale // rs),
            )

        if expr.op in (BinOpKind.EQ, BinOpKind.NE):
            chip = EqFlagChip(self.cs, self.name("eq"), q, le, re)

            def fn(ctx: WitnessCtx, row: int) -> int:
                rows, valid = ctx.rels[rel_id]
                if row >= len(rows):
                    return 0
                a, b = aligned(ctx, row)
                bit = chip.assign_row(ctx.asg, row, a, b)
                if not valid[row]:
                    return 0
                return bit if expr.op is BinOpKind.EQ else 1 - bit

            flag = chip.eq_expr
            if expr.op is BinOpKind.NE:
                flag = Constant(1) - flag
            return flag, fn

        swap = expr.op in (BinOpKind.GT, BinOpKind.LE)
        invert = expr.op in (BinOpKind.GE, BinOpKind.LE)
        lhs, rhs = (re, le) if swap else (le, re)
        chip = LtFlagChip(
            self.cs, self.name("lt"), q, lhs, rhs, self.table, self.value_limbs
        )

        def fn(ctx: WitnessCtx, row: int) -> int:
            rows, valid = ctx.rels[rel_id]
            if row >= len(rows) or not valid[row]:
                return 0
            a, b = aligned(ctx, row)
            if swap:
                a, b = b, a
            bit = chip.assign_row(ctx.asg, row, a, b)
            return 1 - bit if invert else bit

        flag = chip.lt_expr
        if invert:
            flag = Constant(1) - flag
        return flag, fn

    def _scalar_operand(self, expr: Expr, rel: CircuitRelation, context):
        """Like _scalar but strings literals resolve against the other
        operand's dictionary."""
        if isinstance(expr, Literal) and expr.kind == "string":
            value, _ = self._encode_literal(expr, context)
            return Constant(value), (lambda ctx, row, v=value: v)
        return self._scalar(expr, rel)

    # -- literals / scales ------------------------------------------------

    def _encode_literal(self, lit: Literal, context: ColRef | None):
        if lit.kind == "int":
            return int(lit.value), 1
        if lit.kind == "decimal":
            return round(lit.value * 100), 100
        if lit.kind == "date":
            from repro.db.types import date_to_int

            return date_to_int(lit.value), 1
        if context is None:
            raise CompileError(
                f"string literal {lit.value!r} needs a column context"
            )
        table = self.bindings.get(context.table or "", context.table)
        return (
            self.db.encoder.decode_literal(
                f"{table}.{context.name}", lit.value
            ),
            1,
        )

    def _scale_of(self, expr: Expr, rel: CircuitRelation) -> int:
        if isinstance(expr, Literal):
            return 100 if expr.kind == "decimal" else 1
        if isinstance(expr, ColRef):
            name = f"{expr.table}.{expr.name}" if expr.table else expr.name
            return rel.scales.get(name, 1)
        if isinstance(expr, BinOp):
            ls = self._scale_of(expr.left, rel)
            rs = self._scale_of(expr.right, rel)
            if expr.op in (BinOpKind.ADD, BinOpKind.SUB):
                return max(ls, rs)
            if expr.op is BinOpKind.MUL:
                return ls * rs
            if expr.op is BinOpKind.DIV:
                return 100
            return 1
        if isinstance(expr, Case):
            return max(
                self._scale_of(expr.then, rel),
                self._scale_of(expr.otherwise, rel),
            )
        return 1
