"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "having", "limit",
    "and", "or", "not", "between", "in", "as", "asc", "desc", "sum", "avg",
    "count", "min", "max", "stddev", "variance", "median", "case", "when",
    "then", "else", "end", "date", "interval", "day", "month", "year",
    "extract", "distinct", "like",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


@dataclass
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_kw(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


class LexError(ValueError):
    pass


_OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/"]
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            j = sql.find("'", i + 1)
            if j < 0:
                raise LexError(f"unterminated string at {i}")
            tokens.append(Token(TokenKind.STRING, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # a trailing '.' (punctuation) is not part of a number
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenKind.IDENT, lowered, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                text = "<>" if op == "!=" else op
                tokens.append(Token(TokenKind.OP, text, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
