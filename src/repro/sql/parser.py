"""Recursive-descent parser for the SQL subset.

DATE literals with INTERVAL arithmetic (``date '1998-12-01' - interval
'90' day``) are constant-folded here, since circuits only see the final
day number.
"""

from __future__ import annotations

import datetime

from repro.sql.ast import (
    Agg,
    AggFunc,
    Between,
    BinOp,
    BinOpKind,
    Case,
    ColRef,
    Expr,
    Extract,
    InList,
    Literal,
    Logical,
    Not,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    pass


_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_AGG_FUNCS = {f.value for f in AggFunc}


class Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect_kw(self, word: str) -> Token:
        tok = self.advance()
        if not tok.is_kw(word):
            raise ParseError(f"expected {word!r}, got {tok.text!r} at {tok.position}")
        return tok

    def expect_punct(self, ch: str) -> Token:
        tok = self.advance()
        if tok.kind is not TokenKind.PUNCT or tok.text != ch:
            raise ParseError(f"expected {ch!r}, got {tok.text!r} at {tok.position}")
        return tok

    def accept_kw(self, word: str) -> bool:
        if self.peek().is_kw(word):
            self.advance()
            return True
        return False

    def accept_punct(self, ch: str) -> bool:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text == ch:
            self.advance()
            return True
        return False

    # -- entry -------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect_kw("select")
        select = [self._select_item()]
        while self.accept_punct(","):
            select.append(self._select_item())
        self.expect_kw("from")
        tables = [self._table_ref()]
        while self.accept_punct(","):
            tables.append(self._table_ref())
        where = None
        if self.accept_kw("where"):
            where = self._expr()
        group_by: list[Expr] = []
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_by.append(self._expr())
            while self.accept_punct(","):
                group_by.append(self._expr())
        having = None
        if self.accept_kw("having"):
            having = self._expr()
        order_by: list[OrderItem] = []
        if self.accept_kw("order"):
            self.expect_kw("by")
            order_by.append(self._order_item())
            while self.accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_kw("limit"):
            tok = self.advance()
            if tok.kind is not TokenKind.NUMBER:
                raise ParseError(f"LIMIT needs a number, got {tok.text!r}")
            limit = int(tok.text)
        self.accept_punct(";")
        tok = self.peek()
        if tok.kind is not TokenKind.EOF:
            raise ParseError(f"trailing input at {tok.position}: {tok.text!r}")
        return Query(select, tables, where, group_by, having, order_by, limit)

    # -- clauses --------------------------------------------------------------

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self.accept_kw("as"):
            tok = self.advance()
            alias = tok.text
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        tok = self.advance()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected table name, got {tok.text!r}")
        alias = None
        if self.accept_kw("as"):
            alias = self.advance().text
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return TableRef(tok.text, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        descending = False
        if self.accept_kw("desc"):
            descending = True
        else:
            self.accept_kw("asc")
        return OrderItem(expr, descending)

    # -- expressions (precedence: or < and < not < cmp < add < mul < unary) ---

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        terms = [self._and_expr()]
        while self.accept_kw("or"):
            terms.append(self._and_expr())
        return terms[0] if len(terms) == 1 else Logical("or", tuple(terms))

    def _and_expr(self) -> Expr:
        terms = [self._not_expr()]
        while self.accept_kw("and"):
            terms.append(self._not_expr())
        return terms[0] if len(terms) == 1 else Logical("and", tuple(terms))

    def _not_expr(self) -> Expr:
        if self.accept_kw("not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        tok = self.peek()
        if tok.kind is TokenKind.OP and tok.text in _COMPARISONS:
            op = BinOpKind(self.advance().text)
            right = self._additive()
            return BinOp(op, left, right)
        if tok.is_kw("between"):
            self.advance()
            low = self._additive()
            self.expect_kw("and")
            high = self._additive()
            return Between(left, low, high)
        if tok.is_kw("in"):
            self.advance()
            self.expect_punct("(")
            values = [self._literal_only()]
            while self.accept_punct(","):
                values.append(self._literal_only())
            self.expect_punct(")")
            return InList(left, tuple(values))
        if tok.is_kw("like"):
            raise ParseError(
                "LIKE predicates are excluded from this reproduction "
                "(the paper's evaluation excludes string pattern matching)"
            )
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.OP and tok.text in ("+", "-"):
                op_text = self.advance().text
                if self.peek().is_kw("interval"):
                    left = self._fold_interval_arith(left, op_text)
                    continue
                op = BinOpKind(op_text)
                left = BinOp(op, left, self._multiplicative())
            else:
                return left

    def _fold_interval_arith(self, left: Expr, op_text: str) -> Expr:
        """Fold ``date 'Y-M-D' +/- interval 'n' unit`` into a date
        literal (circuits only ever see the resolved day number)."""
        self.expect_kw("interval")
        amount_tok = self.advance()
        if amount_tok.kind is not TokenKind.STRING:
            raise ParseError("INTERVAL needs a quoted amount")
        unit_tok = self.advance()
        if unit_tok.text not in ("day", "month", "year"):
            raise ParseError(f"unsupported interval unit {unit_tok.text!r}")
        if not (isinstance(left, Literal) and left.kind == "date"):
            raise ParseError("INTERVAL arithmetic requires a date literal")
        base = datetime.date.fromisoformat(left.value)
        folded = _fold_interval(base, op_text, int(amount_tok.text), unit_tok.text)
        return Literal(folded, "date")

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.OP and tok.text in ("*", "/"):
                op = BinOpKind(self.advance().text)
                left = BinOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.OP and tok.text == "-":
            self.advance()
            inner = self._unary()
            if isinstance(inner, Literal) and inner.kind in ("int", "decimal"):
                return Literal(-inner.value, inner.kind)
            return BinOp(BinOpKind.SUB, Literal(0, "int"), inner)
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            self.advance()
            inner = self._expr()
            self.expect_punct(")")
            return inner
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            if "." in tok.text:
                return Literal(float(tok.text), "decimal")
            return Literal(int(tok.text), "int")
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal(tok.text, "string")
        if tok.is_kw("date"):
            self.advance()
            value = self.advance()
            if value.kind is not TokenKind.STRING:
                raise ParseError("DATE needs a quoted literal")
            return Literal(value.text, "date")
        if tok.is_kw("interval"):
            raise ParseError("INTERVAL only supported in date arithmetic")
        if tok.is_kw("case"):
            return self._case()
        if tok.is_kw("extract"):
            self.advance()
            self.expect_punct("(")
            part = self.advance()
            if not part.is_kw("year"):
                raise ParseError("only EXTRACT(YEAR FROM ...) is supported")
            self.expect_kw("from")
            inner = self._expr()
            self.expect_punct(")")
            return Extract("year", inner)
        if tok.kind is TokenKind.KEYWORD and tok.text in _AGG_FUNCS:
            return self._aggregate()
        if tok.kind is TokenKind.IDENT:
            return self._column_ref()
        raise ParseError(f"unexpected token {tok.text!r} at {tok.position}")

    def _case(self) -> Expr:
        self.expect_kw("case")
        self.expect_kw("when")
        condition = self._expr()
        self.expect_kw("then")
        then = self._expr()
        self.expect_kw("else")
        otherwise = self._expr()
        self.expect_kw("end")
        return Case(condition, then, otherwise)

    def _aggregate(self) -> Expr:
        func = AggFunc(self.advance().text)
        self.expect_punct("(")
        distinct = self.accept_kw("distinct")
        arg: Expr | None
        if self.peek().kind is TokenKind.OP and self.peek().text == "*":
            self.advance()
            arg = None
            if func is not AggFunc.COUNT:
                raise ParseError(f"{func.value}(*) is not valid SQL")
        else:
            arg = self._expr()
        self.expect_punct(")")
        return Agg(func, arg, distinct)

    def _column_ref(self) -> Expr:
        first = self.advance().text
        if self.accept_punct("."):
            tok = self.advance()
            if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise ParseError(f"expected column name after {first}.")
            return ColRef(first, tok.text)
        return ColRef(None, first)

    def _literal_only(self) -> Literal:
        expr = self._primary()
        if not isinstance(expr, Literal):
            raise ParseError("IN lists must contain literals")
        return expr

def _fold_interval(base: datetime.date, op: str, amount: int, unit: str) -> str:
    if unit == "day":
        result = base + datetime.timedelta(days=amount if op == "+" else -amount)
    elif unit == "month":
        months = base.year * 12 + (base.month - 1) + (amount if op == "+" else -amount)
        year, month = divmod(months, 12)
        result = base.replace(year=year, month=month + 1)
    elif unit == "year":
        delta = amount if op == "+" else -amount
        result = base.replace(year=base.year + delta)
    else:  # pragma: no cover - lexer restricts units
        raise ParseError(f"unsupported interval unit {unit!r}")
    return result.isoformat()


def parse(sql: str) -> Query:
    """Parse one SELECT statement."""
    return Parser(sql).parse_query()
