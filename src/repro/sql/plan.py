"""Logical query plans.

The planner lowers a parsed query into a linear operator chain -- the
"predefined execution plan" of paper section 4.6 that "outlines the
sequence and dependencies of operations, guiding the assembly of gates
in sequence".  Column references are resolved to qualified
``binding.column`` names; every node lists its output columns and their
value scales (fixed-point bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql.ast import AggFunc, Expr


@dataclass
class OutputColumn:
    """One output of a plan node: its name and fixed-point scale."""

    name: str
    scale: int = 1
    kind: str = "int"  # int | decimal | date | string -- presentation only


@dataclass
class PlanNode:
    outputs: list[OutputColumn] = field(default_factory=list, init=False)

    def output_names(self) -> list[str]:
        return [c.name for c in self.outputs]

    def output(self, name: str) -> OutputColumn:
        for col in self.outputs:
            if col.name == name:
                return col
        raise KeyError(f"no output column {name!r}")


@dataclass
class Scan(PlanNode):
    table: str
    binding: str


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: Expr  # ColRefs resolved to (binding, column)


@dataclass
class JoinNode(PlanNode):
    """PK-FK equijoin; ``left`` is the FK (row-defining) side."""

    left: PlanNode
    right: PlanNode
    fk_column: str  # qualified name in left's outputs
    pk_column: str  # qualified name in right's outputs


@dataclass
class DeriveNode(PlanNode):
    """Materialize a scalar expression as a new column."""

    child: PlanNode
    name: str
    expr: Expr
    scale: int = 1
    kind: str = "int"


@dataclass
class AggSpec:
    name: str
    func: AggFunc
    arg: Optional[Expr]  # None for COUNT(*)
    scale: int = 1
    kind: str = "int"


@dataclass
class AggregateNode(PlanNode):
    child: PlanNode
    group_keys: list[str]  # qualified column names (derive first)
    aggregates: list[AggSpec]


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    keys: list[tuple[str, bool]]  # (column name, descending)


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    items: list[tuple[str, Expr]]  # (output name, expression over child)


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    count: int


def walk(node: PlanNode):
    """Yield nodes bottom-up."""
    if isinstance(node, Scan):
        yield node
        return
    children = []
    if isinstance(node, JoinNode):
        children = [node.left, node.right]
    elif hasattr(node, "child"):
        children = [node.child]
    for child in children:
        yield from walk(child)
    yield node


def describe(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan tree (used by examples and EXPLAIN-style
    output)."""
    pad = "  " * indent
    if isinstance(node, Scan):
        return f"{pad}Scan({node.table} as {node.binding})"
    if isinstance(node, FilterNode):
        return f"{pad}Filter\n{describe(node.child, indent + 1)}"
    if isinstance(node, JoinNode):
        return (
            f"{pad}Join({node.fk_column} = {node.pk_column})\n"
            f"{describe(node.left, indent + 1)}\n"
            f"{describe(node.right, indent + 1)}"
        )
    if isinstance(node, DeriveNode):
        return f"{pad}Derive({node.name})\n{describe(node.child, indent + 1)}"
    if isinstance(node, AggregateNode):
        aggs = ", ".join(a.name for a in node.aggregates)
        keys = ", ".join(node.group_keys)
        return (
            f"{pad}Aggregate(keys=[{keys}], aggs=[{aggs}])\n"
            f"{describe(node.child, indent + 1)}"
        )
    if isinstance(node, SortNode):
        keys = ", ".join(f"{k}{' desc' if d else ''}" for k, d in node.keys)
        return f"{pad}Sort({keys})\n{describe(node.child, indent + 1)}"
    if isinstance(node, ProjectNode):
        items = ", ".join(name for name, _ in node.items)
        return f"{pad}Project({items})\n{describe(node.child, indent + 1)}"
    if isinstance(node, LimitNode):
        return f"{pad}Limit({node.count})\n{describe(node.child, indent + 1)}"
    return f"{pad}{type(node).__name__}"
