"""Query planning: name resolution, join ordering, operator lowering.

The planner turns a parsed :class:`~repro.sql.ast.Query` into the
operator chain of :mod:`repro.sql.plan`:

``Scan -> Filter (pushed down) -> Join* -> Derive* -> Aggregate ->
Filter(HAVING) -> Project -> Sort -> Limit``

Join ordering follows the foreign-key graph: the root is a binding that
only appears on the FK side of join predicates (the fact table in every
TPC-H query we reproduce), and each subsequent join brings in a table
referenced through a PK.  Equality predicates that are not FK-PK edges
(e.g. Q5's ``c_nationkey = s_nationkey``) become post-join filters.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

from repro.db.database import Database
from repro.db.types import SqlType
from repro.sql.ast import (
    Agg,
    AggFunc,
    Between,
    BinOp,
    BinOpKind,
    Case,
    ColRef,
    Expr,
    Extract,
    InList,
    Literal,
    Logical,
    Not,
    Query,
)
from repro.sql.plan import (
    AggregateNode,
    AggSpec,
    DeriveNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputColumn,
    PlanNode,
    ProjectNode,
    Scan,
    SortNode,
)


class PlanError(ValueError):
    pass


_COMPARE_OPS = {
    BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT,
    BinOpKind.LE, BinOpKind.GT, BinOpKind.GE,
}


def _qualified(ref: ColRef) -> str:
    return f"{ref.table}.{ref.name}"


class Planner:
    def __init__(self, db: Database):
        self.db = db
        self._fresh = itertools.count()

    # ------------------------------------------------------------------ API

    def plan(self, query: Query) -> PlanNode:
        bindings = self._resolve_bindings(query)
        resolver = _Resolver(self.db, bindings)

        where = resolver.resolve(query.where) if query.where else None
        join_preds, filters = self._split_where(where, bindings)

        node = self._build_join_tree(query, bindings, join_preds, filters, resolver)

        # Post-join filters (cross-binding equalities, residuals).
        for pred in filters["post"]:
            node = self._filter(node, pred)

        has_aggregates = bool(query.group_by) or any(
            _contains_agg(resolver.resolve(item.expr)) for item in query.select
        )
        if has_aggregates:
            node = self._aggregate(query, node, resolver)
        else:
            node = self._project_simple(query, node, resolver)

        if query.order_by:
            node = self._sort(query, node, resolver)
        if query.limit is not None:
            limited = LimitNode(node, query.limit)
            limited.outputs = list(node.outputs)
            node = limited
        return node

    # -------------------------------------------------------------- binding

    def _resolve_bindings(self, query: Query) -> dict[str, str]:
        bindings: dict[str, str] = {}
        for ref in query.tables:
            if ref.name not in self.db.tables:
                raise PlanError(f"unknown table {ref.name!r}")
            if ref.binding in bindings:
                raise PlanError(f"duplicate binding {ref.binding!r}")
            bindings[ref.binding] = ref.name
        return bindings

    # ---------------------------------------------------------- where split

    def _split_where(self, where: Expr | None, bindings: dict[str, str]):
        join_preds: list[tuple[ColRef, ColRef]] = []
        filters: dict[str, list] = {name: [] for name in bindings}
        filters["post"] = []
        if where is None:
            return join_preds, filters
        for conjunct in _conjuncts(where):
            refs = _column_refs(conjunct)
            tables = {r.table for r in refs}
            if (
                isinstance(conjunct, BinOp)
                and conjunct.op is BinOpKind.EQ
                and isinstance(conjunct.left, ColRef)
                and isinstance(conjunct.right, ColRef)
                and len(tables) == 2
            ):
                join_preds.append((conjunct.left, conjunct.right))
            elif len(tables) == 1:
                filters[next(iter(tables))].append(conjunct)
            else:
                filters["post"].append(conjunct)
        return join_preds, filters

    # ------------------------------------------------------------ join tree

    def _scan(self, binding: str, table: str) -> PlanNode:
        scan = Scan(table=table, binding=binding)
        schema = self.db.schema(table)
        scan.outputs = [
            OutputColumn(
                name=f"{binding}.{col.name}",
                scale=col.type.scale,
                kind=col.type.base.value,
            )
            for col in schema.columns
        ]
        return scan

    def _filter(self, child: PlanNode, predicate: Expr) -> PlanNode:
        node = FilterNode(child, predicate)
        node.outputs = list(child.outputs)
        return node

    def _build_join_tree(self, query, bindings, join_preds, filters, resolver):
        # Classify each join predicate as FK -> PK using the schemas.
        edges = []  # (fk_ref, pk_ref)
        for left, right in join_preds:
            fk_pk = self._orient(left, right, bindings)
            if fk_pk is None:
                filters["post"].append(BinOp(BinOpKind.EQ, left, right))
            else:
                edges.append(fk_pk)

        fk_bindings = {fk.table for fk, _ in edges}
        pk_bindings = {pk.table for _, pk in edges}

        if not edges:
            if len(bindings) > 1:
                raise PlanError("cross joins without predicates are unsupported")
            binding, table = next(iter(bindings.items()))
            node = self._scan(binding, table)
            for pred in filters[binding]:
                node = self._filter(node, pred)
            return node

        roots = [b for b in fk_bindings if b not in pk_bindings]
        if not roots:
            raise PlanError("cyclic join graph; cannot pick a fact root")
        root = roots[0]

        node = self._scan(root, bindings[root])
        for pred in filters[root]:
            node = self._filter(node, pred)
        joined = {root}
        remaining = list(edges)
        while remaining:
            progress = False
            for edge in list(remaining):
                fk, pk = edge
                if fk.table in joined and pk.table not in joined:
                    right = self._scan(pk.table, bindings[pk.table])
                    for pred in filters[pk.table]:
                        right = self._filter(right, pred)
                    join = JoinNode(
                        left=node,
                        right=right,
                        fk_column=_qualified(fk),
                        pk_column=_qualified(pk),
                    )
                    join.outputs = list(node.outputs) + list(right.outputs)
                    node = join
                    joined.add(pk.table)
                    remaining.remove(edge)
                    progress = True
            if not progress:
                # Leftover edges where both sides are joined already:
                # plain equality filters.
                for fk, pk in remaining:
                    if fk.table in joined and pk.table in joined:
                        filters["post"].append(
                            BinOp(BinOpKind.EQ, fk, pk)
                        )
                        remaining.remove((fk, pk))
                        progress = True
                if not progress:
                    raise PlanError(
                        "join graph is disconnected from the fact root"
                    )
        unjoined = set(bindings) - joined
        if unjoined:
            raise PlanError(f"tables never joined: {sorted(unjoined)}")
        return node

    def _orient(self, left: ColRef, right: ColRef, bindings):
        """Return (fk_ref, pk_ref) if the predicate is an FK-PK edge."""
        for a, b in ((left, right), (right, left)):
            schema_a = self.db.schema(bindings[a.table])
            schema_b = self.db.schema(bindings[b.table])
            target = schema_a.foreign_keys.get(a.name)
            if target and target[0] == schema_b.name and target[1] == b.name:
                return a, b
            # Also accept: b is a's table's primary key referenced ad hoc.
            if schema_b.primary_key == b.name and schema_a.primary_key != a.name:
                return a, b
        return None

    # ------------------------------------------------------------ aggregate

    def _aggregate(self, query: Query, node: PlanNode, resolver) -> PlanNode:
        # GROUP BY may name a select alias (e.g. "group by o_year" where
        # o_year is EXTRACT(...)): substitute the aliased expression.
        alias_exprs = {
            item.alias: item.expr for item in query.select if item.alias
        }
        # 1. Derive group keys that are not plain columns.
        key_names: list[str] = []
        derived: dict[Expr, str] = {}
        for key_expr in query.group_by:
            if (
                isinstance(key_expr, ColRef)
                and key_expr.table is None
                and key_expr.name in alias_exprs
            ):
                key_expr = alias_exprs[key_expr.name]
            resolved = resolver.resolve(key_expr)
            if isinstance(resolved, ColRef):
                if resolved.table is None:
                    raise PlanError(
                        f"cannot resolve GROUP BY column {resolved.name!r}"
                    )
                key_names.append(_qualified(resolved))
            else:
                name = f"__key{next(self._fresh)}"
                scale, kind = _infer_scale(resolved, node)
                dnode = DeriveNode(node, name, resolved, scale, kind)
                dnode.outputs = node.outputs + [OutputColumn(name, scale, kind)]
                node = dnode
                derived[resolved] = name
                key_names.append(name)

        # 2. Collect aggregate specs from SELECT, HAVING and ORDER BY.
        specs: list[AggSpec] = []
        spec_by_struct: dict = {}

        def intern_agg(agg: Agg) -> str:
            key = (agg.func, repr(agg.arg), agg.distinct)
            if key in spec_by_struct:
                return spec_by_struct[key]
            name = f"__agg{len(specs)}"
            arg = agg.arg
            if arg is not None:
                scale, kind = _infer_scale(arg, node)
            else:
                scale, kind = 1, "int"
            if agg.func is AggFunc.COUNT:
                scale, kind = 1, "int"
            elif agg.func is AggFunc.AVG:
                scale, kind = scale * 100, "decimal"
            elif agg.func is AggFunc.VARIANCE:
                scale, kind = scale * scale, "decimal"
            specs.append(AggSpec(name, agg.func, arg, scale, kind))
            spec_by_struct[key] = name
            return name

        alias_map: dict[str, tuple[str, int, str]] = {}
        items: list[tuple[str, Expr]] = []
        for i, item in enumerate(query.select):
            resolved = resolver.resolve(item.expr)
            rewritten = _rewrite_aggs(resolved, intern_agg)
            rewritten = _rewrite_keys(rewritten, derived)
            name = item.alias or (
                _qualified(resolved) if isinstance(resolved, ColRef) else f"col{i}"
            )
            items.append((name, rewritten))
            scale, kind = None, None  # filled after AggregateNode outputs known
            alias_map[name] = (name, 0, "")

        having_expr = None
        if query.having is not None:
            having_expr = _rewrite_aggs(
                resolver.resolve(query.having), intern_agg
            )

        agg_node = AggregateNode(node, key_names, specs)
        agg_node.outputs = [
            _find_output(node, key) for key in key_names
        ] + [OutputColumn(s.name, s.scale, s.kind) for s in specs]
        node = agg_node

        if having_expr is not None:
            node = self._filter(node, having_expr)

        project = ProjectNode(node, items)
        project.outputs = [
            OutputColumn(name, *_infer_scale(expr, node)) for name, expr in items
        ]
        return project

    def _project_simple(self, query: Query, node: PlanNode, resolver) -> PlanNode:
        items = []
        for i, item in enumerate(query.select):
            resolved = resolver.resolve(item.expr)
            name = item.alias or (
                _qualified(resolved) if isinstance(resolved, ColRef) else f"col{i}"
            )
            items.append((name, resolved))
        project = ProjectNode(node, items)
        project.outputs = [
            OutputColumn(name, *_infer_scale(expr, node)) for name, expr in items
        ]
        return project

    def _sort(self, query: Query, node: PlanNode, resolver) -> PlanNode:
        keys: list[tuple[str, bool]] = []
        names = set(node.output_names())
        for order in query.order_by:
            expr = order.expr
            if isinstance(expr, ColRef) and expr.table is None and expr.name in names:
                keys.append((expr.name, order.descending))
                continue
            resolved = resolver.resolve(expr)
            if isinstance(resolved, ColRef) and _qualified(resolved) in names:
                keys.append((_qualified(resolved), order.descending))
                continue
            raise PlanError(
                f"ORDER BY expression must be a select alias or output "
                f"column, got {expr}"
            )
        sort = SortNode(node, keys)
        sort.outputs = list(node.outputs)
        return sort


class _Resolver:
    """Qualify column references against the FROM bindings."""

    def __init__(self, db: Database, bindings: dict[str, str]):
        self.db = db
        self.bindings = bindings

    def resolve(self, expr: Expr) -> Expr:
        if isinstance(expr, ColRef):
            return self._resolve_ref(expr)
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, Logical):
            return Logical(expr.op, tuple(self.resolve(t) for t in expr.terms))
        if isinstance(expr, Not):
            return Not(self.resolve(expr.term))
        if isinstance(expr, Between):
            return Between(
                self.resolve(expr.expr),
                self.resolve(expr.low),
                self.resolve(expr.high),
            )
        if isinstance(expr, InList):
            return InList(self.resolve(expr.expr), expr.values)
        if isinstance(expr, Case):
            return Case(
                self.resolve(expr.condition),
                self.resolve(expr.then),
                self.resolve(expr.otherwise),
            )
        if isinstance(expr, Agg):
            arg = self.resolve(expr.arg) if expr.arg is not None else None
            return Agg(expr.func, arg, expr.distinct)
        if isinstance(expr, Extract):
            return Extract(expr.part, self.resolve(expr.expr))
        return expr

    def _resolve_ref(self, ref: ColRef) -> ColRef:
        if ref.table is not None:
            if ref.table not in self.bindings:
                # Could be a select alias used in HAVING/ORDER; leave as-is.
                return ref
            table = self.bindings[ref.table]
            if not self.db.schema(table).has_column(ref.name):
                raise PlanError(f"no column {ref.name!r} in {table!r}")
            return ColRef(ref.table, ref.name)
        matches = [
            binding
            for binding, table in self.bindings.items()
            if self.db.schema(table).has_column(ref.name)
        ]
        if len(matches) == 1:
            return ColRef(matches[0], ref.name)
        if not matches:
            # Probably a select alias (HAVING/ORDER BY); keep unqualified.
            return ref
        raise PlanError(f"ambiguous column {ref.name!r}: {matches}")


# ---------------------------------------------------------------- helpers


def _conjuncts(expr: Expr):
    if isinstance(expr, Logical) and expr.op == "and":
        for term in expr.terms:
            yield from _conjuncts(term)
    else:
        yield expr


def _column_refs(expr: Expr) -> list[ColRef]:
    out: list[ColRef] = []

    def visit(e: Expr) -> None:
        if isinstance(e, ColRef):
            out.append(e)
        elif isinstance(e, BinOp):
            visit(e.left)
            visit(e.right)
        elif isinstance(e, Logical):
            for t in e.terms:
                visit(t)
        elif isinstance(e, Not):
            visit(e.term)
        elif isinstance(e, Between):
            visit(e.expr)
            visit(e.low)
            visit(e.high)
        elif isinstance(e, InList):
            visit(e.expr)
        elif isinstance(e, Case):
            visit(e.condition)
            visit(e.then)
            visit(e.otherwise)
        elif isinstance(e, Agg) and e.arg is not None:
            visit(e.arg)
        elif isinstance(e, Extract):
            visit(e.expr)

    visit(expr)
    return out


def _contains_agg(expr: Expr) -> bool:
    if isinstance(expr, Agg):
        return True
    if isinstance(expr, BinOp):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    if isinstance(expr, Case):
        return any(
            _contains_agg(e) for e in (expr.condition, expr.then, expr.otherwise)
        )
    if isinstance(expr, Extract):
        return _contains_agg(expr.expr)
    return False


def _rewrite_aggs(expr: Expr, intern) -> Expr:
    if isinstance(expr, Agg):
        return ColRef(None, intern(expr))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _rewrite_aggs(expr.left, intern), _rewrite_aggs(expr.right, intern)
        )
    if isinstance(expr, Logical):
        return Logical(expr.op, tuple(_rewrite_aggs(t, intern) for t in expr.terms))
    if isinstance(expr, Not):
        return Not(_rewrite_aggs(expr.term, intern))
    return expr


def _rewrite_keys(expr: Expr, derived: dict[Expr, str]) -> Expr:
    for original, name in derived.items():
        if expr == original:
            return ColRef(None, name)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rewrite_keys(expr.left, derived),
            _rewrite_keys(expr.right, derived),
        )
    if isinstance(expr, Extract):
        for original, name in derived.items():
            if expr == original:
                return ColRef(None, name)
    return expr


def _find_output(node: PlanNode, name: str) -> OutputColumn:
    for col in node.outputs:
        if col.name == name:
            return col
    raise PlanError(f"column {name!r} not produced by child")


def _infer_scale(expr: Expr, node: PlanNode) -> tuple[int, str]:
    """The fixed-point scale and presentation kind of an expression over
    ``node``'s outputs."""
    if isinstance(expr, Literal):
        if expr.kind == "decimal":
            return 100, "decimal"
        if expr.kind == "date":
            return 1, "date"
        if expr.kind == "string":
            return 1, "string"
        return 1, "int"
    if isinstance(expr, ColRef):
        name = _qualified(expr) if expr.table else expr.name
        try:
            col = node.output(name)
        except KeyError:
            return 1, "int"
        return col.scale, col.kind
    if isinstance(expr, BinOp):
        ls, lk = _infer_scale(expr.left, node)
        rs, rk = _infer_scale(expr.right, node)
        if expr.op in (BinOpKind.ADD, BinOpKind.SUB):
            scale = max(ls, rs)
            kind = lk if lk == rk else "decimal"
            return scale, kind
        if expr.op is BinOpKind.MUL:
            return ls * rs, "decimal" if max(ls, rs) > 1 else "int"
        if expr.op is BinOpKind.DIV:
            return 100, "decimal"
        return 1, "int"  # comparisons
    if isinstance(expr, Case):
        ts, tk = _infer_scale(expr.then, node)
        os_, ok = _infer_scale(expr.otherwise, node)
        return max(ts, os_), tk if ts >= os_ else ok
    if isinstance(expr, Extract):
        return 1, "int"
    if isinstance(expr, Agg):
        raise PlanError("aggregates must be interned before scale inference")
    return 1, "int"
