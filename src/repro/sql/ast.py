"""Abstract syntax for the supported SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class AggFunc(enum.Enum):
    SUM = "sum"
    AVG = "avg"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    STDDEV = "stddev"
    VARIANCE = "variance"
    MEDIAN = "median"


@dataclass(frozen=True)
class Literal:
    """A constant: int, float (decimal), 'string', or date."""

    value: Union[int, float, str]
    kind: str  # "int" | "decimal" | "string" | "date"


@dataclass(frozen=True)
class ColRef:
    table: Optional[str]  # alias or table name; None = unqualified
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinOp:
    op: BinOpKind
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Logical:
    op: str  # "and" | "or"
    terms: tuple["Expr", ...]


@dataclass(frozen=True)
class Not:
    term: "Expr"


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    values: tuple[Literal, ...]


@dataclass(frozen=True)
class Case:
    """CASE WHEN cond THEN a ELSE b END (single branch, as in TPC-H Q8)."""

    condition: "Expr"
    then: "Expr"
    otherwise: "Expr"


@dataclass(frozen=True)
class Agg:
    func: AggFunc
    arg: Optional["Expr"]  # None for COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class Extract:
    part: str  # "year"
    expr: "Expr"


Expr = Union[Literal, ColRef, BinOp, Logical, Not, Between, InList, Case, Agg, Extract]


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Query:
    select: list[SelectItem]
    tables: list[TableRef]
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
