"""Malicious-prover soundness harness.

The completeness tests show honest proofs verify; this module attacks
the other direction.  A *tamper engine* takes one honest
``(vk, proof, instance)`` triple and enumerates mutations of the proof,
asserting every single one is rejected -- either by the strict wire
decoder (:meth:`repro.proving.proof.Proof.from_bytes`) or by the
cryptographic checks in :func:`repro.proving.verifier.verify_proof`.

Two mutation families:

**Field-level** (:func:`field_mutators`): every field of the
:class:`~repro.proving.proof.Proof` dataclass is perturbed through the
wire path -- points shifted by the curve generator, scalars bumped by
one, list entries dropped / duplicated / swapped, IPA rounds and final
scalars tampered.  Structural mutations (wrong counts) must die in the
decoder; value mutations must die in verification.

**Byte-level** (:func:`byte_mutations`): classes ``bit-flip``,
``truncate``, ``extend``, ``swap`` and ``duplicate`` applied directly
to the honest wire bytes, sampling positions with a stride so the sweep
stays fast at any proof size.  Swaps of equal bytes are skipped -- they
reproduce the honest encoding and would be false "accepts".

:func:`run_tamper_suite` drives both families and returns a
:class:`TamperReport`; the acceptance criterion everywhere is
``report.accepted == []``.

The harness also exposes :class:`ProverFaults`, a fault-injection knob
consumed by ``create_proof(..., _faults=...)`` to produce *honestly
computed but structurally out-of-spec* proofs (e.g. zero-padded
quotient chunks beyond the vk bound) -- the regression vector for the
h-chunk bound check, which byte mutations alone cannot reach because
the honest prover never emits such bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.proving.proof import Proof
from repro.proving.verifier import verify_proof
from repro.wire import WireFormatError


@dataclass
class ProverFaults:
    """Fault-injection switches for ``create_proof(..., _faults=...)``.

    Never set in production; exists so soundness tests can make an
    otherwise-honest prover emit structurally deviant proofs.

    ``extra_h_chunks``: append this many zero quotient chunks after the
    honest split.  The zero chunks do not change the quotient
    polynomial, so a verifier without the chunk-count bound accepts the
    proof -- the bound check is what rejects it.
    """

    extra_h_chunks: int = 0


@dataclass
class TamperReport:
    """Outcome of one tamper sweep."""

    total: int = 0
    rejected_decode: int = 0
    rejected_verify: int = 0
    #: labels of mutations that VERIFIED -- soundness bugs; must be [].
    accepted: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.total} mutations: {self.rejected_decode} rejected at "
            f"decode, {self.rejected_verify} rejected at verify, "
            f"{len(self.accepted)} ACCEPTED in "
            f"{self.elapsed_seconds:.1f}s"
        )


# -- field-level mutations --------------------------------------------------

Mutator = Callable[[Proof], None]


def _shift(pt):
    """A different valid point: the input shifted by the generator."""
    return pt + pt.curve.generator


def field_mutators(template: Proof) -> Iterator[tuple[str, Mutator]]:
    """Yield ``(label, mutate)`` pairs covering every Proof field.

    ``template`` is only inspected for shape (list lengths, dict keys);
    each mutator is applied to a *fresh* decode of the honest bytes.
    """

    def point_list(name: str, length: int):
        for i in range(length):
            yield (
                f"{name}[{i}]+G",
                lambda pr, i=i: getattr(pr, name).__setitem__(
                    i, _shift(getattr(pr, name)[i])
                ),
            )
        if length:
            yield f"{name}.drop", lambda pr: getattr(pr, name).pop()
            yield (
                f"{name}.dup",
                lambda pr: getattr(pr, name).append(getattr(pr, name)[-1]),
            )
        if length >= 2:
            def swap(pr, name=name):
                lst = getattr(pr, name)
                lst[0], lst[-1] = lst[-1], lst[0]

            if template and getattr(template, name)[0] != getattr(
                template, name
            )[-1]:
                yield f"{name}.swap", swap

    yield from point_list("advice_commitments", len(template.advice_commitments))
    yield from point_list(
        "permutation_z_commitments", len(template.permutation_z_commitments)
    )
    yield from point_list("h_commitments", len(template.h_commitments))

    for i in range(len(template.lookup_parts)):
        for attr in (
            "permuted_input_commitment",
            "permuted_table_commitment",
            "z_commitment",
        ):
            yield (
                f"lookup[{i}].{attr}+G",
                lambda pr, i=i, attr=attr: setattr(
                    pr.lookup_parts[i], attr, _shift(getattr(pr.lookup_parts[i], attr))
                ),
            )
        for attr in (
            "z_x",
            "z_wx",
            "permuted_input_x",
            "permuted_input_winv_x",
            "permuted_table_x",
        ):
            yield (
                f"lookup[{i}].{attr}+1",
                lambda pr, i=i, attr=attr: setattr(
                    pr.lookup_parts[i], attr, getattr(pr.lookup_parts[i], attr) + 1
                ),
            )

    for i in range(len(template.shuffle_parts)):
        yield (
            f"shuffle[{i}].z_commitment+G",
            lambda pr, i=i: setattr(
                pr.shuffle_parts[i],
                "z_commitment",
                _shift(pr.shuffle_parts[i].z_commitment),
            ),
        )
        for attr in ("z_x", "z_wx"):
            yield (
                f"shuffle[{i}].{attr}+1",
                lambda pr, i=i, attr=attr: setattr(
                    pr.shuffle_parts[i], attr, getattr(pr.shuffle_parts[i], attr) + 1
                ),
            )

    for field_name in ("advice_evals", "fixed_evals", "system_evals"):
        for key in getattr(template, field_name):
            yield (
                f"{field_name}[{key}]+1",
                lambda pr, field_name=field_name, key=key: getattr(
                    pr, field_name
                ).__setitem__(key, getattr(pr, field_name)[key] + 1),
            )

    for list_name in ("sigma_evals", "h_evals"):
        for i in range(len(getattr(template, list_name))):
            yield (
                f"{list_name}[{i}]+1",
                lambda pr, list_name=list_name, i=i: getattr(
                    pr, list_name
                ).__setitem__(i, getattr(pr, list_name)[i] + 1),
            )
        if getattr(template, list_name):
            yield (
                f"{list_name}.drop",
                lambda pr, list_name=list_name: getattr(pr, list_name).pop(),
            )

    for i, entry in enumerate(template.permutation_z_evals):
        for key in entry:
            yield (
                f"permutation_z_evals[{i}][{key}]+1",
                lambda pr, i=i, key=key: pr.permutation_z_evals[i].__setitem__(
                    key, pr.permutation_z_evals[i][key] + 1
                ),
            )

    for i, (_, ipa) in enumerate(template.openings):
        yield (
            f"openings[{i}].point+1",
            lambda pr, i=i: pr.openings.__setitem__(
                i, (pr.openings[i][0] + 1, pr.openings[i][1])
            ),
        )
        yield (
            f"openings[{i}].a+1",
            lambda pr, i=i: setattr(
                pr.openings[i][1], "a", pr.openings[i][1].a + 1
            ),
        )
        yield (
            f"openings[{i}].blind+1",
            lambda pr, i=i: setattr(
                pr.openings[i][1], "blind", pr.openings[i][1].blind + 1
            ),
        )
        for j in range(len(ipa.rounds)):
            for side, idx in (("L", 0), ("R", 1)):
                def tamper_round(pr, i=i, j=j, idx=idx):
                    left, right = pr.openings[i][1].rounds[j]
                    pair = [left, right]
                    pair[idx] = _shift(pair[idx])
                    pr.openings[i][1].rounds[j] = (pair[0], pair[1])

                yield f"openings[{i}].rounds[{j}].{side}+G", tamper_round
        yield (
            f"openings[{i}].rounds.drop",
            lambda pr, i=i: pr.openings[i][1].rounds.pop(),
        )
    if template.openings:
        yield "openings.drop", lambda pr: pr.openings.pop()
    if len(template.openings) >= 2:
        def swap_openings(pr):
            pr.openings[0], pr.openings[-1] = pr.openings[-1], pr.openings[0]

        yield "openings.swap", swap_openings


# -- byte-level mutations ---------------------------------------------------


def byte_mutations(
    data: bytes, stride: int | None = None
) -> Iterator[tuple[str, bytes]]:
    """Yield ``(label, mutated_bytes)`` for every mutation class.

    ``stride`` controls how many byte positions are sampled (default:
    about 40 positions spread over the proof); every class is exercised
    at the start, middle, and end regardless of stride.
    """
    n = len(data)
    if stride is None:
        stride = max(1, n // 40)
    positions = sorted(set(range(0, n, stride)) | {0, 1, n // 2, n - 1})

    for i in positions:
        flipped = bytearray(data)
        flipped[i] ^= 1 << (i % 8)
        yield f"bit-flip@{i}.{i % 8}", bytes(flipped)

    for cut in sorted({n - 1, n - 32, n - 64, n // 2, 4, 0}):
        if 0 <= cut < n:
            yield f"truncate->{cut}", data[:cut]

    yield "extend+1zero", data + b"\x00"
    yield "extend+32ff", data + b"\xff" * 32
    yield "extend+self-prefix", data + data[:17]

    for i in positions:
        j = (i + max(1, n // 3)) % n
        if i != j and data[i] != data[j]:
            swapped = bytearray(data)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            yield f"swap@{min(i, j)}<->{max(i, j)}", bytes(swapped)

    for i in positions[:: max(1, len(positions) // 8)]:
        yield f"duplicate@{i}", data[: i + 1] + data[i:]


# -- the driver -------------------------------------------------------------


def check_tampered_bytes(vk, data: bytes, instance: list[list[int]]) -> str:
    """Classify one mutated byte string: ``"decode"`` (rejected by the
    wire gate), ``"verify"`` (decoded but cryptographically rejected),
    or ``"accepted"`` (a soundness failure)."""
    try:
        proof = Proof.from_bytes(vk, data)
    except WireFormatError:
        return "decode"
    return "accepted" if verify_proof(vk, proof, instance) else "verify"


def check_tampered_aggregate(verifier, data: bytes) -> str:
    """Classify one mutated ``PDBA`` byte string against a
    :class:`~repro.system.verifier_node.VerifierNode`: ``"decode"``
    (rejected by the strict aggregate wire gate), ``"verify"`` (decoded
    but rejected by fingerprint binding or the folded verification), or
    ``"accepted"`` (a soundness failure)."""
    from repro.proving.aggregate import AggProof

    try:
        AggProof.from_bytes(data, verifier.field)
    except WireFormatError:
        return "decode"
    return "accepted" if verifier.verify_aggregate(data).accepted else "verify"


def run_aggregate_tamper_suite(
    verifier, agg_bytes: bytes, *, stride: int | None = None
) -> TamperReport:
    """Byte-level tamper sweep over an aggregated claim's ``PDBA``
    wire bytes (the aggregate is an *envelope* of proof claims, so
    field-level proof mutations are covered by :func:`run_tamper_suite`
    on the inner proofs; the new surface here is the envelope itself:
    fingerprint, counts, results, scan links, and entry framing).

    The honest bytes must accept first; then every mutation class
    (bit-flip / truncate / extend / swap / duplicate) must be rejected
    at decode or verify.  Acceptance criterion: ``report.accepted ==
    []``.
    """
    t0 = time.perf_counter()
    report = TamperReport()
    if check_tampered_aggregate(verifier, agg_bytes) != "accepted":
        raise AssertionError("honest aggregate failed its own round-trip")
    for label, mutated in byte_mutations(agg_bytes, stride):
        outcome = check_tampered_aggregate(verifier, mutated)
        report.total += 1
        if outcome == "decode":
            report.rejected_decode += 1
        elif outcome == "verify":
            report.rejected_verify += 1
        else:
            report.accepted.append(f"agg-bytes:{label}")
    report.elapsed_seconds = time.perf_counter() - t0
    return report


def run_tamper_suite(
    vk,
    proof: Proof,
    instance: list[list[int]],
    *,
    stride: int | None = None,
    include_field_level: bool = True,
    include_byte_level: bool = True,
) -> TamperReport:
    """Run the full tamper sweep against one honest proof.

    The honest bytes are round-trip-checked first (decode must succeed
    and verify must accept), then every mutation must be rejected.
    """
    t0 = time.perf_counter()
    report = TamperReport()
    honest = proof.to_bytes()
    if check_tampered_bytes(vk, honest, instance) != "accepted":
        raise AssertionError("honest proof failed its own wire round-trip")

    def record(label: str, outcome: str) -> None:
        report.total += 1
        if outcome == "decode":
            report.rejected_decode += 1
        elif outcome == "verify":
            report.rejected_verify += 1
        else:
            report.accepted.append(label)

    if include_field_level:
        template = Proof.from_bytes(vk, honest)
        for label, mutate in field_mutators(template):
            victim = Proof.from_bytes(vk, honest)
            mutate(victim)
            record(f"field:{label}", check_tampered_bytes(vk, victim.to_bytes(), instance))

    if include_byte_level:
        for label, mutated in byte_mutations(honest, stride):
            record(f"bytes:{label}", check_tampered_bytes(vk, mutated, instance))

    report.elapsed_seconds = time.perf_counter() - t0
    return report
