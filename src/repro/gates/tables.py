"""Fixed lookup tables.

The paper's Design C validates 8-bit integer segments against a
fixed-size table of 256 entries, "reused multiple times for each u8
cell check".  :class:`RangeTable` is that table, with the limb width as
a parameter so the ablation benchmarks can compare 4-, 8- and 16-bit
limbs (DESIGN.md section 5).
"""

from __future__ import annotations

from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem


class RangeTable:
    """A fixed column holding ``0 .. 2^bits - 1``.

    The circuit must have at least ``2^bits`` usable rows.  One table
    serves every limb lookup in the circuit (the reuse that makes
    Design C cheap).
    """

    def __init__(self, cs: ConstraintSystem, bits: int = 8, name: str = "u_table"):
        if bits < 1 or bits > 20:
            raise ValueError(f"unreasonable limb width {bits}")
        self.bits = bits
        self.size = 1 << bits
        self.column: Column = cs.fixed_column(name)

    def assign(self, assignment: Assignment) -> None:
        if assignment.usable_rows < self.size:
            raise ValueError(
                f"range table of {self.size} entries needs at least "
                f"{self.size} usable rows; circuit has {assignment.usable_rows}"
            )
        assignment.assign_column(self.column, list(range(self.size)))
