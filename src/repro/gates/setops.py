"""Set operations (paper section 4.5).

"The set operations can be implemented using the methods described for
the join gate":

- **set equality** is one shuffle argument (multiset equality of full
  row tuples) -- the paper's "sort both tables and compare tuples at
  each index" collapses to a single grand product in PLONKish form,
- **disjointness** reuses the join's sorted-merge-with-tags
  (:class:`~repro.gates.join.DisjointChip`),
- **intersection** is the join construction applied to full tuples,
- **union (distinct)** is sort + adjacent-duplicate suppression
  (:class:`DedupChip`).
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.compare import IsZeroChip
from repro.gates.join import DisjointChip
from repro.gates.sort import SortChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Constant, Expression


class DedupChip:
    """Given a *sorted* key column, expose a ``keep`` flag that is 1 on
    the first row of each run of equal keys (SELECT DISTINCT / UNION)."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q_first: Expression,
        q_rest: Expression,
        key: Expression,
        key_prev: Expression,
    ):
        self.keep: Column = cs.advice_column(f"{name}.keep")
        self._eq = IsZeroChip(cs, f"{name}.eq", q_rest, key - key_prev)
        cs.create_gate(
            name,
            [
                q_first * (self.keep.cur() - Constant(1)),
                q_rest
                * (self.keep.cur() - (Constant(1) - self._eq.is_zero_expr)),
            ],
        )

    def assign(self, asg: Assignment, keys: Sequence[int]) -> list[int]:
        flags = []
        for i, key in enumerate(keys):
            if i == 0:
                self._eq.assign_row(asg, 0, 1)
                flag = 1
            else:
                same = self._eq.assign_row(asg, i, key - keys[i - 1])
                flag = 1 - same
            asg.assign(self.keep, i, flag)
            flags.append(flag)
        return flags


class SetOpsChip:
    """Facade bundling the set-operation constructions."""

    def __init__(self, cs: ConstraintSystem, table: RangeTable, n_limbs: int = 8):
        self.cs = cs
        self.table = table
        self.n_limbs = n_limbs
        self._counter = 0

    def _name(self, op: str) -> str:
        self._counter += 1
        return f"setops.{op}{self._counter}"

    def assert_equal(
        self,
        a_exprs: Sequence[Expression],
        b_exprs: Sequence[Expression],
    ) -> None:
        """Multiset equality of two relations (one shuffle argument).
        For SQL SET semantics, deduplicate both sides first."""
        self.cs.add_shuffle(
            self._name("eq"), [list(a_exprs)], [list(b_exprs)]
        )

    def assert_disjoint(
        self,
        a_value: Expression,
        a_flag: Expression,
        b_value: Expression,
        b_flag: Expression,
    ) -> DisjointChip:
        return DisjointChip(
            self.cs,
            self._name("disjoint"),
            a_value,
            a_flag,
            b_value,
            b_flag,
            self.table,
            self.n_limbs,
        )

    def sorted_with_dedup(
        self,
        in_exprs: Sequence[Expression],
        key_index: int,
        q_first: Expression,
        q_rest: Expression,
    ) -> tuple[SortChip, DedupChip]:
        """Sort a relation and flag first occurrences -- the building
        block for UNION and DISTINCT."""
        sort = SortChip(
            self.cs,
            self._name("sort"),
            in_exprs,
            key_index,
            self.table,
            self.n_limbs,
        )
        key = sort.out[key_index]
        dedup = DedupChip(
            self.cs, self._name("dedup"), q_first, q_rest, key.cur(), key.prev()
        )
        return sort, dedup
