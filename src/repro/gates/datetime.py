"""Calendar gates.

``EXTRACT(YEAR FROM date)`` is nonlinear over the days-since-epoch
encoding, so it is proven with a fixed lookup table of year boundaries:
the prover supplies the year (plus the year's day range) as advice, a
lookup pins the triple to the public calendar table, and two
comparisons place the date inside the range.
"""

from __future__ import annotations

import datetime

from repro.db.types import date_to_int
from repro.gates.compare import AssertLeChip, AssertLtChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Expression

FIRST_YEAR = 1971
LAST_YEAR = 2099


class YearChip:
    """Proves ``year == EXTRACT(YEAR FROM date)`` on selector-gated rows."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        date: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self.year: Column = cs.advice_column(f"{name}.year")
        self.start: Column = cs.advice_column(f"{name}.start")
        self.end: Column = cs.advice_column(f"{name}.end")
        self.t_year: Column = cs.fixed_column(f"{name}.t_year")
        self.t_start: Column = cs.fixed_column(f"{name}.t_start")
        self.t_end: Column = cs.fixed_column(f"{name}.t_end")
        cs.add_lookup(
            f"{name}.calendar",
            [q * self.year.cur(), q * self.start.cur(), q * self.end.cur()],
            [self.t_year.cur(), self.t_start.cur(), self.t_end.cur()],
        )
        self._ge = AssertLeChip(
            cs, f"{name}.ge", q, self.start.cur(), date, table, n_limbs
        )
        self._lt = AssertLtChip(
            cs, f"{name}.lt", q, date, self.end.cur(), table, n_limbs
        )

    def assign_table(self, asg: Assignment) -> None:
        """Fill the calendar table (one row per supported year)."""
        row = 0
        for year in range(FIRST_YEAR, LAST_YEAR + 1):
            start = date_to_int(datetime.date(year, 1, 1))
            end = date_to_int(datetime.date(year + 1, 1, 1))
            asg.assign(self.t_year, row, year)
            asg.assign(self.t_start, row, start)
            asg.assign(self.t_end, row, end)
            row += 1

    def assign_row(self, asg: Assignment, row: int, days: int) -> int:
        from repro.db.types import int_to_date

        year = int_to_date(days).year
        start = date_to_int(datetime.date(year, 1, 1))
        end = date_to_int(datetime.date(year + 1, 1, 1))
        asg.assign(self.year, row, year)
        asg.assign(self.start, row, start)
        asg.assign(self.end, row, end)
        self._ge.assign_row(asg, row, start, days)
        self._lt.assign_row(asg, row, days, end)
        return year
