"""The sort gate (paper section 4.2).

Two properties are enforced, exactly as in the paper:

1. **Permutation integrity** (Equation 5): the output rows are a
   permutation of the input rows -- one shuffle (grand-product) argument
   over the full row tuples.
2. **Sortedness**: ``R_i <= R_{i+1}`` on adjacent data rows, via the
   limb-decomposed comparison of section 4.1 ("proving the transformed
   statement introduced in Equation 4 with the assistance of lookup
   tables").

Multi-attribute ordering uses a composite key: the caller concatenates
attributes into a single fixed-bit-width key expression (the paper's
"consistent bit-length representation ... 64-bit format"), built with
:meth:`SortChip.composite_key`.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.compare import AssertLeChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Expression


class SortChip:
    """Sorts a relation of ``len(in_exprs)`` columns by the column at
    ``key_index``.

    ``in_exprs`` must evaluate to all-zero tuples on rows that carry no
    data (gate them with a validity selector); the chip's output columns
    replicate that padding so the permutation argument balances.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        in_exprs: Sequence[Expression],
        key_index: int,
        table: RangeTable,
        n_limbs: int = 8,
        descending: bool = False,
    ):
        if not 0 <= key_index < len(in_exprs):
            raise ValueError("key_index out of range")
        self.name = name
        self.key_index = key_index
        self.descending = descending
        self.out: list[Column] = [
            cs.advice_column(f"{name}.out{i}") for i in range(len(in_exprs))
        ]
        cs.add_shuffle(
            f"{name}.perm",
            [list(in_exprs)],
            [[col.cur() for col in self.out]],
        )
        self.q_pair: Column = cs.fixed_column(f"{name}.q_pair")
        key = self.out[key_index]
        lhs, rhs = key.cur(), key.next()
        if descending:
            lhs, rhs = rhs, lhs
        self._le = AssertLeChip(
            cs, f"{name}.sorted", self.q_pair.cur(), lhs, rhs, table, n_limbs
        )

    def assign(
        self, asg: Assignment, rows: Sequence[Sequence[int]]
    ) -> list[tuple[int, ...]]:
        """Sort ``rows`` (each a tuple matching ``in_exprs``), assign
        the output columns and sortedness witnesses, and return the
        sorted rows.

        The caller guarantees ``rows`` equals the multiset the input
        expressions evaluate to on data rows (the shuffle enforces it).
        """
        m = len(rows)
        if m > asg.usable_rows:
            raise ValueError("more rows than the circuit can hold")
        sorted_rows = sorted(
            (tuple(r) for r in rows),
            key=lambda r: r[self.key_index],
            reverse=self.descending,
        )
        for i, row in enumerate(sorted_rows):
            for col, value in zip(self.out, row):
                asg.assign(col, i, value)
        for i in range(m - 1):
            asg.assign(self.q_pair, i, 1)
            lhs = sorted_rows[i][self.key_index]
            rhs = sorted_rows[i + 1][self.key_index]
            if self.descending:
                lhs, rhs = rhs, lhs
            self._le.assign_row(asg, i, lhs, rhs)
        return sorted_rows

    @staticmethod
    def composite_key(values: Sequence[int], bits_per_attr: int = 32) -> int:
        """Pack attribute values into one integer preserving
        lexicographic order (first attribute most significant)."""
        key = 0
        bound = 1 << bits_per_attr
        for v in values:
            if not 0 <= v < bound:
                raise ValueError(
                    f"attribute {v} does not fit in {bits_per_attr} bits"
                )
            key = (key << bits_per_attr) | v
        return key

    @staticmethod
    def composite_key_expr(
        exprs: Sequence[Expression], bits_per_attr: int = 32
    ) -> Expression:
        """The in-circuit counterpart of :meth:`composite_key`."""
        key: Expression | None = None
        shift = 1 << bits_per_attr
        for expr in exprs:
            key = expr if key is None else key * shift + expr
        if key is None:
            raise ValueError("no attributes")
        return key
