"""The join gate (paper section 4.4).

The PK-FK inner join ``T1.fk = T2.pk`` is proven through the paper's
three properties:

1. **Equality verification** -- every contributing T1 row carries a
   matched copy of its T2 partner, with the polynomial constraint
   ``r.attr1 - r.attr2 = 0``.
2. **Source verification** -- matched tuples are looked up in T2 (so a
   prover cannot invent partners).
3. **Completeness / exclusivity** -- non-contributing T1 rows prove
   their foreign key appears in *no* T2 row, through the paper's
   deduplicated sorted-merge: a single sorted column ``S`` receives
   (deduplicated) non-contributing foreign keys tagged 1 and all
   primary keys tagged 2; lookups force every source value into ``S``,
   sortedness makes equal values adjacent, and an adjacency constraint
   forbids equal neighbours with different tags -- hence no foreign key
   can equal a primary key.

Layout note: the paper reorders ``T1`` into contributing /
non-contributing halves (``T1'_p`` / ``T1'_non-p``).  Because this
implementation carries ZKSQL-style dummy tuples end to end (paper
section 3.4), the partition is represented *in place* by the boolean
``part`` column; the reordering shuffle is subsumed by the final
compaction shuffle of the query output.  The constraint census is the
same, and the layout stays oblivious.

Value encoding contract: join keys and validity-gated values are
nonzero (the database encoding layer guarantees codes >= 1), so the
all-zero tuple is reserved for padding rows.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.compare import AssertLeChip, IsZeroChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Constant, Expression


class DisjointChip:
    """Prove ``{a values where a_flag} ∩ {b values where b_flag} = ∅``.

    The sorted-merge-with-tags construction described in the module
    docstring.  Values must be >= 1; the number of distinct flagged
    ``a`` values plus flagged ``b`` rows must leave at least one padding
    row in the circuit.
    """

    TAG_A = 1
    TAG_B = 2

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        a_value: Expression,
        a_flag: Expression,
        b_value: Expression,
        b_flag: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self.s: Column = cs.advice_column(f"{name}.s")
        self.tag: Column = cs.advice_column(f"{name}.tag")
        #: sortedness selector: 1 on rows 0 .. usable-2.
        self.q_sort: Column = cs.fixed_column(f"{name}.q_sort")

        # Every flagged a-value appears in S tagged TAG_A; every flagged
        # b-value tagged TAG_B.  Unflagged rows contribute (0, 0), which
        # padding rows of S provide.
        cs.add_lookup(
            f"{name}.a_in_s",
            [a_flag * a_value, a_flag * self.TAG_A],
            [self.s.cur(), self.tag.cur()],
        )
        cs.add_lookup(
            f"{name}.b_in_s",
            [b_flag * b_value, b_flag * self.TAG_B],
            [self.s.cur(), self.tag.cur()],
        )
        # S ascending; equal neighbours must share a tag, so a value can
        # never carry both tags.
        self._le = AssertLeChip(
            cs,
            f"{name}.sorted",
            self.q_sort.cur(),
            self.s.cur(),
            self.s.next(),
            table,
            n_limbs,
        )
        self._eq = IsZeroChip(
            cs, f"{name}.adj_eq", self.q_sort.cur(), self.s.next() - self.s.cur()
        )
        cs.create_gate(
            f"{name}.tag_block",
            [
                self.q_sort.cur()
                * self._eq.is_zero_expr
                * (self.tag.next() - self.tag.cur())
            ],
        )

    def assign(
        self,
        asg: Assignment,
        a_values: Sequence[int],
        b_values: Sequence[int],
    ) -> None:
        """Build the sorted tagged column from the flagged values."""
        entries = sorted(
            [(v, self.TAG_A) for v in sorted(set(a_values))]
            + [(v, self.TAG_B) for v in b_values]
        )
        usable = asg.usable_rows
        if len(entries) > usable - 1:
            raise ValueError(
                "disjointness column overflow: "
                f"{len(entries)} entries for {usable} usable rows"
            )
        # Padding zeros occupy the low rows (they sort first).
        offset = usable - len(entries)
        values = [0] * offset + [v for v, _ in entries]
        tags = [0] * offset + [t for _, t in entries]
        for i in range(usable):
            asg.assign(self.s, i, values[i])
            asg.assign(self.tag, i, tags[i])
        for i in range(usable - 1):
            asg.assign(self.q_sort, i, 1)
            self._le.assign_row(asg, i, values[i], values[i + 1])
            self._eq.assign_row(asg, i, values[i + 1] - values[i])


class PkFkJoinChip:
    """Inner join on ``T1.fk = T2.pk``.

    Inputs are expression views of the two relations:

    - ``fk`` / ``t1_valid``: the foreign key column and validity flag of
      T1 (per row),
    - ``t2_exprs``: the T2 columns to carry into the result, primary key
      first, each *already gated* so padding rows read 0,
    - ``t2_valid``: T2's validity flag.

    Output: ``match`` columns (row-aligned with T1) holding the partner
    T2 tuple on contributing rows, and :attr:`out_valid_expr` as the
    result validity flag.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        fk: Expression,
        t1_valid: Expression,
        t2_exprs: Sequence[Expression],
        t2_valid: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        if not t2_exprs:
            raise ValueError("join needs at least the primary key column")
        self.name = name
        self.part: Column = cs.advice_column(f"{name}.part")
        self.match: list[Column] = [
            cs.advice_column(f"{name}.match{i}") for i in range(len(t2_exprs))
        ]
        part = self.part.cur()
        match_pk = self.match[0].cur()

        cs.create_gate(
            f"{name}.part_bool", [part * (Constant(1) - part)]
        )
        # Only valid T1 rows may contribute.
        cs.create_gate(f"{name}.part_valid", [part * (Constant(1) - t1_valid)])
        # Property 1: equality verification.
        cs.create_gate(f"{name}.eq", [part * (fk - match_pk)])
        # Property 2: source verification -- the matched tuple (plus its
        # validity) exists in T2.
        cs.add_lookup(
            f"{name}.match_src",
            [part * col.cur() for col in self.match] + [part],
            list(t2_exprs) + [t2_valid],
        )
        # Property 3: completeness -- non-contributing valid rows have a
        # foreign key disjoint from all primary keys.
        non_contributing = t1_valid * (Constant(1) - part)
        self._disjoint = DisjointChip(
            cs,
            f"{name}.disjoint",
            fk,
            non_contributing,
            t2_exprs[0],
            t2_valid,
            table,
            n_limbs,
        )

    @property
    def out_valid_expr(self) -> Expression:
        return self.part.cur()

    def assign(
        self,
        asg: Assignment,
        t1_keys: Sequence[tuple[int, int]],
        t2_rows: Sequence[Sequence[int]],
    ) -> list[int]:
        """Assign the join witness.

        ``t1_keys`` is the per-row (fk, valid) view of T1;
        ``t2_rows`` the valid T2 tuples (pk first) in row order.
        Returns the per-T1-row contribution flags.
        """
        pk_index: dict[int, Sequence[int]] = {}
        for row in t2_rows:
            pk_index.setdefault(row[0], row)

        flags: list[int] = []
        nonp_fks: list[int] = []
        for i, (fk, valid) in enumerate(t1_keys):
            partner = pk_index.get(fk) if valid else None
            flag = 1 if partner is not None else 0
            asg.assign(self.part, i, flag)
            if partner is not None:
                for col, value in zip(self.match, partner):
                    asg.assign(col, i, value)
            elif valid:
                nonp_fks.append(fk)
            flags.append(flag)
        self._disjoint.assign(
            asg, nonp_fks, [row[0] for row in t2_rows]
        )
        return flags
