"""The group-by gate (paper section 4.3).

Operates on a relation already sorted by the grouping key (compose with
:class:`~repro.gates.sort.SortChip`).  Produces the boundary indicator
columns of the paper's Figure 5:

- ``same``: 1 when the row's key equals the previous row's key
  (the equality constraint of Equations 6-7, via the inverse trick),
- ``start = 1 - same`` and ``end`` (last row of each bin),

which downstream aggregation chips
(:mod:`repro.gates.aggregate`) consume.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.compare import IsZeroChip
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Constant, Expression


class GroupByChip:
    """Boundary detection over a sorted key column."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        key: Expression,
        key_prev: Expression,
    ):
        """``key``/``key_prev`` are the grouping key at the current and
        previous row (typically ``col.cur()`` and ``col.prev()``)."""
        self.name = name
        #: 1 on the first data row.
        self.q_first: Column = cs.fixed_column(f"{name}.q_first")
        #: 1 on data rows 1..m-1.
        self.q_rest: Column = cs.fixed_column(f"{name}.q_rest")
        #: 1 on the last data row.
        self.q_last: Column = cs.fixed_column(f"{name}.q_last")
        self.same: Column = cs.advice_column(f"{name}.same")
        self.end: Column = cs.advice_column(f"{name}.end")

        # same = eq(key, key_prev) on rows 1.., forced to 0 on row 0.
        self._eq = IsZeroChip(
            cs, f"{name}.eq", self.q_rest.cur(), key - key_prev
        )
        cs.create_gate(
            f"{name}.same",
            [
                self.q_first.cur() * self.same.cur(),
                self.q_rest.cur() * (self.same.cur() - self._eq.is_zero_expr),
            ],
        )
        # end_i = 1 - same_{i+1} on non-final data rows; end = 1 on the
        # last data row.  q_rest at rotation +1 marks non-final rows.
        cs.create_gate(
            f"{name}.end",
            [
                self.q_rest.next()
                * (self.end.cur() - (Constant(1) - self.same.next())),
                self.q_last.cur() * (self.end.cur() - Constant(1)),
            ],
        )

    @property
    def start_expr(self) -> Expression:
        """1 at the first row of each bin."""
        return Constant(1) - self.same.cur()

    @property
    def end_expr(self) -> Expression:
        return self.end.cur()

    def assign(
        self, asg: Assignment, keys: Sequence[int]
    ) -> list[tuple[int, int]]:
        """Assign indicators for the sorted ``keys``; returns the bins
        as (start_row, end_row) inclusive pairs."""
        m = len(keys)
        if m == 0:
            return []
        asg.assign(self.q_first, 0, 1)
        asg.assign(self.q_last, m - 1, 1)
        asg.assign(self.same, 0, 0)
        self._eq.assign_row(asg, 0, 1)  # inactive row; any nonzero diff hint
        bins: list[tuple[int, int]] = []
        bin_start = 0
        for i in range(1, m):
            asg.assign(self.q_rest, i, 1)
            same = self._eq.assign_row(asg, i, keys[i] - keys[i - 1])
            asg.assign(self.same, i, same)
            if not same:
                bins.append((bin_start, i - 1))
                bin_start = i
        bins.append((bin_start, m - 1))
        for start, end in bins:
            asg.assign(self.end, end, 1)
        return bins
