"""String matching (paper section 4.5).

"We have developed capabilities for string matching and concatenation
by validating the equality of sub-strings in two strings using lookup
tables."

Strings are dictionary-encoded at the database layer (each distinct
string maps to a field code >= 1), so *equality* predicates are plain
field equality.  For substring/pattern checks, strings are additionally
exploded into a character table of ``(string_code, position, char)``
rows; :class:`StringMatchChip` proves ``pattern`` occurs in a string at
a prover-chosen offset with one lookup per pattern character.
"""

from __future__ import annotations

from typing import Sequence

from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Expression


class CharTable:
    """Fixed columns holding the exploded (code, position+1, char) rows
    of a public string dictionary.  Padding rows read (0, 0, 0)."""

    def __init__(self, cs: ConstraintSystem, name: str = "chars"):
        self.code: Column = cs.fixed_column(f"{name}.code")
        self.pos: Column = cs.fixed_column(f"{name}.pos")
        self.char: Column = cs.fixed_column(f"{name}.char")

    def assign(self, asg: Assignment, dictionary: dict[int, str]) -> None:
        row = 0
        for code in sorted(dictionary):
            for pos, ch in enumerate(dictionary[code]):
                asg.assign(self.code, row, code)
                asg.assign(self.pos, row, pos + 1)  # 1-based: 0 is padding
                asg.assign(self.char, row, ord(ch))
                row += 1


class StringMatchChip:
    """Prove a fixed pattern occurs in the string referenced by a code
    column, on selector-gated rows.

    For each pattern character ``j`` an advice column holds
    ``pos + j`` (constrained linearly), and a lookup asserts
    ``(code, pos + j, pattern[j])`` exists in the character table.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        code: Expression,
        pattern: str,
        chars: CharTable,
    ):
        if not pattern:
            raise ValueError("empty pattern")
        self.pattern = pattern
        self.pos: Column = cs.advice_column(f"{name}.pos")
        for j, ch in enumerate(pattern):
            cs.add_lookup(
                f"{name}.ch{j}",
                [q * code, q * (self.pos.cur() + j), q * ord(ch)],
                [chars.code.cur(), chars.pos.cur(), chars.char.cur()],
            )

    def assign_row(
        self, asg: Assignment, row: int, code: int, text: str
    ) -> int:
        """Find the pattern in ``text`` and assign the offset witness;
        returns the (1-based) match position."""
        index = text.find(self.pattern)
        if index < 0:
            raise ValueError(
                f"pattern {self.pattern!r} not found in string code {code}"
            )
        self.pos_value = index + 1
        asg.assign(self.pos, row, index + 1)
        return index + 1


def encode_dictionary(values: Sequence[str]) -> dict[str, int]:
    """Assign codes >= 1 to distinct strings, in sorted order so that
    code comparisons realize ORDER BY on the dictionary-encoded
    column."""
    return {s: i + 1 for i, s in enumerate(sorted(set(values)))}
