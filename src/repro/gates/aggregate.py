"""Aggregation gates (paper section 4.5).

``SUM``/``COUNT`` use the running column ``M`` of the paper's Figure 5:
``M_i = same_i * M_{i-1} + v_i`` -- within a bin the sum accumulates, at
a bin boundary it restarts.  The bin's final value sits on the bin-end
row, from which :class:`CompactChip` moves results into a dense output
region (the paper's output column ``O``) with one shuffle.

``AVG`` is exact integer division with remainder (:class:`DivModChip`),
``MIN``/``MAX`` read bin boundaries of a value-sorted relation, and
``STDDEV``/``VARIANCE`` combine sum-of-squares running columns with
:class:`DivModChip` and :class:`SqrtChip` (integer square root).
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.compare import AssertLeChip, AssertLtChip
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import ColumnQuery, Constant, Expression


def _rotate(expr: Expression, by: int) -> Expression:
    """Rotate a plain column reference; compound expressions would need
    per-node rotation, which no chip requires yet."""
    if isinstance(expr, ColumnQuery):
        return ColumnQuery(expr.column, expr.rotation + by)
    raise TypeError("can only rotate a direct column query")


class RunningAggChip:
    """The running-aggregate column ``M`` over group-by bins.

    ``M_i = same_i * M_{i-1} + value_i`` with ``M_0 = value_0``; pass
    ``value = Constant(1)`` gated by validity for ``COUNT``.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q_first: Expression,
        q_rest: Expression,
        same: Expression,
        value: Expression,
    ):
        self.m: Column = cs.advice_column(f"{name}.m")
        cs.create_gate(
            name,
            [
                q_first * (self.m.cur() - value),
                q_rest * (self.m.cur() - same * self.m.prev() - value),
            ],
        )

    def assign(
        self, asg: Assignment, values: Sequence[int], same_flags: Sequence[int]
    ) -> list[int]:
        """Fill M given per-row values and same-as-previous flags;
        returns the running values."""
        running: list[int] = []
        acc = 0
        for i, (value, same) in enumerate(zip(values, same_flags)):
            acc = (acc * same + value) if i else value
            asg.assign(self.m, i, acc)
            running.append(acc)
        return running


class CompactChip:
    """Move flagged rows into a dense prefix (the paper's output column
    O, "copying only the last record of each group-by bin, as indicated
    by the E column").

    One shuffle argument proves the multiset of flagged tuples equals
    the multiset of output tuples gated by the density flag.  The
    density flag is *advice* constrained to be a boolean prefix
    (1...10...0), so intermediate cardinalities stay hidden -- only the
    final result's cardinality becomes public, through the instance
    binding.  ``q_all`` is the fixed all-active-rows selector.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        flag: Expression,
        values: Sequence[Expression],
        q_all: Expression,
    ):
        self.q_out: Column = cs.advice_column(f"{name}.q_out")
        self.out: list[Column] = [
            cs.advice_column(f"{name}.out{i}") for i in range(len(values))
        ]
        q = self.q_out
        q_all_next = _rotate(q_all, 1)
        cs.create_gate(
            f"{name}.density",
            [
                # boolean on active rows
                q_all * q.cur() * (Constant(1) - q.cur()),
                # prefix property: a 1 may not follow a 0 (guarded away
                # from the blinding-row wrap by requiring q_all at both
                # the current and the next row)
                q_all * q_all_next * q.next() * (Constant(1) - q.cur()),
            ],
        )
        inputs = [flag] + [flag * v for v in values]
        table = [q.cur()] + [q.cur() * col.cur() for col in self.out]
        cs.add_shuffle(f"{name}.compact", [inputs], [table])

    def assign(
        self, asg: Assignment, rows: Sequence[Sequence[int]]
    ) -> None:
        """Write the selected tuples (in any order) into rows 0..r-1."""
        for i, row in enumerate(rows):
            asg.assign(self.q_out, i, 1)
            for col, value in zip(self.out, row):
                asg.assign(col, i, value)


class DivModChip:
    """Exact integer division: ``dividend = quot * divisor + rem`` with
    ``rem < divisor`` (the comparison uses lookup-table limbs, so SQL's
    integer/fixed-point division stays low degree)."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        dividend: Expression,
        divisor: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self.quot: Column = cs.advice_column(f"{name}.quot")
        self.rem: Column = cs.advice_column(f"{name}.rem")
        cs.create_gate(
            name,
            [q * (self.quot.cur() * divisor + self.rem.cur() - dividend)],
        )
        self._lt = AssertLtChip(
            cs, f"{name}.rem_lt", q, self.rem.cur(), divisor, table, n_limbs
        )

    def assign_row(
        self, asg: Assignment, row: int, dividend: int, divisor: int
    ) -> tuple[int, int]:
        if divisor <= 0:
            raise ValueError("division by zero or negative divisor")
        quot, rem = divmod(dividend, divisor)
        asg.assign(self.quot, row, quot)
        asg.assign(self.rem, row, rem)
        self._lt.assign_row(asg, row, rem, divisor)
        return quot, rem


class AvgChip:
    """``AVG = SUM / COUNT`` scaled by a fixed-point factor.

    ``avg = floor(sum * scale / count)`` -- exactness is guaranteed by
    the division-with-remainder constraints.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        sum_expr: Expression,
        count_expr: Expression,
        table: RangeTable,
        n_limbs: int = 8,
        scale: int = 1,
    ):
        self.scale = scale
        self._div = DivModChip(
            cs, name, q, sum_expr * scale, count_expr, table, n_limbs
        )
        self.avg: Column = self._div.quot

    def assign_row(
        self, asg: Assignment, row: int, total: int, count: int
    ) -> int:
        quot, _ = self._div.assign_row(asg, row, total * self.scale, count)
        return quot


class MinMaxChip:
    """MIN/MAX per group via sorting (paper: "MAX and MIN gates are
    facilitated by a sorting mechanism").

    Given a relation sorted by (group key, value), the bin-start row
    holds the group's MIN and the bin-end row its MAX; this chip simply
    names those selections so compilers can compact them out.
    """

    def __init__(
        self,
        start: Expression,
        end: Expression,
        value: Expression,
    ):
        self.min_flag = start
        self.max_flag = end
        self.min_select: Expression = start * value
        self.max_select: Expression = end * value


class SqrtChip:
    """Integer square root: ``s = floor(sqrt(x))`` via
    ``s^2 <= x < (s+1)^2`` (two limb-decomposed comparisons).  Used by
    the STDDEV aggregate."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        x: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self.s: Column = cs.advice_column(f"{name}.s")
        s = self.s.cur()
        self._le = AssertLeChip(cs, f"{name}.lo", q, s * s, x, table, n_limbs)
        self._lt = AssertLtChip(
            cs,
            f"{name}.hi",
            q,
            x,
            s * s + 2 * s + Constant(1),
            table,
            n_limbs,
        )

    def assign_row(self, asg: Assignment, row: int, x: int) -> int:
        import math

        s = math.isqrt(x)
        asg.assign(self.s, row, s)
        self._le.assign_row(asg, row, s * s, x)
        self._lt.assign_row(asg, row, x, (s + 1) * (s + 1))
        return s
