"""Range check gates (paper section 4.1, Designs A-C, plus the naive
encoding the paper rejects -- kept for the ablation benchmark).

Designs A and B (single and batched membership via the lookup-table
permutation of Equations 1-3) map directly onto the proving system's
lookup argument: :func:`assert_member` is the whole gate, and the
underlying argument *is* the paper's construction -- the prover builds
the sorted permutation ``P'`` of the inputs and the aligned permutation
``Q'`` of the table, enforces ``P'_i = Q'_i or P'_i = P'_{i-1}``
(Equation 1) and the grand-product permutation checks (Equations 2-3).
Batching (Design B) is inherent: one lookup argument covers every row
at the same cost shape.

Design C (bitwise decomposition into u8 cells validated against a
256-entry table) is :class:`RangeDecomposeChip`.
"""

from __future__ import annotations

from repro.gates.compare import _Decomposition
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import ConstraintSystem
from repro.plonkish.expression import Constant, Expression


def assert_member(
    cs: ConstraintSystem,
    name: str,
    input_expr: Expression,
    table_expr: Expression,
) -> None:
    """Designs A/B: every row's ``input_expr`` value must appear in the
    column of ``table_expr`` values.

    Gate the input with a selector (``q * value``) so that inactive rows
    contribute 0 -- unassigned table rows also read 0, so the padding
    matches automatically.
    """
    cs.add_lookup(name, [input_expr], [table_expr])


class RangeDecomposeChip:
    """Design C: prove ``value in [0, 2^(bits*n_limbs))`` by limb
    decomposition against a reusable fixed table.

    The constraint count matches the paper's analysis: ``n_limbs``
    lookups plus one recomposition constraint per row.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        value: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self._decomp = _Decomposition(cs, name, q, value, table, n_limbs)
        self.total_bits = self._decomp.total_bits

    def assign_row(self, asg: Assignment, row: int, value: int) -> None:
        self._decomp.assign_row(asg, row, value)

    def assign_inactive(self, asg: Assignment, row: int) -> None:
        self._decomp.assign_inactive(asg, row)


class NaiveRangeCheckChip:
    """The encoding the paper rejects: ``prod_{i=0}^{t} (value - i) = 0``.

    Constraint degree is ``t + 2`` -- the extended evaluation domain (and
    hence prover time) grows linearly with the bound ``t``, which is why
    this is "computationally infeasible for large t".  Exists solely for
    the Design-A-vs-naive ablation benchmark.
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        value: Expression,
        bound: int,
    ):
        if bound < 0 or bound > 64:
            raise ValueError(
                "naive range check beyond t=64 would explode the extended "
                "domain; use RangeDecomposeChip (that is the paper's point)"
            )
        self.bound = bound
        product: Expression = Constant(1)
        for i in range(bound + 1):
            product = product * (value - Constant(i))
        cs.create_gate(name, [q * product])

    def assign_row(self, asg: Assignment, row: int, value: int) -> None:
        if not 0 <= value <= self.bound:
            raise ValueError(f"value {value} outside [0, {self.bound}]")
        # No witness columns: the constraint alone enforces membership.
