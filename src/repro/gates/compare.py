"""Comparison chips (paper section 4.1, Design D and Equations 6-7).

All comparisons reduce to limb-decomposed range checks:

- ``AssertLeChip`` / ``AssertLtChip`` *assert* an order between two
  expressions (used for sortedness, where the relation must hold),
- ``LtFlagChip`` *computes* the order as a bit (paper Equation 4 with
  the prover-supplied ``check`` column -- used for filters, where either
  outcome is fine but must be proven correct),
- ``IsZeroChip`` / ``EqFlagChip`` implement the inverse trick of
  Equations 6-7.

Soundness of every chip here assumes its operands already lie in
``[0, 2^total_bits)``; the database loading layer range-checks all raw
values once (Design C), after which comparisons stay sound.
"""

from __future__ import annotations

from repro.algebra.field import Field
from repro.gates.tables import RangeTable
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Constant, Expression


class IsZeroChip:
    """Computes ``is_zero(value)`` as the degree-(d+1) expression
    ``1 - value * inv`` with the constraint ``value * (1 - value*inv) = 0``
    (the paper's Equations 6-7 with ``b = 1 - v*p``).

    The prover assigns ``inv = value^-1`` (or anything when value = 0).
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        value: Expression,
    ):
        self.inv: Column = cs.advice_column(f"{name}.inv")
        self.value_expr = value
        self.is_zero_expr: Expression = Constant(1) - value * self.inv.cur()
        cs.create_gate(name, [q * value * self.is_zero_expr])

    def assign_row(self, asg: Assignment, row: int, value: int) -> int:
        """Assign the inverse hint; returns the is_zero bit."""
        field: Field = asg.field
        value %= field.p
        if value == 0:
            asg.assign(self.inv, row, 0)
            return 1
        asg.assign(self.inv, row, field.inv(value))
        return 0


class EqFlagChip:
    """``eq(lhs, rhs)`` as an expression: IsZero applied to the
    difference."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        lhs: Expression,
        rhs: Expression,
    ):
        self._inner = IsZeroChip(cs, name, q, lhs - rhs)
        self.eq_expr: Expression = self._inner.is_zero_expr

    def assign_row(self, asg: Assignment, row: int, lhs: int, rhs: int) -> int:
        return self._inner.assign_row(asg, row, lhs - rhs)


class _Decomposition:
    """Shared machinery: allocate ``n_limbs`` advice columns, constrain
    ``target_expr == sum(limb_i * 2^(bits*i))`` under selector ``q``, and
    look every (selector-gated) limb up in the range table."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        target: Expression,
        table: RangeTable,
        n_limbs: int,
    ):
        if n_limbs < 1:
            raise ValueError("need at least one limb")
        self.table = table
        self.n_limbs = n_limbs
        self.bits = table.bits
        self.total_bits = table.bits * n_limbs
        self.limbs = [cs.advice_column(f"{name}.limb{i}") for i in range(n_limbs)]
        recomposed: Expression = Constant(0)
        for i, limb in enumerate(self.limbs):
            recomposed = recomposed + limb.cur() * (1 << (self.bits * i))
        cs.create_gate(f"{name}.recompose", [q * (target - recomposed)])
        for i, limb in enumerate(self.limbs):
            cs.add_lookup(
                f"{name}.limb{i}", [q * limb.cur()], [table.column.cur()]
            )

    def assign_row(self, asg: Assignment, row: int, value: int) -> None:
        if not 0 <= value < (1 << self.total_bits):
            raise ValueError(
                f"value {value} outside decomposable range "
                f"[0, 2^{self.total_bits})"
            )
        mask = (1 << self.bits) - 1
        for i, limb in enumerate(self.limbs):
            asg.assign(limb, row, (value >> (self.bits * i)) & mask)

    def assign_inactive(self, asg: Assignment, row: int) -> None:
        """Zero the limbs on rows where the selector is off."""
        for limb in self.limbs:
            asg.assign(limb, row, 0)


class AssertLeChip:
    """Asserts ``lhs <= rhs`` on selected rows by decomposing
    ``rhs - lhs`` into range-checked limbs (the transformed statement of
    paper Equation 4 with the check bit pinned)."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        lhs: Expression,
        rhs: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self._decomp = _Decomposition(cs, name, q, rhs - lhs, table, n_limbs)

    def assign_row(self, asg: Assignment, row: int, lhs: int, rhs: int) -> None:
        if lhs > rhs:
            raise ValueError(f"AssertLe witness violated: {lhs} > {rhs}")
        self._decomp.assign_row(asg, row, rhs - lhs)

    def assign_inactive(self, asg: Assignment, row: int) -> None:
        self._decomp.assign_inactive(asg, row)


class AssertLtChip:
    """Asserts ``lhs < rhs`` (decomposes ``rhs - lhs - 1``)."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        lhs: Expression,
        rhs: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self._decomp = _Decomposition(
            cs, name, q, rhs - lhs - Constant(1), table, n_limbs
        )

    def assign_row(self, asg: Assignment, row: int, lhs: int, rhs: int) -> None:
        if lhs >= rhs:
            raise ValueError(f"AssertLt witness violated: {lhs} >= {rhs}")
        self._decomp.assign_row(asg, row, rhs - lhs - 1)

    def assign_inactive(self, asg: Assignment, row: int) -> None:
        self._decomp.assign_inactive(asg, row)


class LtFlagChip:
    """Computes ``check = [lhs < rhs]`` with the paper's Equation 4:
    ``0 <= (lhs - rhs) + check * u < u`` for ``u = 2^total_bits``,
    enforced by limb decomposition.

    The check column is boolean-constrained; a wrong check value makes
    the decomposition impossible, exactly as the paper argues ("if the
    check values are inaccurately provided, proof generation fails").
    """

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        lhs: Expression,
        rhs: Expression,
        table: RangeTable,
        n_limbs: int = 8,
    ):
        self.check: Column = cs.advice_column(f"{name}.check")
        u = 1 << (table.bits * n_limbs)
        self.u = u
        cs.create_gate(
            f"{name}.bool", [q * self.check.cur() * (Constant(1) - self.check.cur())]
        )
        target = lhs - rhs + self.check.cur() * u
        self._decomp = _Decomposition(cs, name, q, target, table, n_limbs)
        self.lt_expr: Expression = self.check.cur()

    def assign_row(self, asg: Assignment, row: int, lhs: int, rhs: int) -> int:
        if not (0 <= lhs < self.u and 0 <= rhs < self.u):
            raise ValueError("LtFlag operands must be pre-range-checked")
        check = 1 if lhs < rhs else 0
        asg.assign(self.check, row, check)
        self._decomp.assign_row(asg, row, lhs - rhs + check * self.u)
        return check

    def assign_inactive(self, asg: Assignment, row: int) -> None:
        asg.assign(self.check, row, 0)
        self._decomp.assign_inactive(asg, row)
