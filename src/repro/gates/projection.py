"""Projection (paper section 4.5).

"We use selectors to project the desired columns by setting them to 1
for inclusion and 0 for exclusion.  Each selector controls a
multiplication gate."  The selector bits are fixed columns (part of the
public circuit), the projected outputs advice columns constrained to
``sel * input``.
"""

from __future__ import annotations

from typing import Sequence

from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ConstraintSystem
from repro.plonkish.expression import Expression


class ProjectionChip:
    """Column projection with fixed 0/1 selectors per column."""

    def __init__(
        self,
        cs: ConstraintSystem,
        name: str,
        q: Expression,
        in_exprs: Sequence[Expression],
        keep: Sequence[bool],
    ):
        if len(in_exprs) != len(keep):
            raise ValueError("one keep flag per input column")
        self.keep = list(keep)
        self.sel: list[Column] = [
            cs.fixed_column(f"{name}.sel{i}") for i in range(len(in_exprs))
        ]
        self.out: list[Column] = [
            cs.advice_column(f"{name}.out{i}") for i in range(len(in_exprs))
        ]
        cs.create_gate(
            name,
            [
                q * (out.cur() - sel.cur() * expr)
                for out, sel, expr in zip(self.out, self.sel, in_exprs)
            ],
        )

    def assign(
        self, asg: Assignment, rows: Sequence[Sequence[int]], q_rows: int
    ) -> None:
        """Assign selector bits and projected values for ``q_rows``
        active rows of input data ``rows``."""
        for i in range(q_rows):
            for j, sel in enumerate(self.sel):
                asg.assign(sel, i, 1 if self.keep[j] else 0)
        for i, row in enumerate(rows):
            for j, (out, value) in enumerate(zip(self.out, row)):
                asg.assign(out, i, value if self.keep[j] else 0)
