"""Custom gates for SQL query operations (paper section 4).

Each gate is a *chip*: it allocates columns and constraints on a shared
:class:`~repro.plonkish.ConstraintSystem` at configure time, and fills
witness values into an :class:`~repro.plonkish.Assignment` at synthesis
time.  All chips follow the paper's design rules:

- **low-degree constraints** (every chip stays within degree ~6 so the
  extended evaluation domain stays small),
- **lookup tables** for range checks instead of naive polynomial
  products (section 4.1),
- **oblivious layouts** -- fixed row patterns regardless of data values,
  with dummy tuples carrying ``valid`` flags (section 3.4).

Map from paper sections to modules:

====================  =======================================
paper                 module
====================  =======================================
4.1 Range check A/B   :mod:`repro.gates.range_check` (lookup membership)
4.1 Range check C     :mod:`repro.gates.range_check` (limb decomposition)
4.1 Range check D     :mod:`repro.gates.compare` (comparison flags)
4.2 Sort              :mod:`repro.gates.sort`
4.3 Group-by          :mod:`repro.gates.groupby`
4.4 Join              :mod:`repro.gates.join`
4.5 Aggregation       :mod:`repro.gates.aggregate`
4.5 Projection        :mod:`repro.gates.projection`
4.5 Set operations    :mod:`repro.gates.setops`
4.5 String matching   :mod:`repro.gates.strings`
====================  =======================================
"""

from repro.gates.tables import RangeTable
from repro.gates.compare import (
    AssertLeChip,
    AssertLtChip,
    EqFlagChip,
    IsZeroChip,
    LtFlagChip,
)
from repro.gates.range_check import (
    NaiveRangeCheckChip,
    RangeDecomposeChip,
    assert_member,
)
from repro.gates.sort import SortChip
from repro.gates.groupby import GroupByChip
from repro.gates.aggregate import (
    AvgChip,
    CompactChip,
    DivModChip,
    MinMaxChip,
    RunningAggChip,
    SqrtChip,
)
from repro.gates.join import PkFkJoinChip
from repro.gates.projection import ProjectionChip
from repro.gates.setops import SetOpsChip
from repro.gates.strings import StringMatchChip

__all__ = [
    "RangeTable",
    "IsZeroChip",
    "EqFlagChip",
    "LtFlagChip",
    "AssertLeChip",
    "AssertLtChip",
    "assert_member",
    "RangeDecomposeChip",
    "NaiveRangeCheckChip",
    "SortChip",
    "GroupByChip",
    "RunningAggChip",
    "CompactChip",
    "DivModChip",
    "AvgChip",
    "MinMaxChip",
    "SqrtChip",
    "PkFkJoinChip",
    "ProjectionChip",
    "SetOpsChip",
    "StringMatchChip",
]
