"""Recursive proof composition: the Halo-style accumulator.

Verifying an IPA opening costs one MSM that is *linear* in the
commitment size -- too expensive to do per proof when many proofs are
checked (or when a proof is verified inside another circuit).  The
accumulation trick [Bowe-Grigg-Hopwood 2019; BCMS 2020] observes that
the expensive part of every opening check has the shape::

    msm(G, a * s) + P == identity

where only ``s`` (a tensor of the round challenges) and ``P`` differ per
proof.  Taking a random linear combination of many such claims yields a
single claim of the same shape, so a batch of proofs needs **one** MSM
total -- this is the "recursive proof composition technique reducing the
overall proof size and computational overhead" the paper builds on.

:class:`Accumulator` collects deferred claims; :meth:`Accumulator.finalize`
performs the single combined check.  Lifecycle rules:

- The accumulator is bound to one exact parameter set by its content
  fingerprint (:meth:`repro.commit.params.PublicParams.fingerprint`).
  Folding a claim reduced against *any other* parameters -- even one
  with the same size but different generators -- would mix bases and
  silently verify nothing, so a mismatch raises
  :class:`~repro.errors.StateError`.
- :meth:`finalize` **consumes** the accumulator.  The folded claims are
  spent by the check; keeping them around would let a reused
  accumulator re-fold stale claims (or let a failed batch re-verify
  double-count).  After finalize, :meth:`defer_opening`,
  :meth:`absorb`, and a second :meth:`finalize` all raise
  :class:`~repro.errors.StateError` -- callers start a fresh
  accumulator per batch/epoch.
- :meth:`absorb` incrementally merges another (live) accumulator's
  claims under a fresh random weight and consumes the source -- the
  building block for epoch rollups that fold sub-batches as they
  complete.
"""

from __future__ import annotations

from repro import kernels
from repro.algebra.field import Field
from repro.commit.ipa import IpaProof, reduce_opening
from repro.commit.params import PublicParams
from repro.ecc import fixed_base
from repro.ecc.curve import Point
from repro.ecc.msm import msm
from repro.errors import StateError
from repro.transcript import Transcript


class Accumulator:
    """Accumulates deferred IPA base-folding claims.

    The random combination weights are the verifier's own coins (they
    must be unpredictable to the prover, which local randomness
    guarantees for a verifier checking received proofs).
    """

    def __init__(self, params: PublicParams, field: Field):
        self.params = params
        self.field = field
        #: Content hash of the exact parameter set every folded claim
        #: must have been reduced against.
        self.params_fingerprint = params.fingerprint()
        self._scalars = [0] * params.n
        self._residual: Point = params.curve.identity()
        self._deferred = 0
        self._consumed = False

    @property
    def deferred_count(self) -> int:
        return self._deferred

    @property
    def consumed(self) -> bool:
        """True once :meth:`finalize` (or :meth:`absorb` by another
        accumulator) has spent this accumulator's claims."""
        return self._consumed

    def _require_live(self, action: str) -> None:
        if self._consumed:
            raise StateError(
                f"accumulator already consumed by finalize()/absorb(); "
                f"cannot {action} -- create a fresh Accumulator per batch"
            )

    def defer_opening(
        self,
        params: PublicParams,
        transcript: Transcript,
        commitment: Point,
        x: int,
        value: int,
        proof: IpaProof,
        field: Field,
    ) -> bool:
        """Run the logarithmic checks now; stash the MSM claim.

        Returns False if the proof is structurally malformed (callers
        treat that as an immediate verification failure).  Raises
        :class:`~repro.errors.StateError` when ``params`` is not the
        exact parameter set this accumulator is bound to (equal size is
        not enough: different generators fold into the wrong bases) or
        when the accumulator was already finalized.
        """
        self._require_live("defer another opening")
        if params.fingerprint() != self.params_fingerprint:
            raise StateError(
                "accumulator bound to different public parameters "
                f"(fingerprint {self.params_fingerprint[:12]}..., got "
                f"{params.fingerprint()[:12]}...)"
            )
        reduced = reduce_opening(
            params, transcript, commitment, x, value, proof, field
        )
        if reduced is None:
            return False
        s, a, residual = reduced
        rho = self.field.rand()
        p = self.field.p
        weight = rho * a % p
        scalars = self._scalars
        for i, si in enumerate(s):
            scalars[i] = (scalars[i] + weight * si) % p
        self._residual = self._residual + residual * rho
        self._deferred += 1
        return True

    def absorb(self, other: "Accumulator") -> None:
        """Incrementally merge ``other``'s folded claims into this
        accumulator under a fresh random weight, consuming ``other``.

        Both accumulators must be live and bound to the same parameter
        fingerprint.  This is the epoch-rollup primitive: sub-batches
        can be folded as they complete, and one finalize settles all of
        them.
        """
        self._require_live("absorb another accumulator")
        other._require_live("be absorbed")
        if other.params_fingerprint != self.params_fingerprint:
            raise StateError(
                "cannot absorb an accumulator bound to different public "
                "parameters"
            )
        rho = self.field.rand()
        p = self.field.p
        scalars = self._scalars
        for i, si in enumerate(other._scalars):
            if si:
                scalars[i] = (scalars[i] + rho * si) % p
        self._residual = self._residual + other._residual * rho
        self._deferred += other._deferred
        other._consume()

    def finalize(self) -> bool:
        """Perform the single combined MSM check for all deferred
        claims, consuming the accumulator.

        The claims are spent whether the check passes or fails; any
        further :meth:`defer_opening`, :meth:`absorb`, or
        :meth:`finalize` raises :class:`~repro.errors.StateError`.
        """
        self._require_live("finalize")
        if self._deferred == 0:
            self._consume()
            return True
        if kernels.fastpath_enabled():
            tables = fixed_base.tables_for_params(self.params)
            folded = fixed_base.fixed_base_msm(tables, self._scalars)
        else:
            folded = msm(list(self.params.g), self._scalars)
        ok = (folded + self._residual).is_identity()
        self._consume()
        return ok

    def _consume(self) -> None:
        self._consumed = True
        self._scalars = []
        self._residual = self.params.curve.identity()
