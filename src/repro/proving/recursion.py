"""Recursive proof composition: the Halo-style accumulator.

Verifying an IPA opening costs one MSM that is *linear* in the
commitment size -- too expensive to do per proof when many proofs are
checked (or when a proof is verified inside another circuit).  The
accumulation trick [Bowe-Grigg-Hopwood 2019; BCMS 2020] observes that
the expensive part of every opening check has the shape::

    msm(G, a * s) + P == identity

where only ``s`` (a tensor of the round challenges) and ``P`` differ per
proof.  Taking a random linear combination of many such claims yields a
single claim of the same shape, so a batch of proofs needs **one** MSM
total -- this is the "recursive proof composition technique reducing the
overall proof size and computational overhead" the paper builds on.

:class:`Accumulator` collects deferred claims; :meth:`Accumulator.finalize`
performs the single combined check.
"""

from __future__ import annotations

from repro import kernels
from repro.algebra.field import Field
from repro.commit.ipa import IpaProof, reduce_opening
from repro.commit.params import PublicParams
from repro.ecc import fixed_base
from repro.ecc.curve import Point
from repro.ecc.msm import msm
from repro.transcript import Transcript


class Accumulator:
    """Accumulates deferred IPA base-folding claims.

    The random combination weights are the verifier's own coins (they
    must be unpredictable to the prover, which local randomness
    guarantees for a verifier checking received proofs).
    """

    def __init__(self, params: PublicParams, field: Field):
        self.params = params
        self.field = field
        self._scalars = [0] * params.n
        self._residual: Point = params.curve.identity()
        self._deferred = 0

    @property
    def deferred_count(self) -> int:
        return self._deferred

    def defer_opening(
        self,
        params: PublicParams,
        transcript: Transcript,
        commitment: Point,
        x: int,
        value: int,
        proof: IpaProof,
        field: Field,
    ) -> bool:
        """Run the logarithmic checks now; stash the MSM claim.

        Returns False if the proof is structurally malformed (callers
        treat that as an immediate verification failure).
        """
        if params.n != self.params.n:
            raise ValueError("accumulator bound to different parameters")
        reduced = reduce_opening(
            params, transcript, commitment, x, value, proof, field
        )
        if reduced is None:
            return False
        s, a, residual = reduced
        rho = self.field.rand()
        p = self.field.p
        weight = rho * a % p
        scalars = self._scalars
        for i, si in enumerate(s):
            scalars[i] = (scalars[i] + weight * si) % p
        self._residual = self._residual + residual * rho
        self._deferred += 1
        return True

    def finalize(self) -> bool:
        """Perform the single combined MSM check for all deferred claims."""
        if self._deferred == 0:
            return True
        if kernels.fastpath_enabled():
            tables = fixed_base.tables_for_params(self.params)
            folded = fixed_base.fixed_base_msm(tables, self._scalars)
        else:
            folded = msm(list(self.params.g), self._scalars)
        return (folded + self._residual).is_identity()
