"""Batched polynomial openings.

After the evaluation challenge ``x``, the prover must open dozens of
committed polynomials at a handful of points (``x``, ``omega*x``,
``omega^-1*x``, ``omega^u*x``).  Per distinct point we combine all
polynomials with powers of a transcript challenge ``v`` into a single
polynomial and produce one IPA opening proof -- so the opening cost is
``O(#points)`` IPA proofs of ``2 log n`` group elements each, not
``O(#polynomials)``.  This is what keeps PoneglyphDB's proofs in the
tens-of-kilobytes range (paper Table 4) while Libra's grow with circuit
depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.algebra.field import Field
from repro.commit.ipa import IpaProof, open_polynomial, verify_opening
from repro.commit.params import PublicParams
from repro.ecc.curve import Point
from repro.ecc.msm import msm
from repro.proving.recursion import Accumulator
from repro.transcript import Transcript


@dataclass
class OpeningClaim:
    """One (polynomial, point, evaluation) statement to batch."""

    point: int
    coeffs: list[int] | None  # prover side only
    blind: int | None  # prover side only
    commitment: Point
    evaluation: int


def _group_by_point(claims: list[OpeningClaim]) -> list[tuple[int, list[OpeningClaim]]]:
    groups: dict[int, list[OpeningClaim]] = {}
    order: list[int] = []
    for claim in claims:
        if claim.point not in groups:
            groups[claim.point] = []
            order.append(claim.point)
        groups[claim.point].append(claim)
    return [(pt, groups[pt]) for pt in order]


def multi_open(
    params: PublicParams,
    transcript: Transcript,
    claims: list[OpeningClaim],
    field: Field,
) -> list[tuple[int, IpaProof]]:
    """Produce one IPA proof per distinct opening point.

    The claims' commitments and evaluations must already be in the
    transcript (the main protocol absorbed them); only the batching
    challenge and the IPA rounds are added here.
    """
    p = field.p
    v = transcript.challenge_scalar(b"multiopen-v")
    proofs: list[tuple[int, IpaProof]] = []
    for point, group in _group_by_point(claims):
        with telemetry.span("multiopen.open", claims=len(group)):
            combined = [0] * params.n
            combined_blind = 0
            combined_eval = 0
            v_pow = 1
            for claim in group:
                assert claim.coeffs is not None and claim.blind is not None
                for i, c in enumerate(claim.coeffs):
                    combined[i] = (combined[i] + v_pow * c) % p
                combined_blind = (combined_blind + v_pow * claim.blind) % p
                combined_eval = (combined_eval + v_pow * claim.evaluation) % p
                v_pow = v_pow * v % p
            transcript.absorb_scalar(b"multiopen-point", point)
            transcript.absorb_scalar(b"multiopen-eval", combined_eval)
            proof = open_polynomial(
                params, transcript, combined, combined_blind, point, field
            )
            proofs.append((point, proof))
    return proofs


def multi_verify(
    params: PublicParams,
    transcript: Transcript,
    claims: list[OpeningClaim],
    openings: list[tuple[int, IpaProof]],
    field: Field,
    accumulator: Accumulator | None = None,
) -> bool:
    """Verify the batched openings produced by :func:`multi_open`.

    With an :class:`Accumulator`, the linear-time base-folding MSM of
    each IPA is deferred and amortized (recursive composition); the
    caller must eventually call ``accumulator.finalize()``.
    """
    p = field.p
    v = transcript.challenge_scalar(b"multiopen-v")
    groups = _group_by_point(claims)
    if len(groups) != len(openings):
        return False
    for (point, group), (proof_point, proof) in zip(groups, openings):
        if point != proof_point:
            return False
        # Structural rejection before the combining MSM: a proof with a
        # wrong round count can never verify, so fail before doing the
        # expensive group arithmetic on attacker-controlled input.
        if len(proof.rounds) != params.k:
            return False
        commitments: list[Point] = []
        scalars: list[int] = []
        combined_eval = 0
        v_pow = 1
        for claim in group:
            commitments.append(claim.commitment)
            scalars.append(v_pow)
            combined_eval = (combined_eval + v_pow * claim.evaluation) % p
            v_pow = v_pow * v % p
        combined_commitment = msm(commitments, scalars)
        transcript.absorb_scalar(b"multiopen-point", point)
        transcript.absorb_scalar(b"multiopen-eval", combined_eval)
        if accumulator is not None:
            if not accumulator.defer_opening(
                params, transcript, combined_commitment, point, combined_eval,
                proof, field,
            ):
                return False
        elif not verify_opening(
            params, transcript, combined_commitment, point, combined_eval,
            proof, field,
        ):
            return False
    return True
