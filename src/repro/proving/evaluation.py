"""Expression evaluation over extended evaluation domains.

The quotient (vanishing) argument needs every constraint polynomial
evaluated on the extended coset domain.  Expressions are evaluated
bottom-up with whole-array operations per AST node; a column query at
rotation ``r`` is a cyclic shift of the column's extended evaluations by
``r * (extended_n / n)`` positions.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra import backend as field_backend
from repro.plonkish.expression import (
    ColumnQuery,
    Constant,
    Expression,
    Product,
    Scaled,
    Sum,
)


def evaluate_expression_ext(
    expr: Expression,
    get_column_ext: Callable[[object], list[int]],
    ext_n: int,
    rotation_factor: int,
    p: int,
) -> list[int]:
    """Evaluate ``expr`` at every point of the extended domain.

    ``get_column_ext(column)`` must return the column polynomial's
    extended-coset evaluations (length ``ext_n``).

    The active field backend may evaluate the whole tree with one
    vectorized operation per AST node (columns lifted to limb arrays
    once, rotations as cyclic array shifts); the result is identical to
    the reference recursion below.
    """
    vectorized = field_backend.active().eval_expression_ext(
        expr, get_column_ext, ext_n, rotation_factor, p
    )
    if vectorized is not None:
        return vectorized
    if isinstance(expr, Constant):
        return [expr.value % p] * ext_n
    if isinstance(expr, ColumnQuery):
        evals = get_column_ext(expr.column)
        shift = (expr.rotation * rotation_factor) % ext_n
        if shift == 0:
            return list(evals)
        return evals[shift:] + evals[:shift]
    if isinstance(expr, Sum):
        left = evaluate_expression_ext(expr.left, get_column_ext, ext_n, rotation_factor, p)
        right = evaluate_expression_ext(expr.right, get_column_ext, ext_n, rotation_factor, p)
        return [(a + b) % p for a, b in zip(left, right)]
    if isinstance(expr, Product):
        left = evaluate_expression_ext(expr.left, get_column_ext, ext_n, rotation_factor, p)
        right = evaluate_expression_ext(expr.right, get_column_ext, ext_n, rotation_factor, p)
        return [a * b % p for a, b in zip(left, right)]
    if isinstance(expr, Scaled):
        inner = evaluate_expression_ext(expr.inner, get_column_ext, ext_n, rotation_factor, p)
        s = expr.scalar % p
        return [a * s % p for a in inner]
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def evaluate_expression_rows(
    expr: Expression,
    query: Callable[[object, int, int], int],
    rows: range,
    p: int,
) -> list[int]:
    """Evaluate ``expr`` for each row in ``rows`` against an assignment
    (``query(column, row, rotation)``).  Used to build lookup witness
    vectors."""
    return [
        expr.evaluate(lambda col, rot, r=row: query(col, r, rot), p)
        for row in rows
    ]
