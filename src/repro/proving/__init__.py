"""The Halo2-style proving system.

This package turns a PLONKish circuit plus an assignment into a
non-interactive zero-knowledge proof, and verifies such proofs:

1. :mod:`repro.proving.keygen` -- derive the proving key (fixed-column
   polynomials, copy-constraint sigma polynomials, system selectors)
   and the verification key (their commitments).
2. :mod:`repro.proving.prover` -- the five-round Fiat-Shamir protocol:
   commit advice; build lookup permutations (theta); build permutation
   and lookup grand products (beta, gamma); build the quotient
   polynomial (y); evaluate everything at a random point (x) and batch
   the openings through the IPA (:mod:`repro.proving.multiopen`).
3. :mod:`repro.proving.verifier` -- recompute every challenge, check
   the combined constraint identity at x, and verify the batched IPA
   openings -- optionally deferring their linear-time base-folding MSMs
   into a :class:`repro.proving.recursion.Accumulator` (the recursive
   proof-composition technique the paper leverages).
"""

from repro.proving.aggregate import AggEntry, AggProof, ScanLinkClaim, aggregate
from repro.proving.keygen import ProvingKey, VerifyingKey, keygen
from repro.proving.proof import Proof
from repro.proving.prover import create_proof
from repro.proving.recursion import Accumulator
from repro.proving.verifier import verify_proof

__all__ = [
    "keygen",
    "ProvingKey",
    "VerifyingKey",
    "Proof",
    "create_proof",
    "verify_proof",
    "Accumulator",
    "AggEntry",
    "AggProof",
    "ScanLinkClaim",
    "aggregate",
]
