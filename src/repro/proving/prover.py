"""Proof generation (paper workflow phase 4).

``create_proof`` executes the five Fiat-Shamir rounds described in the
package docstring.  The prover's asymptotics match the paper's design
goals: committing and FFT-ing each column is ``O(n log n)`` field work
plus one ``O(n)`` MSM, the quotient is evaluated on an extended domain
whose size is governed by the *maximum constraint degree* -- which is
why every gate in :mod:`repro.gates` is engineered for low degree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field as dc_field

from repro import telemetry
from repro.algebra.field import Field
from repro.errors import ReproError
from repro.algebra.poly import evaluate_coeffs
from repro.commit.ipa import commit_polynomial, commit_polynomials
from repro.plonkish.assignment import Assignment
from repro.plonkish.constraint_system import Column, ColumnKind
from repro.proving.evaluation import evaluate_expression_ext, evaluate_expression_rows
from repro.proving.keygen import ProvingKey
from repro.proving.multiopen import OpeningClaim, multi_open
from repro.proving.proof import LookupProofPart, Proof, ShuffleProofPart
from repro.proving.protocol import collect_queries, init_transcript


@dataclass
class ProverTiming:
    """Wall-clock breakdown of one proof generation, in seconds.

    This instrumentation feeds the paper's Figures 8 and 9 (per-step
    proof-generation breakdowns).  The numbers come from the telemetry
    spans the prover always measures (``prove.commit_advice`` etc.);
    with telemetry *enabled* the same spans additionally land in the
    ambient trace with full parent/child structure.
    """

    commit_advice: float = 0.0
    lookups: float = 0.0
    permutations: float = 0.0
    quotient: float = 0.0
    evaluations: float = 0.0
    multiopen: float = 0.0
    total: float = 0.0
    extra: dict[str, float] = dc_field(default_factory=dict)


class ProvingError(ReproError, ValueError):
    """Raised when the witness cannot satisfy the circuit (e.g. a lookup
    input value missing from its table)."""


def create_proof(
    pk: ProvingKey,
    assignment: Assignment,
    timing: ProverTiming | None = None,
    advice_blind_overrides: dict[int, int] | None = None,
    _faults: object | None = None,
) -> Proof:
    """Generate a non-interactive proof for ``assignment``.

    The assignment's instance columns are the public statement; all
    advice is witness.  Blinding rows are filled here.

    ``advice_blind_overrides`` pins the Pedersen blind of selected
    advice columns (by index) -- database scans use this so the prover
    can reveal the blinding delta that links the advice commitment to
    the public database commitment.

    ``_faults`` is the fault-injection hook for the soundness harness
    (:class:`repro.soundness.ProverFaults`): it makes the prover emit
    *structurally deviant but otherwise honestly-computed* proofs that
    the verifier must still reject.  Never set it in production code.
    """
    sw_total = telemetry.stopwatch().start()
    vk = pk.vk
    field: Field = vk.field
    p = field.p
    cs = vk.cs
    domain = pk.domain
    ext_domain = pk.extended_domain
    shift = pk.coset_shift
    n = domain.size
    usable = vk.usable_rows
    ext_n = ext_domain.size
    rotation_factor = ext_n // n
    params = vk.params

    queries = collect_queries(cs)

    assignment.fill_blinding()
    transcript = init_transcript(vk, assignment.instance)

    # ---- round 1: commit advice columns --------------------------------
    phase = telemetry.begin_span(
        "prove.commit_advice", columns=len(assignment.advice)
    )
    overrides = advice_blind_overrides or {}
    # Batched: per-column IFFTs and commitment MSMs are independent, so
    # they fan out across the worker pool when one is configured.
    advice_coeffs = domain.ifft_many(list(assignment.advice))
    advice_blinds = [
        overrides.get(index, field.rand())
        for index in range(len(assignment.advice))
    ]
    advice_commitments = commit_polynomials(
        params, list(zip(advice_coeffs, advice_blinds))
    )
    transcript.absorb_points(b"advice", advice_commitments)
    phase.end()
    if timing:
        timing.commit_advice = phase.duration

    # ---- round 2: lookup permutations (theta) ----------------------------
    phase = telemetry.begin_span("prove.lookup_commit", lookups=len(cs.lookups))
    theta = transcript.challenge_scalar(b"theta")

    def compress(exprs, row_count):
        vectors = [
            evaluate_expression_rows(
                e, assignment.query, range(row_count), p
            )
            for e in exprs
        ]
        out = [0] * row_count
        for vec in vectors:
            out = [(acc * theta + v) % p for acc, v in zip(out, vec)]
        return out

    lookup_data = []  # per lookup: dict with A, S, A', S', coeffs, blinds
    lookup_parts: list[LookupProofPart] = []
    for lookup in cs.lookups:
        telemetry.incr("lookup.rows", usable)
        a_vals = compress(lookup.inputs, usable)
        s_vals = compress(lookup.table, usable)
        a_perm, s_perm = _permute_lookup(lookup.name, a_vals, s_vals)
        # Blinding rows.
        a_full = a_perm + [field.rand() for _ in range(n - usable)]
        s_full = s_perm + [field.rand() for _ in range(n - usable)]
        a_coeffs = domain.ifft(a_full)
        s_coeffs = domain.ifft(s_full)
        a_blind, s_blind = field.rand(), field.rand()
        a_commit = commit_polynomial(params, a_coeffs, a_blind)
        s_commit = commit_polynomial(params, s_coeffs, s_blind)
        transcript.absorb_point(b"lookup-a", a_commit)
        transcript.absorb_point(b"lookup-s", s_commit)
        lookup_data.append(
            {
                "a_vals": a_vals,
                "s_vals": s_vals,
                "a_full": a_full,
                "s_full": s_full,
                "a_coeffs": a_coeffs,
                "s_coeffs": s_coeffs,
                "a_blind": a_blind,
                "s_blind": s_blind,
            }
        )
        lookup_parts.append(
            LookupProofPart(
                permuted_input_commitment=a_commit,
                permuted_table_commitment=s_commit,
                z_commitment=None,  # type: ignore[arg-type] - set below
            )
        )
    phase.end()
    if timing:
        timing.lookups = phase.duration

    # ---- round 3: grand products (beta, gamma) ---------------------------
    phase = telemetry.begin_span(
        "prove.grand_products", chunks=len(vk.permutation_chunks)
    )
    beta = transcript.challenge_scalar(b"beta")
    gamma = transcript.challenge_scalar(b"gamma")

    omegas = [1] * n
    for i in range(1, n):
        omegas[i] = omegas[i - 1] * domain.omega % p

    def column_values(col: Column) -> list[int]:
        if col.kind is ColumnKind.ADVICE:
            return assignment.advice[col.index]
        if col.kind is ColumnKind.FIXED:
            return assignment.fixed[col.index]
        return assignment.instance[col.index]

    # Permutation grand products, chunked (paper Eq. 2/3 generalized).
    deltas = [1]
    for _ in range(len(cs.equality_columns) - 1):
        deltas.append(deltas[-1] * vk.delta % p)

    perm_z_values: list[list[int]] = []
    carry = 1
    global_index = {col: i for i, col in enumerate(cs.equality_columns)}
    for chunk in vk.permutation_chunks:
        numer = [1] * usable
        denom = [1] * usable
        for col in chunk:
            gi = global_index[col]
            w = column_values(col)
            sigma = pk.sigma_values[gi]
            for i in range(usable):
                numer[i] = numer[i] * ((w[i] + beta * deltas[gi] % p * omegas[i] + gamma) % p) % p
                denom[i] = denom[i] * ((w[i] + beta * sigma[i] + gamma) % p) % p
        denom_inv = field.batch_inv(denom)
        z = [0] * n
        z[0] = carry
        for i in range(usable):
            nxt = z[i] * numer[i] % p * denom_inv[i] % p
            if i + 1 < n:
                z[i + 1] = nxt
        carry = z[usable]
        for i in range(usable + 1, n):
            z[i] = field.rand()
        perm_z_values.append(z)

    perm_z_coeffs = domain.ifft_many(perm_z_values)
    perm_z_blinds = [field.rand() for _ in perm_z_values]
    perm_z_commitments = commit_polynomials(
        params, list(zip(perm_z_coeffs, perm_z_blinds))
    )
    transcript.absorb_points(b"perm-z", perm_z_commitments)

    # Lookup grand products.
    for data, part in zip(lookup_data, lookup_parts):
        a_vals, s_vals = data["a_vals"], data["s_vals"]
        a_perm, s_perm = data["a_full"], data["s_full"]
        denom = [
            (a_perm[i] + beta) * (s_perm[i] + gamma) % p for i in range(usable)
        ]
        denom_inv = field.batch_inv(denom)
        z = [0] * n
        z[0] = 1
        for i in range(usable):
            ratio = (a_vals[i] + beta) * (s_vals[i] + gamma) % p * denom_inv[i] % p
            nxt = z[i] * ratio % p
            if i + 1 < n:
                z[i + 1] = nxt
        if z[usable] != 1:
            raise ProvingError(
                "lookup grand product does not close; an input value is "
                "missing from the lookup table"
            )
        for i in range(usable + 1, n):
            z[i] = field.rand()
        z_coeffs = domain.ifft(z)
        z_blind = field.rand()
        z_commit = commit_polynomial(params, z_coeffs, z_blind)
        transcript.absorb_point(b"lookup-z", z_commit)
        data["z_coeffs"] = z_coeffs
        data["z_blind"] = z_blind
        part.z_commitment = z_commit

    # Shuffle grand products (paper Eq. 5, generalized to tuple groups).
    shuffle_parts: list[ShuffleProofPart] = []
    shuffle_data: list[dict] = []
    for shuffle in cs.shuffles:
        input_vecs = [compress(group, usable) for group in shuffle.input_groups]
        table_vecs = [compress(group, usable) for group in shuffle.table_groups]
        denom = [1] * usable
        for vec in table_vecs:
            for i in range(usable):
                denom[i] = denom[i] * ((vec[i] + gamma) % p) % p
        numer = [1] * usable
        for vec in input_vecs:
            for i in range(usable):
                numer[i] = numer[i] * ((vec[i] + gamma) % p) % p
        denom_inv = field.batch_inv(denom)
        z = [0] * n
        z[0] = 1
        for i in range(usable):
            nxt = z[i] * numer[i] % p * denom_inv[i] % p
            if i + 1 < n:
                z[i + 1] = nxt
        if z[usable] != 1:
            raise ProvingError(
                f"shuffle {shuffle.name!r} grand product does not close; "
                "the two sides are not equal as multisets"
            )
        for i in range(usable + 1, n):
            z[i] = field.rand()
        z_coeffs = domain.ifft(z)
        z_blind = field.rand()
        z_commit = commit_polynomial(params, z_coeffs, z_blind)
        transcript.absorb_point(b"shuffle-z", z_commit)
        shuffle_data.append({"z_coeffs": z_coeffs, "z_blind": z_blind})
        shuffle_parts.append(ShuffleProofPart(z_commitment=z_commit))
    phase.end()
    if timing:
        timing.permutations = phase.duration

    # ---- round 4: quotient polynomial (y) ---------------------------------
    phase = telemetry.begin_span("prove.quotient", extended_n=ext_n)
    y = transcript.challenge_scalar(b"y")

    # Extended-coset evaluations of every polynomial the constraints read.
    ext_cache: dict[tuple[str, int], list[int]] = {}

    def ext_of_coeffs(tag: str, index: int, coeffs: list[int]) -> list[int]:
        key = (tag, index)
        if key not in ext_cache:
            ext_cache[key] = ext_domain.coset_fft(coeffs, shift)
        return ext_cache[key]

    instance_coeffs = domain.ifft_many(list(assignment.instance))

    def get_column_ext(col: Column) -> list[int]:
        if col.kind is ColumnKind.ADVICE:
            return ext_of_coeffs("advice", col.index, advice_coeffs[col.index])
        if col.kind is ColumnKind.FIXED:
            return pk.fixed[col.index].extended_evals
        return ext_of_coeffs("instance", col.index, instance_coeffs[col.index])

    x_ext = [0] * ext_n
    x_ext[0] = shift % p
    for j in range(1, ext_n):
        x_ext[j] = x_ext[j - 1] * ext_domain.omega % p

    combined = [0] * ext_n

    def fold_in(values: list[int]) -> None:
        for j in range(ext_n):
            combined[j] = (combined[j] * y + values[j]) % p

    def rot(values: list[int], by_rows: int) -> list[int]:
        s = (by_rows * rotation_factor) % ext_n
        return values[s:] + values[:s]

    l0_ext = pk.system["l0"].extended_evals
    l_last_ext = pk.system["l_last"].extended_evals
    active_ext = pk.system["l_active"].extended_evals

    # 1) gate constraints (implicitly gated to active rows, so advice
    #    cells randomized in the blinding region never violate gates)
    for gate in cs.gates:
        for constraint in gate.constraints:
            values = evaluate_expression_ext(
                constraint, get_column_ext, ext_n, rotation_factor, p
            )
            fold_in(
                [active_ext[t] * values[t] % p for t in range(ext_n)]
            )

    # 2) permutation constraints
    perm_z_ext = [
        ext_of_coeffs("perm-z", j, coeffs) for j, coeffs in enumerate(perm_z_coeffs)
    ]
    for j, chunk in enumerate(vk.permutation_chunks):
        if j == 0:
            fold_in(
                [l0_ext[t] * ((perm_z_ext[0][t] - 1) % p) % p for t in range(ext_n)]
            )
        else:
            prev_rot = rot(perm_z_ext[j - 1], usable)
            fold_in(
                [
                    l0_ext[t] * ((perm_z_ext[j][t] - prev_rot[t]) % p) % p
                    for t in range(ext_n)
                ]
            )
        numer = [1] * ext_n
        denom = [1] * ext_n
        for col in chunk:
            gi = global_index[col]
            w_ext = get_column_ext(col)
            sigma_ext = pk.sigmas[gi].extended_evals
            d_gi = deltas[gi]
            for t in range(ext_n):
                numer[t] = numer[t] * ((w_ext[t] + beta * d_gi % p * x_ext[t] + gamma) % p) % p
                denom[t] = denom[t] * ((w_ext[t] + beta * sigma_ext[t] + gamma) % p) % p
        z_next = rot(perm_z_ext[j], 1)
        z_cur = perm_z_ext[j]
        fold_in(
            [
                active_ext[t]
                * ((z_next[t] * denom[t] - z_cur[t] * numer[t]) % p)
                % p
                for t in range(ext_n)
            ]
        )
    if vk.permutation_chunks:
        z_last_next = rot(perm_z_ext[-1], 1)
        fold_in(
            [l_last_ext[t] * ((z_last_next[t] - 1) % p) % p for t in range(ext_n)]
        )

    # 3) lookup constraints
    for li, (lookup, data) in enumerate(zip(cs.lookups, lookup_data)):
        a_ext = ext_of_coeffs("lookup-a", li, data["a_coeffs"])
        s_ext = ext_of_coeffs("lookup-s", li, data["s_coeffs"])
        z_ext = ext_of_coeffs("lookup-z", li, data["z_coeffs"])
        # Compressed input/table expressions on the extended domain.
        a_input = [0] * ext_n
        for expr in lookup.inputs:
            vals = evaluate_expression_ext(
                expr, get_column_ext, ext_n, rotation_factor, p
            )
            a_input = [(acc * theta + v) % p for acc, v in zip(a_input, vals)]
        s_table = [0] * ext_n
        for expr in lookup.table:
            vals = evaluate_expression_ext(
                expr, get_column_ext, ext_n, rotation_factor, p
            )
            s_table = [(acc * theta + v) % p for acc, v in zip(s_table, vals)]
        z_next = rot(z_ext, 1)
        a_prev = rot(a_ext, -1)
        fold_in([l0_ext[t] * ((z_ext[t] - 1) % p) % p for t in range(ext_n)])
        fold_in(
            [
                active_ext[t]
                * (
                    (
                        z_next[t]
                        * ((a_ext[t] + beta) % p)
                        % p
                        * ((s_ext[t] + gamma) % p)
                        - z_ext[t]
                        * ((a_input[t] + beta) % p)
                        % p
                        * ((s_table[t] + gamma) % p)
                    )
                    % p
                )
                % p
                for t in range(ext_n)
            ]
        )
        fold_in([l_last_ext[t] * ((z_next[t] - 1) % p) % p for t in range(ext_n)])
        fold_in(
            [l0_ext[t] * ((a_ext[t] - s_ext[t]) % p) % p for t in range(ext_n)]
        )
        fold_in(
            [
                active_ext[t]
                * ((a_ext[t] - s_ext[t]) % p)
                % p
                * ((a_ext[t] - a_prev[t]) % p)
                % p
                for t in range(ext_n)
            ]
        )

    # 4) shuffle constraints
    for si, (shuffle, data) in enumerate(zip(cs.shuffles, shuffle_data)):
        z_ext = ext_of_coeffs("shuffle-z", si, data["z_coeffs"])
        z_next = rot(z_ext, 1)

        def group_products(groups):
            prod = [1] * ext_n
            for group in groups:
                compressed = [0] * ext_n
                for expr in group:
                    vals = evaluate_expression_ext(
                        expr, get_column_ext, ext_n, rotation_factor, p
                    )
                    compressed = [
                        (acc * theta + v) % p for acc, v in zip(compressed, vals)
                    ]
                for t in range(ext_n):
                    prod[t] = prod[t] * ((compressed[t] + gamma) % p) % p
            return prod

        input_prod = group_products(shuffle.input_groups)
        table_prod = group_products(shuffle.table_groups)
        fold_in([l0_ext[t] * ((z_ext[t] - 1) % p) % p for t in range(ext_n)])
        fold_in(
            [
                active_ext[t]
                * ((z_next[t] * table_prod[t] - z_ext[t] * input_prod[t]) % p)
                % p
                for t in range(ext_n)
            ]
        )
        fold_in([l_last_ext[t] * ((z_next[t] - 1) % p) % p for t in range(ext_n)])

    # Divide by the vanishing polynomial Z_H(X) = X^n - 1 (nonzero on
    # the coset).  Its values repeat with period ext_n / n.
    period = rotation_factor
    shift_n = pow(shift, n, p)
    omega_ext_n = pow(ext_domain.omega, n, p)
    zh_distinct = []
    acc = shift_n
    for _ in range(period):
        zh_distinct.append((acc - 1) % p)
        acc = acc * omega_ext_n % p
    zh_inv = field.batch_inv(zh_distinct)
    quotient = [
        combined[j] * zh_inv[j % period] % p for j in range(ext_n)
    ]
    h_coeffs = ext_domain.coset_ifft(quotient, shift)
    # Trim trailing zeros, then split into n-sized pieces.
    while len(h_coeffs) > 1 and h_coeffs[-1] == 0:
        h_coeffs.pop()
    pieces = [h_coeffs[i : i + n] for i in range(0, len(h_coeffs), n)] or [[0]]
    # Fault injection (soundness harness only): pad the quotient with
    # zero chunks.  The proof stays internally consistent -- every eval
    # and opening is honest -- so only a structural degree bound in the
    # verifier can reject it.
    for _ in range(int(getattr(_faults, "extra_h_chunks", 0) or 0)):
        pieces.append([0])
    h_blinds = [field.rand() for _ in pieces]
    h_commitments = commit_polynomials(params, list(zip(pieces, h_blinds)))
    transcript.absorb_points(b"h", h_commitments)
    phase.end()
    if timing:
        timing.quotient = phase.duration

    # ---- round 5: evaluations at x -----------------------------------------
    phase = telemetry.begin_span("prove.evaluations")
    x = transcript.challenge_scalar(b"x")

    proof = Proof(
        advice_commitments=advice_commitments,
        lookup_parts=lookup_parts,
        shuffle_parts=shuffle_parts,
        permutation_z_commitments=perm_z_commitments,
        h_commitments=h_commitments,
    )

    def point_at(rotation: int) -> int:
        return domain.rotated_point(x, rotation)

    for ci, rotation in queries.advice:
        proof.advice_evals[(ci, rotation)] = evaluate_coeffs(
            advice_coeffs[ci], point_at(rotation), p
        )
    for ci, rotation in queries.fixed:
        proof.fixed_evals[(ci, rotation)] = evaluate_coeffs(
            pk.fixed[ci].coeffs, point_at(rotation), p
        )
    proof.sigma_evals = [
        evaluate_coeffs(pd.coeffs, x, p) for pd in pk.sigmas
    ]
    proof.system_evals = {
        name: evaluate_coeffs(pd.coeffs, x, p)
        for name, pd in pk.system.items()
    }
    x_next = point_at(1)
    x_prev = point_at(-1)
    x_chain = domain.rotated_point(x, usable)
    n_chunks = len(vk.permutation_chunks)
    for j, coeffs in enumerate(perm_z_coeffs):
        entry = {
            "x": evaluate_coeffs(coeffs, x, p),
            "wx": evaluate_coeffs(coeffs, x_next, p),
        }
        if n_chunks > 1 and j < n_chunks - 1:
            entry["chain"] = evaluate_coeffs(coeffs, x_chain, p)
        proof.permutation_z_evals.append(entry)
    for data, part in zip(lookup_data, lookup_parts):
        part.z_x = evaluate_coeffs(data["z_coeffs"], x, p)
        part.z_wx = evaluate_coeffs(data["z_coeffs"], x_next, p)
        part.permuted_input_x = evaluate_coeffs(data["a_coeffs"], x, p)
        part.permuted_input_winv_x = evaluate_coeffs(data["a_coeffs"], x_prev, p)
        part.permuted_table_x = evaluate_coeffs(data["s_coeffs"], x, p)
    for data, part in zip(shuffle_data, shuffle_parts):
        part.z_x = evaluate_coeffs(data["z_coeffs"], x, p)
        part.z_wx = evaluate_coeffs(data["z_coeffs"], x_next, p)
    proof.h_evals = [evaluate_coeffs(piece, x, p) for piece in pieces]

    _absorb_evaluations(transcript, proof)
    phase.end()
    if timing:
        timing.evaluations = phase.duration

    # ---- multiopen --------------------------------------------------------
    phase = telemetry.begin_span("prove.multiopen")
    claims: list[OpeningClaim] = []

    def claim(point, coeffs, blind, commitment, evaluation):
        claims.append(OpeningClaim(point, coeffs, blind, commitment, evaluation))

    for ci, rotation in queries.advice:
        claim(
            point_at(rotation),
            advice_coeffs[ci],
            advice_blinds[ci],
            advice_commitments[ci],
            proof.advice_evals[(ci, rotation)],
        )
    for ci, rotation in queries.fixed:
        claim(
            point_at(rotation),
            pk.fixed[ci].coeffs,
            0,
            pk.fixed[ci].commitment,
            proof.fixed_evals[(ci, rotation)],
        )
    for gi, pd in enumerate(pk.sigmas):
        claim(x, pd.coeffs, 0, pd.commitment, proof.sigma_evals[gi])
    for name in sorted(pk.system):
        pd = pk.system[name]
        claim(x, pd.coeffs, 0, pd.commitment, proof.system_evals[name])
    for j, (coeffs, blind, commitment) in enumerate(
        zip(perm_z_coeffs, perm_z_blinds, perm_z_commitments)
    ):
        entry = proof.permutation_z_evals[j]
        claim(x, coeffs, blind, commitment, entry["x"])
        claim(x_next, coeffs, blind, commitment, entry["wx"])
        if "chain" in entry:
            claim(x_chain, coeffs, blind, commitment, entry["chain"])
    for data, part in zip(lookup_data, lookup_parts):
        claim(x, data["z_coeffs"], data["z_blind"], part.z_commitment, part.z_x)
        claim(x_next, data["z_coeffs"], data["z_blind"], part.z_commitment, part.z_wx)
        claim(x, data["a_coeffs"], data["a_blind"],
              part.permuted_input_commitment, part.permuted_input_x)
        claim(x_prev, data["a_coeffs"], data["a_blind"],
              part.permuted_input_commitment, part.permuted_input_winv_x)
        claim(x, data["s_coeffs"], data["s_blind"],
              part.permuted_table_commitment, part.permuted_table_x)
    for data, part in zip(shuffle_data, shuffle_parts):
        claim(x, data["z_coeffs"], data["z_blind"], part.z_commitment, part.z_x)
        claim(x_next, data["z_coeffs"], data["z_blind"], part.z_commitment,
              part.z_wx)
    for piece, blind, commitment, evaluation in zip(
        pieces, h_blinds, h_commitments, proof.h_evals
    ):
        claim(x, piece, blind, commitment, evaluation)

    proof.openings = multi_open(params, transcript, claims, field)
    phase.set(claims=len(claims)).end()
    sw_total.end()
    if timing:
        timing.multiopen = phase.duration
        timing.total = sw_total.duration
    return proof


def _absorb_evaluations(transcript, proof: Proof) -> None:
    """Absorb all x-evaluations in canonical order (mirrored verbatim by
    the verifier)."""
    for key in sorted(proof.advice_evals):
        transcript.absorb_scalar(b"eval-advice", proof.advice_evals[key])
    for key in sorted(proof.fixed_evals):
        transcript.absorb_scalar(b"eval-fixed", proof.fixed_evals[key])
    transcript.absorb_scalars(b"eval-sigma", proof.sigma_evals)
    for name in sorted(proof.system_evals):
        transcript.absorb_scalar(b"eval-system", proof.system_evals[name])
    for entry in proof.permutation_z_evals:
        for key in sorted(entry):
            transcript.absorb_scalar(b"eval-perm-z", entry[key])
    for part in proof.lookup_parts:
        transcript.absorb_scalars(
            b"eval-lookup",
            [
                part.z_x,
                part.z_wx,
                part.permuted_input_x,
                part.permuted_input_winv_x,
                part.permuted_table_x,
            ],
        )
    for part in proof.shuffle_parts:
        transcript.absorb_scalars(b"eval-shuffle", [part.z_x, part.z_wx])
    transcript.absorb_scalars(b"eval-h", proof.h_evals)


def _permute_lookup(
    name: str, a_vals: list[int], s_vals: list[int]
) -> tuple[list[int], list[int]]:
    """Build the permuted pairs (A', S') of the Plookup argument:
    A' is A sorted with duplicates adjacent; S' is a permutation of S
    aligning each first occurrence in A' with the equal table value.

    Raises :class:`ProvingError` when some input value is absent from
    the table (no witness exists; this is the soundness path a cheating
    prover hits).
    """
    if len(a_vals) != len(s_vals):
        raise ProvingError(
            f"lookup {name!r}: input rows ({len(a_vals)}) != table rows "
            f"({len(s_vals)}); pad the smaller side"
        )
    leftover = Counter(s_vals)
    a_sorted = sorted(a_vals)
    s_perm: list[int | None] = [None] * len(s_vals)
    for i, value in enumerate(a_sorted):
        if i == 0 or value != a_sorted[i - 1]:
            if leftover[value] <= 0:
                raise ProvingError(
                    f"lookup {name!r}: input value {value} not in table"
                )
            leftover[value] -= 1
            s_perm[i] = value
    spare = [v for v, count in leftover.items() for _ in range(count)]
    spare_iter = iter(spare)
    for i, slot in enumerate(s_perm):
        if slot is None:
            s_perm[i] = next(spare_iter)
    assert all(v is not None for v in s_perm)
    return a_sorted, s_perm  # type: ignore[return-value]
