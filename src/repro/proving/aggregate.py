"""Recursive proof aggregation: fold N query proofs into one claim.

The paper's verification story leans on recursive proof composition
reducing overall proof size and verification overhead; PR 6's
``batch_verify`` already amortizes the per-proof base-folding MSMs into
one recursion :class:`~repro.proving.recursion.Accumulator` finalize,
but only for in-memory responses inside one process.  This module makes
the aggregated claim a *transportable artifact*:

- :func:`aggregate` packages N query responses -- across queries and
  sessions, as long as they share one exact ``PublicParams`` set --
  into an :class:`AggProof` bound to the parameter fingerprint;
- :class:`AggProof` has its own strict wire format (``PDBA``, mirroring
  the ``PDB2``/``PDBC`` discipline: length-checked counts, canonical
  scalars, strict UTF-8, no trailing bytes), so an aggregated day of
  traffic can be shipped to a light client or pinned in an audit log;
- :meth:`repro.system.verifier_node.VerifierNode.verify_aggregate`
  replays each folded claim's cheap logarithmic checks and settles all
  of their linear-time MSMs with **one** fixed-base finalize, and
  :func:`repro.system.audit.audit_aggregate` attests the whole batch by
  checking that one accumulator instead of replaying every proof.

Soundness note: the combination weights must be verifier coins, so the
aggregate carries the *claims* (sql, result, scan links, proof bytes),
not a prover-chosen folded state -- a prover who picked the weights
could fabricate a vacuously-true fold.  What the format buys is
transport, binding, and the single-MSM verification; the per-proof
logarithmic work remains, which is exactly the Halo-style cost split.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.algebra.field import Field, SCALAR_FIELD
from repro.wire import ByteReader, SCALAR_BYTES, WireFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.commit.params import PublicParams

#: Wire-format version header for aggregated proofs.
AGG_MAGIC = b"PDBA"

#: Raw size of the params fingerprint (blake2b-160, matching
#: :meth:`repro.commit.params.PublicParams.fingerprint`).
FINGERPRINT_BYTES = 20

#: Hostile-allocation bounds on the variable-length fields.
MAX_ENTRIES = 1 << 16
MAX_SQL_BYTES = 1 << 16
MAX_RESULT_ROWS = 1 << 20
MAX_RESULT_COLS = 1 << 12
MAX_SCAN_LINKS = 1 << 12
MAX_IDENT_BYTES = 255
MAX_PROOF_BYTES = 1 << 28

#: Smallest possible serialized entry (empty sql, empty result, no
#: links, 4-byte proof magic) -- used to length-check the entry count.
_MIN_ENTRY_BYTES = 4 + 4 + 4 + 4 + 4 + 4


@dataclass
class ScanLinkClaim:
    """One scan-link binding claim carried inside an aggregate entry
    (same fields as :class:`repro.system.prover_node.ScanLinkProof`,
    redeclared here so the proving layer does not depend on the system
    layer)."""

    advice_index: int
    table: str
    column: str
    delta: int


@dataclass
class AggEntry:
    """One folded query claim: everything a verifier needs to replay
    the proof's cheap checks and contribute its MSM to the fold."""

    sql: str
    result_encoded: list[list[int]]
    scan_links: list[ScanLinkClaim]
    proof_bytes: bytes


@dataclass
class AggProof:
    """An aggregated claim over N query proofs sharing one parameter
    set.  ``params_fingerprint`` is the raw 20-byte content hash of the
    exact :class:`~repro.commit.params.PublicParams` every proof was
    created under; a verifier holding different parameters rejects the
    aggregate outright instead of folding into the wrong bases.
    """

    params_fingerprint: bytes
    entries: list[AggEntry] = field(default_factory=list)

    @property
    def proofs(self) -> int:
        return len(self.entries)

    def size_bytes(self) -> int:
        return len(self.to_bytes())

    def digest(self) -> bytes:
        """Content hash of the canonical wire bytes -- what an audit
        log pins for one epoch's aggregated claim."""
        return hashlib.blake2b(self.to_bytes(), digest_size=20).digest()

    # -- canonical wire format (PDBA) ------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical serialization (format ``PDBA``); layout documented
        in DESIGN.md section 5g.  Scalars are reduced into the scalar
        field so every value has exactly one encoding; the strict
        inverse is :meth:`from_bytes`."""
        if not self.entries:
            raise ValueError("cannot serialize an empty aggregate")
        if len(self.params_fingerprint) != FINGERPRINT_BYTES:
            raise ValueError(
                f"params fingerprint must be {FINGERPRINT_BYTES} bytes"
            )
        p = SCALAR_FIELD.p
        chunks: list[bytes] = [AGG_MAGIC, self.params_fingerprint]

        def put_u32(value: int) -> None:
            chunks.append(value.to_bytes(4, "little"))

        def put_scalar(value: int) -> None:
            chunks.append((value % p).to_bytes(SCALAR_BYTES, "little"))

        def put_blob(raw: bytes, what: str, max_len: int) -> None:
            if len(raw) > max_len:
                raise ValueError(f"{what} exceeds {max_len} bytes")
            put_u32(len(raw))
            chunks.append(raw)

        put_u32(len(self.entries))
        for entry in self.entries:
            put_blob(entry.sql.encode("utf-8"), "sql", MAX_SQL_BYTES)
            rows = entry.result_encoded
            cols = len(rows[0]) if rows else 0
            if any(len(row) != cols for row in rows):
                raise ValueError("result rows are not rectangular")
            put_u32(cols)
            put_u32(len(rows))
            for row in rows:
                for value in row:
                    put_scalar(value)
            put_u32(len(entry.scan_links))
            for link in entry.scan_links:
                put_u32(link.advice_index)
                put_blob(link.table.encode("utf-8"), "table name", MAX_IDENT_BYTES)
                put_blob(link.column.encode("utf-8"), "column name", MAX_IDENT_BYTES)
                put_scalar(link.delta)
            put_blob(entry.proof_bytes, "proof bytes", MAX_PROOF_BYTES)
        return b"".join(chunks)

    @classmethod
    def from_bytes(
        cls, data: bytes, field_: Field = SCALAR_FIELD
    ) -> "AggProof":
        """Strictly decode aggregate wire bytes.

        Enforces the ``PDBA`` header, the fingerprint width, bounded
        length-checked counts, canonical scalars (``< p``), strict
        UTF-8 strings, the inner ``PDB2`` proof magic, at least one
        entry, and no trailing bytes.  The *cryptographic* validity of
        each inner proof is only established by
        ``VerifierNode.verify_aggregate`` (it needs the verifying key);
        this gate guarantees the envelope is canonical.
        """
        from repro.proving.proof import WIRE_MAGIC

        p = field_.p
        reader = ByteReader(data)
        reader.expect(AGG_MAGIC, "aggregate header")
        fingerprint = reader.take(FINGERPRINT_BYTES, "params fingerprint")
        n_entries = reader.count(
            "aggregate entries",
            element_size=_MIN_ENTRY_BYTES,
            max_count=MAX_ENTRIES,
        )
        if n_entries < 1:
            raise WireFormatError("aggregate must fold at least one proof")
        entries: list[AggEntry] = []
        for _ in range(n_entries):
            sql = reader.string("sql", max_len=MAX_SQL_BYTES)
            n_cols = reader.u32("result columns")
            if n_cols > MAX_RESULT_COLS:
                raise WireFormatError(
                    f"result columns {n_cols} exceeds bound {MAX_RESULT_COLS}"
                )
            n_rows = reader.count(
                "result rows",
                element_size=n_cols * SCALAR_BYTES,
                max_count=MAX_RESULT_ROWS,
            )
            if n_cols == 0 and n_rows != 0:
                raise WireFormatError("zero-column result with rows")
            rows = [
                [reader.scalar(p, "result value") for _ in range(n_cols)]
                for _ in range(n_rows)
            ]
            n_links = reader.count(
                "scan links",
                element_size=4 + 4 + 4 + SCALAR_BYTES,
                max_count=MAX_SCAN_LINKS,
            )
            links = [
                ScanLinkClaim(
                    advice_index=reader.u32("scan link advice index"),
                    table=reader.string("table name", max_len=MAX_IDENT_BYTES),
                    column=reader.string("column name", max_len=MAX_IDENT_BYTES),
                    delta=reader.scalar(p, "scan link delta"),
                )
                for _ in range(n_links)
            ]
            proof_bytes = reader.blob("proof bytes", max_len=MAX_PROOF_BYTES)
            if not proof_bytes.startswith(WIRE_MAGIC):
                raise WireFormatError("aggregate entry lacks proof header")
            entries.append(
                AggEntry(
                    sql=sql,
                    result_encoded=rows,
                    scan_links=links,
                    proof_bytes=proof_bytes,
                )
            )
        reader.finish()
        return cls(params_fingerprint=bytes(fingerprint), entries=entries)


def aggregate(
    responses: Sequence, params: "PublicParams"
) -> AggProof:
    """Fold N query responses into one transportable aggregated claim.

    ``responses`` are :class:`~repro.system.prover_node.QueryResponse`
    objects (or anything exposing ``sql`` / ``result_encoded`` /
    ``scan_links`` / ``wire_bytes()``); ``params`` is the exact public
    parameter set every proof was created under -- the aggregate is
    bound to its content fingerprint, and
    ``VerifierNode.verify_aggregate`` rejects the claim under any other
    parameters (same size included).

    The entries keep each proof's wire bytes verbatim: the random fold
    weights must be the *verifier's* coins, so the fold itself happens
    at verification time, where the N linear-time MSMs collapse into
    one accumulator finalize.
    """
    if not responses:
        raise ValueError("cannot aggregate zero proofs")
    entries = [
        AggEntry(
            sql=response.sql,
            result_encoded=[list(row) for row in response.result_encoded],
            scan_links=[
                ScanLinkClaim(
                    advice_index=link.advice_index,
                    table=link.table,
                    column=link.column,
                    delta=link.delta,
                )
                for link in response.scan_links
            ],
            proof_bytes=response.wire_bytes(),
        )
        for response in responses
    ]
    return AggProof(
        params_fingerprint=bytes.fromhex(params.fingerprint()),
        entries=entries,
    )


__all__ = [
    "AGG_MAGIC",
    "FINGERPRINT_BYTES",
    "AggEntry",
    "AggProof",
    "ScanLinkClaim",
    "aggregate",
]
