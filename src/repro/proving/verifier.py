"""Proof verification (paper workflow phase 5).

The verifier recomputes every Fiat-Shamir challenge from the proof's
commitments, evaluates the combined constraint identity at the random
point ``x`` using the opened evaluations, checks it equals
``h(x) * (x^n - 1)``, and finally verifies the batched IPA openings --
either immediately or deferred into a recursion
:class:`~repro.proving.recursion.Accumulator`.
"""

from __future__ import annotations

from repro.algebra.field import Field
from repro.plonkish.constraint_system import Column, ColumnKind
from repro.proving.keygen import VerifyingKey
from repro.proving.multiopen import OpeningClaim, multi_verify
from repro.proving.proof import Proof
from repro.proving.protocol import collect_queries, init_transcript
from repro.proving.prover import _absorb_evaluations
from repro.proving.recursion import Accumulator


def verify_proof(
    vk: VerifyingKey,
    proof: Proof,
    instance: list[list[int]],
    accumulator: Accumulator | None = None,
) -> bool:
    """Check ``proof`` against the public ``instance`` values.

    ``instance`` holds one list of field values per instance column
    (padded with zeros to the circuit's row count by this function).
    """
    field: Field = vk.field
    p = field.p
    cs = vk.cs
    n = vk.n_rows
    usable = vk.usable_rows
    params = vk.params

    from repro.algebra.domain import EvaluationDomain

    domain = EvaluationDomain(field, vk.k)
    queries = collect_queries(cs)

    # Structural checks before any crypto.
    if len(proof.advice_commitments) != len(cs.advice_columns):
        return False
    if len(proof.lookup_parts) != len(cs.lookups):
        return False
    if len(proof.shuffle_parts) != len(cs.shuffles):
        return False
    if len(proof.permutation_z_commitments) != len(vk.permutation_chunks):
        return False
    if len(instance) != len(cs.instance_columns):
        return False
    if len(proof.permutation_z_evals) != len(vk.permutation_chunks):
        return False
    if len(proof.sigma_evals) != len(vk.sigma_commitments):
        return False
    if set(proof.system_evals) != set(vk.system_commitments):
        return False
    if len(proof.h_evals) != len(proof.h_commitments):
        return False
    # The honest quotient splits into at most 2^(extended_k - k) chunks
    # of degree < n; an unbounded count would let a prover inflate the
    # quotient degree past what the extended domain determines.
    if not 1 <= len(proof.h_commitments) <= (1 << (vk.extended_k - vk.k)):
        return False
    for key in queries.advice:
        if key not in proof.advice_evals:
            return False
    for key in queries.fixed:
        if key not in proof.fixed_evals:
            return False

    padded_instance = []
    for values in instance:
        if len(values) > usable:
            return False
        padded_instance.append(
            [v % p for v in values] + [0] * (n - len(values))
        )

    transcript = init_transcript(vk, padded_instance)

    # ---- replay rounds 1-4, recomputing challenges ------------------------
    transcript.absorb_points(b"advice", proof.advice_commitments)
    theta = transcript.challenge_scalar(b"theta")
    for part in proof.lookup_parts:
        transcript.absorb_point(b"lookup-a", part.permuted_input_commitment)
        transcript.absorb_point(b"lookup-s", part.permuted_table_commitment)
    beta = transcript.challenge_scalar(b"beta")
    gamma = transcript.challenge_scalar(b"gamma")
    transcript.absorb_points(b"perm-z", proof.permutation_z_commitments)
    for part in proof.lookup_parts:
        transcript.absorb_point(b"lookup-z", part.z_commitment)
    for part in proof.shuffle_parts:
        transcript.absorb_point(b"shuffle-z", part.z_commitment)
    y = transcript.challenge_scalar(b"y")
    transcript.absorb_points(b"h", proof.h_commitments)
    x = transcript.challenge_scalar(b"x")
    _absorb_evaluations(transcript, proof)

    # ---- instance evaluations (computed, not opened) -----------------------
    # All Lagrange bases at each distinct point are batch-evaluated once
    # (one batch inversion) and shared across the instance queries at
    # that point.
    instance_evals: dict[tuple[int, int], int] = {}
    basis_at_rotation: dict[int, list[int]] = {}
    for ci, rotation in queries.instance:
        basis = basis_at_rotation.get(rotation)
        if basis is None:
            point = domain.rotated_point(x, rotation)
            basis = domain.lagrange_basis_evals(point, usable)
            basis_at_rotation[rotation] = basis
        value = 0
        column = padded_instance[ci]
        for i in range(usable):
            if column[i]:
                value = (value + column[i] * basis[i]) % p
        instance_evals[(ci, rotation)] = value

    def query_eval(col: Column, rotation: int) -> int:
        if col.kind is ColumnKind.ADVICE:
            return proof.advice_evals[(col.index, rotation)]
        if col.kind is ColumnKind.FIXED:
            return proof.fixed_evals[(col.index, rotation)]
        return instance_evals[(col.index, rotation)]

    # ---- rebuild the combined constraint value at x -------------------------
    combined = 0

    def fold_in(value: int) -> None:
        nonlocal combined
        combined = (combined * y + value) % p

    try:
        l0_x = proof.system_evals["l0"]
        l_last_x = proof.system_evals["l_last"]
        active_x = proof.system_evals["l_active"]

        # 1) gates (active-row gated, mirroring the prover)
        for gate in cs.gates:
            for constraint in gate.constraints:
                fold_in(active_x * constraint.evaluate(query_eval, p) % p)

        # 2) permutation argument
        deltas = [1]
        for _ in range(len(cs.equality_columns) - 1):
            deltas.append(deltas[-1] * vk.delta % p)
        global_index = {col: i for i, col in enumerate(cs.equality_columns)}
        n_chunks = len(vk.permutation_chunks)
        for j, chunk in enumerate(vk.permutation_chunks):
            entry = proof.permutation_z_evals[j]
            if j == 0:
                fold_in(l0_x * ((entry["x"] - 1) % p) % p)
            else:
                prev = proof.permutation_z_evals[j - 1]
                fold_in(l0_x * ((entry["x"] - prev["chain"]) % p) % p)
            numer = 1
            denom = 1
            for col in chunk:
                gi = global_index[col]
                w_x = query_eval(col, 0)
                sigma_x = proof.sigma_evals[gi]
                numer = numer * ((w_x + beta * deltas[gi] % p * x + gamma) % p) % p
                denom = denom * ((w_x + beta * sigma_x + gamma) % p) % p
            fold_in(
                active_x * ((entry["wx"] * denom - entry["x"] * numer) % p) % p
            )
        if n_chunks:
            fold_in(
                l_last_x
                * ((proof.permutation_z_evals[-1]["wx"] - 1) % p)
                % p
            )

        # 3) lookup arguments
        for lookup, part in zip(cs.lookups, proof.lookup_parts):
            a_input = 0
            for expr in lookup.inputs:
                a_input = (a_input * theta + expr.evaluate(query_eval, p)) % p
            s_table = 0
            for expr in lookup.table:
                s_table = (s_table * theta + expr.evaluate(query_eval, p)) % p
            fold_in(l0_x * ((part.z_x - 1) % p) % p)
            fold_in(
                active_x
                * (
                    (
                        part.z_wx
                        * ((part.permuted_input_x + beta) % p)
                        % p
                        * ((part.permuted_table_x + gamma) % p)
                        - part.z_x
                        * ((a_input + beta) % p)
                        % p
                        * ((s_table + gamma) % p)
                    )
                    % p
                )
                % p
            )
            fold_in(l_last_x * ((part.z_wx - 1) % p) % p)
            fold_in(
                l0_x
                * ((part.permuted_input_x - part.permuted_table_x) % p)
                % p
            )
            fold_in(
                active_x
                * ((part.permuted_input_x - part.permuted_table_x) % p)
                % p
                * ((part.permuted_input_x - part.permuted_input_winv_x) % p)
                % p
            )

        # 4) shuffle arguments
        for shuffle, part in zip(cs.shuffles, proof.shuffle_parts):

            def group_product(groups):
                prod = 1
                for group in groups:
                    compressed = 0
                    for expr in group:
                        compressed = (
                            compressed * theta + expr.evaluate(query_eval, p)
                        ) % p
                    prod = prod * ((compressed + gamma) % p) % p
                return prod

            input_prod = group_product(shuffle.input_groups)
            table_prod = group_product(shuffle.table_groups)
            fold_in(l0_x * ((part.z_x - 1) % p) % p)
            fold_in(
                active_x
                * ((part.z_wx * table_prod - part.z_x * input_prod) % p)
                % p
            )
            fold_in(l_last_x * ((part.z_wx - 1) % p) % p)
    except KeyError:
        # Proof is missing an evaluation a constraint needs.
        return False

    # h(x) * (x^n - 1) must equal the combined constraint value.
    h_x = 0
    x_to_n = pow(x, n, p)
    for h_eval in reversed(proof.h_evals):
        h_x = (h_x * x_to_n + h_eval) % p
    if combined != h_x * ((x_to_n - 1) % p) % p:
        return False

    # ---- verify the batched openings ----------------------------------------
    x_next = domain.rotated_point(x, 1)
    x_prev = domain.rotated_point(x, -1)
    x_chain = domain.rotated_point(x, usable)

    claims: list[OpeningClaim] = []

    def claim(point, commitment, evaluation):
        claims.append(OpeningClaim(point, None, None, commitment, evaluation))

    def point_at(rotation: int) -> int:
        return domain.rotated_point(x, rotation)

    for ci, rotation in queries.advice:
        claim(point_at(rotation), proof.advice_commitments[ci],
              proof.advice_evals[(ci, rotation)])
    for ci, rotation in queries.fixed:
        claim(point_at(rotation), vk.fixed_commitments[ci],
              proof.fixed_evals[(ci, rotation)])
    for gi, commitment in enumerate(vk.sigma_commitments):
        claim(x, commitment, proof.sigma_evals[gi])
    for name in sorted(vk.system_commitments):
        claim(x, vk.system_commitments[name], proof.system_evals[name])
    for j, commitment in enumerate(proof.permutation_z_commitments):
        entry = proof.permutation_z_evals[j]
        claim(x, commitment, entry["x"])
        claim(x_next, commitment, entry["wx"])
        if "chain" in entry:
            claim(x_chain, commitment, entry["chain"])
    for part in proof.lookup_parts:
        claim(x, part.z_commitment, part.z_x)
        claim(x_next, part.z_commitment, part.z_wx)
        claim(x, part.permuted_input_commitment, part.permuted_input_x)
        claim(x_prev, part.permuted_input_commitment, part.permuted_input_winv_x)
        claim(x, part.permuted_table_commitment, part.permuted_table_x)
    for part in proof.shuffle_parts:
        claim(x, part.z_commitment, part.z_x)
        claim(x_next, part.z_commitment, part.z_wx)
    for commitment, evaluation in zip(proof.h_commitments, proof.h_evals):
        claim(x, commitment, evaluation)

    return multi_verify(
        params, transcript, claims, proof.openings, field, accumulator
    )
