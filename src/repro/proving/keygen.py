"""Key generation (paper workflow phase 3).

From the circuit shape and the public parameters we derive:

- the **proving key**: coefficient and extended-coset-evaluation forms
  of every fixed polynomial, the permutation sigma polynomials encoding
  all copy constraints, and the system row-selectors (l0 / l_last /
  l_active) that gate the permutation and lookup arguments away from
  the blinding rows;
- the **verifying key**: binding commitments to all of the above.

Key generation is deterministic: any party can regenerate the keys from
the public circuit description, so distributing the verifying key needs
no trust.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING

from repro import telemetry
from repro.algebra.domain import EvaluationDomain
from repro.algebra.field import Field
from repro.commit.ipa import commit_polynomials
from repro.commit.params import PublicParams
from repro.ecc.curve import Point
from repro.plonkish.assignment import ZK_ROWS, Assignment
from repro.plonkish.constraint_system import Column, ColumnKind, ConstraintSystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import ArtifactCache

logger = logging.getLogger("repro.proving.keygen")

#: Columns covered by one permutation grand-product polynomial.  Keeping
#: chunks small bounds the constraint degree at ``chunk + 2`` (the
#: paper's "low-order polynomial constraints" design rule).
PERMUTATION_CHUNK = 3


@dataclass
class PolyData:
    """One committed polynomial in the three forms the prover needs."""

    coeffs: list[int]
    extended_evals: list[int] = dc_field(repr=False)
    commitment: Point | None = None


@dataclass
class VerifyingKey:
    params: PublicParams
    field: Field
    cs: ConstraintSystem
    k: int
    usable_rows: int
    extended_k: int
    fixed_commitments: list[Point]
    sigma_commitments: list[Point]
    system_commitments: dict[str, Point]
    permutation_chunks: list[list[Column]]
    delta: int

    @property
    def n_rows(self) -> int:
        return 1 << self.k


@dataclass
class ProvingKey:
    vk: VerifyingKey
    domain: EvaluationDomain
    extended_domain: EvaluationDomain
    coset_shift: int
    fixed: list[PolyData]
    sigmas: list[PolyData]
    system: dict[str, PolyData]
    #: raw fixed column values (needed to evaluate lookup tables rowwise)
    fixed_values: list[list[int]]
    #: sigma values per equality column (row-indexed)
    sigma_values: list[list[int]]


def _system_selectors(n: int, usable: int) -> dict[str, list[int]]:
    """The fixed row-indicator columns used by the synthesized
    permutation/lookup constraints."""
    l0 = [0] * n
    l0[0] = 1
    l_last = [0] * n
    l_last[usable - 1] = 1
    l_active = [0] * n
    for i in range(usable):
        l_active[i] = 1
    return {"l0": l0, "l_last": l_last, "l_active": l_active}


def build_permutation_columns(
    cs: ConstraintSystem, field: Field, n: int, usable: int, delta: int
) -> list[list[int]]:
    """Compute the sigma column values from the copy constraints.

    Positions ``(column, row)`` over all equality-enabled columns are
    joined into cycles by union-find; sigma maps each position to the
    next one in its cycle.  Position ``(c, i)`` is encoded as the field
    element ``delta^c * omega^i``, giving disjoint cosets per column.
    """
    columns = cs.equality_columns
    col_of = {col: idx for idx, col in enumerate(columns)}

    parent: dict[tuple[int, int], tuple[int, int]] = {}

    def find(pos: tuple[int, int]) -> tuple[int, int]:
        root = pos
        while parent.get(root, root) != root:
            root = parent[root]
        # Path compression.
        while parent.get(pos, pos) != root:
            parent[pos], pos = root, parent[pos]
        return root

    def union(a: tuple[int, int], b: tuple[int, int]) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for copy in cs.copies:
        if copy.left_row >= usable or copy.right_row >= usable:
            raise ValueError("copy constraints may not touch blinding rows")
        union(
            (col_of[copy.left_col], copy.left_row),
            (col_of[copy.right_col], copy.right_row),
        )

    # Gather cycles.
    cycles: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for c in range(len(columns)):
        for i in range(usable):
            cycles.setdefault(find((c, i)), []).append((c, i))

    # sigma: next position in cycle (identity for singleton cycles).
    sigma_map: dict[tuple[int, int], tuple[int, int]] = {}
    for members in cycles.values():
        for idx, pos in enumerate(members):
            sigma_map[pos] = members[(idx + 1) % len(members)]

    p = field.p
    omega = field.root_of_unity_of_order(n)
    omegas = [1] * n
    for i in range(1, n):
        omegas[i] = omegas[i - 1] * omega % p
    deltas = [1] * max(1, len(columns))
    for c in range(1, len(columns)):
        deltas[c] = deltas[c - 1] * delta % p

    sigma_values = []
    for c in range(len(columns)):
        col_vals = [0] * n
        for i in range(n):
            if i < usable:
                tc, ti = sigma_map[(c, i)]
            else:
                tc, ti = c, i  # identity on blinding rows (unconstrained)
            col_vals[i] = deltas[tc] * omegas[ti] % p
        sigma_values.append(col_vals)
    return sigma_values


def _chunk_columns(columns: list[Column], chunk: int) -> list[list[Column]]:
    return [columns[i : i + chunk] for i in range(0, len(columns), chunk)] or []


def keygen(
    params: PublicParams,
    cs: ConstraintSystem,
    field: Field,
    k: int,
) -> ProvingKey:
    """Derive proving and verifying keys for a circuit of ``2^k`` rows."""
    with telemetry.span("keygen", k=k):
        pk = _keygen(params, cs, field, k)
    logger.debug(
        "keygen: k=%d degree=%d extended_k=%d sigmas=%d",
        k,
        cs.required_degree(PERMUTATION_CHUNK),
        pk.vk.extended_k,
        len(pk.sigmas),
    )
    return pk


def _keygen(
    params: PublicParams,
    cs: ConstraintSystem,
    field: Field,
    k: int,
) -> ProvingKey:
    n = 1 << k
    if n > params.n:
        raise ValueError(f"circuit rows 2^{k} exceed params capacity 2^{params.k}")
    usable = n - ZK_ROWS
    if usable <= 1:
        raise ValueError("circuit too small for blinding rows")

    degree = cs.required_degree(PERMUTATION_CHUNK)
    # The combined constraint polynomial has degree <= degree * (n - 1),
    # so an extended domain of ceil(log2(degree)) extra bits determines
    # it uniquely.
    extension = max(1, (degree - 1).bit_length())
    extended_k = k + extension
    domain = EvaluationDomain(field, k)
    extended_domain = EvaluationDomain(field, extended_k)
    coset_shift = field.multiplicative_generator

    fit_params = params.truncated(k) if params.k > k else params
    delta = field.multiplicative_generator

    system_values = _system_selectors(n, usable)
    sigma_values = build_permutation_columns(cs, field, n, usable, delta)

    # All key polynomials go through the transforms and commitments as
    # one batch so the worker pool (when configured) sees real fan-out.
    system_names = list(system_values)
    all_values = [system_values[name] for name in system_names] + sigma_values
    all_coeffs = domain.ifft_many(all_values)
    all_ext = extended_domain.coset_fft_many(all_coeffs, coset_shift)
    all_commits = commit_polynomials(
        fit_params, [(coeffs, 0) for coeffs in all_coeffs]
    )
    polys = [
        PolyData(coeffs=coeffs, extended_evals=ext, commitment=commitment)
        for coeffs, ext, commitment in zip(all_coeffs, all_ext, all_commits)
    ]
    system = dict(zip(system_names, polys[: len(system_names)]))
    sigmas = polys[len(system_names) :]

    vk = VerifyingKey(
        params=fit_params,
        field=field,
        cs=cs,
        k=k,
        usable_rows=usable,
        extended_k=extended_k,
        fixed_commitments=[],  # filled after fixed assignment is known
        sigma_commitments=[pd.commitment for pd in sigmas],
        system_commitments={name: pd.commitment for name, pd in system.items()},
        permutation_chunks=_chunk_columns(cs.equality_columns, PERMUTATION_CHUNK),
        delta=delta,
    )
    return ProvingKey(
        vk=vk,
        domain=domain,
        extended_domain=extended_domain,
        coset_shift=coset_shift,
        fixed=[],
        sigmas=sigmas,
        system=system,
        fixed_values=[],
        sigma_values=sigma_values,
    )


def keygen_fingerprint(
    params: PublicParams, cs: ConstraintSystem, field: Field, k: int
) -> str:
    """A stable content hash of everything :func:`keygen` depends on.

    Used as the artifact-cache key for proving keys: any change to the
    circuit shape, the parameter set, the field, or the row count lands
    in a different cache entry (that *is* the invalidation mechanism).
    """
    import hashlib

    h = hashlib.blake2b(digest_size=20)
    h.update(f"{params.curve.name}|{params.k}|{field.p}|{k}|".encode())
    h.update(params.g[0].to_bytes())
    h.update(cs.fingerprint().encode())
    return h.hexdigest()


def cached_keygen(
    cache: "ArtifactCache",
    params: PublicParams,
    cs: ConstraintSystem,
    field: Field,
    k: int,
) -> tuple[ProvingKey, bool]:
    """:func:`keygen` through the artifact cache.

    Keygen is deterministic, so the pickled :class:`ProvingKey` (before
    fixed-column finalization -- fixed values belong to the concrete
    query run) is safe to reuse whenever the fingerprint matches.
    Returns ``(pk, was_cache_hit)``.
    """
    fingerprint = keygen_fingerprint(params, cs, field, k)
    return cache.fetch(
        "pk",
        (fingerprint,),
        build=lambda: keygen(params, cs, field, k),
    )


def finalize_fixed(pk: ProvingKey, assignment: Assignment) -> None:
    """Commit the fixed columns once their values are assigned.

    Fixed values are part of the circuit description (the prover fills
    them during synthesis), so this completes key generation.
    """
    with telemetry.span("keygen.finalize_fixed", columns=len(assignment.fixed)):
        domain, ext, shift = pk.domain, pk.extended_domain, pk.coset_shift
        fit_params = pk.vk.params
        pk.fixed_values = [list(col) for col in assignment.fixed]
        coeffs_list = domain.ifft_many(list(assignment.fixed))
        ext_list = ext.coset_fft_many(coeffs_list, shift)
        commits = commit_polynomials(
            fit_params, [(coeffs, 0) for coeffs in coeffs_list]
        )
        pk.fixed = [
            PolyData(coeffs=coeffs, extended_evals=ext_evals, commitment=commitment)
            for coeffs, ext_evals, commitment in zip(coeffs_list, ext_list, commits)
        ]
        pk.vk.fixed_commitments = [pd.commitment for pd in pk.fixed]
