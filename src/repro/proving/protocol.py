"""Protocol structure shared by prover and verifier.

The Fiat-Shamir transform only works when both sides absorb identical
data in identical order.  Everything order-sensitive -- which column
queries exist, which points get opened, how constraints are combined
with the ``y`` challenge -- is defined once here and used by both
:mod:`repro.proving.prover` and :mod:`repro.proving.verifier`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plonkish.constraint_system import Column, ColumnKind, ConstraintSystem
from repro.proving.keygen import VerifyingKey
from repro.transcript import Transcript


@dataclass
class QuerySet:
    """The ordered (column-index, rotation) queries per column kind."""

    advice: list[tuple[int, int]]
    fixed: list[tuple[int, int]]
    instance: list[tuple[int, int]]


def collect_queries(cs: ConstraintSystem) -> QuerySet:
    """Every (column, rotation) referenced by gates and lookups, plus
    rotation-0 queries for all equality columns (the permutation
    argument evaluates them at x)."""
    advice: set[tuple[int, int]] = set()
    fixed: set[tuple[int, int]] = set()
    instance: set[tuple[int, int]] = set()

    def note(column: Column, rotation: int) -> None:
        if column.kind is ColumnKind.ADVICE:
            advice.add((column.index, rotation))
        elif column.kind is ColumnKind.FIXED:
            fixed.add((column.index, rotation))
        else:
            instance.add((column.index, rotation))

    for gate in cs.gates:
        for constraint in gate.constraints:
            for column, rotation in constraint.queries():
                note(column, rotation)
    for lookup in cs.lookups:
        for expr in lookup.inputs + lookup.table:
            for column, rotation in expr.queries():
                note(column, rotation)
    for shuffle in cs.shuffles:
        for groups in (shuffle.input_groups, shuffle.table_groups):
            for group in groups:
                for expr in group:
                    for column, rotation in expr.queries():
                        note(column, rotation)
    for column in cs.equality_columns:
        note(column, 0)

    return QuerySet(
        advice=sorted(advice),
        fixed=sorted(fixed),
        instance=sorted(instance),
    )


def init_transcript(vk: VerifyingKey, instance: list[list[int]]) -> Transcript:
    """Create the protocol transcript and bind it to the verifying key
    and the public instance values."""
    tr = Transcript(b"poneglyphdb-proof-v1", vk.field)
    tr.absorb_scalar(b"k", vk.k)
    tr.absorb_scalar(b"usable", vk.usable_rows)
    tr.absorb_points(b"vk-fixed", vk.fixed_commitments)
    tr.absorb_points(b"vk-sigma", vk.sigma_commitments)
    for name in sorted(vk.system_commitments):
        tr.absorb_point(b"vk-system", vk.system_commitments[name])
    for column_values in instance:
        tr.absorb_scalars(b"instance", column_values)
    return tr


def permutation_z_count(vk: VerifyingKey) -> int:
    return len(vk.permutation_chunks)


def opening_point_order(
    domain_omega_pows: dict[int, int]
) -> list[int]:  # pragma: no cover - documentation helper
    """Opening points are visited in first-use order by the multiopen;
    both sides build claims in the same canonical sequence so the
    grouping matches."""
    return list(domain_omega_pows.values())
