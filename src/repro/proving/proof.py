"""The proof container.

A :class:`Proof` holds every prover message of the non-interactive
protocol, in transcript order.  Its byte serialization defines the
"proof size" metric reported in the paper's Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.commit.ipa import IpaProof
from repro.ecc.curve import Point


@dataclass
class LookupProofPart:
    """Commitments and evaluations for one lookup argument."""

    permuted_input_commitment: Point
    permuted_table_commitment: Point
    z_commitment: Point
    # evaluations at the challenge point
    z_x: int = 0
    z_wx: int = 0
    permuted_input_x: int = 0
    permuted_input_winv_x: int = 0
    permuted_table_x: int = 0


@dataclass
class ShuffleProofPart:
    """Commitment and evaluations for one shuffle argument."""

    z_commitment: Point
    z_x: int = 0
    z_wx: int = 0


@dataclass
class Proof:
    """All prover messages, in protocol order."""

    advice_commitments: list[Point]
    lookup_parts: list[LookupProofPart]
    shuffle_parts: list[ShuffleProofPart]
    permutation_z_commitments: list[Point]
    h_commitments: list[Point]

    # Evaluations at the x challenge (and rotations thereof).
    advice_evals: dict[tuple[int, int], int] = field(default_factory=dict)
    fixed_evals: dict[tuple[int, int], int] = field(default_factory=dict)
    sigma_evals: list[int] = field(default_factory=list)
    system_evals: dict[str, int] = field(default_factory=dict)
    permutation_z_evals: list[dict[str, int]] = field(default_factory=list)
    h_evals: list[int] = field(default_factory=list)

    # Batched IPA opening proofs, one per distinct evaluation point.
    openings: list[tuple[int, IpaProof]] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Serialized proof size in bytes.

        Points are 64 bytes (uncompressed Pasta affine), scalars 32.
        A production encoding would compress points to 32 bytes; we
        report the uncompressed size our serializer actually produces.
        """
        n_points = (
            len(self.advice_commitments)
            + 3 * len(self.lookup_parts)
            + len(self.shuffle_parts)
            + len(self.permutation_z_commitments)
            + len(self.h_commitments)
        )
        n_scalars = (
            len(self.advice_evals)
            + len(self.fixed_evals)
            + len(self.sigma_evals)
            + len(self.system_evals)
            + sum(len(d) for d in self.permutation_z_evals)
            + 5 * len(self.lookup_parts)
            + 2 * len(self.shuffle_parts)
            + len(self.h_evals)
        )
        opening_bytes = sum(proof.size_bytes() + 32 for _, proof in self.openings)
        return n_points * 64 + n_scalars * 32 + opening_bytes

    def to_bytes(self) -> bytes:
        """Canonical serialization (round-trips are exercised in tests)."""
        chunks: list[bytes] = []

        def put_point(pt: Point) -> None:
            chunks.append(pt.to_bytes())

        def put_scalar(s: int) -> None:
            chunks.append((s % (1 << 256)).to_bytes(32, "little"))

        def put_count(c: int) -> None:
            chunks.append(c.to_bytes(4, "little"))

        put_count(len(self.advice_commitments))
        for pt in self.advice_commitments:
            put_point(pt)
        put_count(len(self.lookup_parts))
        for part in self.lookup_parts:
            put_point(part.permuted_input_commitment)
            put_point(part.permuted_table_commitment)
            put_point(part.z_commitment)
            for s in (
                part.z_x,
                part.z_wx,
                part.permuted_input_x,
                part.permuted_input_winv_x,
                part.permuted_table_x,
            ):
                put_scalar(s)
        put_count(len(self.shuffle_parts))
        for sp in self.shuffle_parts:
            put_point(sp.z_commitment)
            put_scalar(sp.z_x)
            put_scalar(sp.z_wx)
        put_count(len(self.permutation_z_commitments))
        for pt in self.permutation_z_commitments:
            put_point(pt)
        put_count(len(self.h_commitments))
        for pt in self.h_commitments:
            put_point(pt)
        put_count(len(self.advice_evals))
        for (col, rot), v in sorted(self.advice_evals.items()):
            put_count(col)
            put_count(rot % (1 << 32))
            put_scalar(v)
        put_count(len(self.fixed_evals))
        for (col, rot), v in sorted(self.fixed_evals.items()):
            put_count(col)
            put_count(rot % (1 << 32))
            put_scalar(v)
        put_count(len(self.sigma_evals))
        for v in self.sigma_evals:
            put_scalar(v)
        for name in sorted(self.system_evals):
            put_scalar(self.system_evals[name])
        put_count(len(self.permutation_z_evals))
        for d in self.permutation_z_evals:
            for key in sorted(d):
                put_scalar(d[key])
        put_count(len(self.h_evals))
        for v in self.h_evals:
            put_scalar(v)
        put_count(len(self.openings))
        for point, ipa in self.openings:
            put_scalar(point)
            chunks.append(ipa.to_bytes())
        return b"".join(chunks)
