"""The proof container and its wire format.

A :class:`Proof` holds every prover message of the non-interactive
protocol, in transcript order.  Its byte serialization defines the
"proof size" metric reported in the paper's Table 4 -- and, more
importantly, the *adversarial surface*: a verifier only ever receives
bytes, so :meth:`Proof.from_bytes` is the strict gate every remote
proof passes through.  Decoding enforces (via
:class:`repro.wire.ByteReader`):

- the ``PDB2`` version header;
- element counts that match the verifying key's circuit shape exactly
  (advice columns, lookups, shuffles, permutation chunks, sigma and
  system polynomials) and are length-checked against the remaining
  bytes before any allocation;
- a quotient-chunk count within the vk's degree-derived bound;
- canonical scalars (``< p``) and canonical on-curve points;
- strictly ascending, vk-matching evaluation keys (one canonical
  encoding per proof -- re-orderings are rejected);
- IPA openings with exactly ``log2 n`` rounds each;
- no trailing bytes.

Anything else raises :class:`~repro.wire.WireFormatError`, so
``Proof.from_bytes(vk, Proof.to_bytes(p)) == p`` and every malformed
mutation of honest bytes is rejected before the cryptographic checks
run (exercised exhaustively by :mod:`repro.soundness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.commit.ipa import IpaProof
from repro.ecc.curve import Point
from repro.wire import ByteReader, SCALAR_BYTES, WireFormatError, point_wire_size

#: Wire-format version header; bump when the layout changes.
WIRE_MAGIC = b"PDB2"


@dataclass
class LookupProofPart:
    """Commitments and evaluations for one lookup argument."""

    permuted_input_commitment: Point
    permuted_table_commitment: Point
    z_commitment: Point
    # evaluations at the challenge point
    z_x: int = 0
    z_wx: int = 0
    permuted_input_x: int = 0
    permuted_input_winv_x: int = 0
    permuted_table_x: int = 0


@dataclass
class ShuffleProofPart:
    """Commitment and evaluations for one shuffle argument."""

    z_commitment: Point
    z_x: int = 0
    z_wx: int = 0


@dataclass
class Proof:
    """All prover messages, in protocol order."""

    advice_commitments: list[Point]
    lookup_parts: list[LookupProofPart]
    shuffle_parts: list[ShuffleProofPart]
    permutation_z_commitments: list[Point]
    h_commitments: list[Point]

    # Evaluations at the x challenge (and rotations thereof).
    advice_evals: dict[tuple[int, int], int] = field(default_factory=dict)
    fixed_evals: dict[tuple[int, int], int] = field(default_factory=dict)
    sigma_evals: list[int] = field(default_factory=list)
    system_evals: dict[str, int] = field(default_factory=dict)
    permutation_z_evals: list[dict[str, int]] = field(default_factory=list)
    h_evals: list[int] = field(default_factory=list)

    # Batched IPA opening proofs, one per distinct evaluation point.
    openings: list[tuple[int, IpaProof]] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Serialized proof size in bytes.

        Points are 64 bytes (uncompressed Pasta affine), scalars 32.
        A production encoding would compress points to 32 bytes; we
        report the uncompressed size our serializer actually produces.
        """
        n_points = (
            len(self.advice_commitments)
            + 3 * len(self.lookup_parts)
            + len(self.shuffle_parts)
            + len(self.permutation_z_commitments)
            + len(self.h_commitments)
        )
        n_scalars = (
            len(self.advice_evals)
            + len(self.fixed_evals)
            + len(self.sigma_evals)
            + len(self.system_evals)
            + sum(len(d) for d in self.permutation_z_evals)
            + 5 * len(self.lookup_parts)
            + 2 * len(self.shuffle_parts)
            + len(self.h_evals)
        )
        opening_bytes = sum(proof.size_bytes() + 32 for _, proof in self.openings)
        return n_points * 64 + n_scalars * 32 + opening_bytes

    def _scalar_modulus(self) -> int:
        """The scalar field modulus, recovered from any commitment's
        curve (every scalar in a proof lives in that field)."""
        for pt in (
            self.advice_commitments
            + self.permutation_z_commitments
            + self.h_commitments
        ):
            return pt.curve.scalar_field.p
        for part in self.lookup_parts:
            return part.z_commitment.curve.scalar_field.p
        for part in self.shuffle_parts:
            return part.z_commitment.curve.scalar_field.p
        from repro.algebra.field import SCALAR_FIELD

        return SCALAR_FIELD.p

    def to_bytes(self) -> bytes:
        """Canonical wire serialization (format ``PDB2``).

        Scalars are reduced into the scalar field before encoding, so a
        residue has exactly one byte representation; the strict inverse
        is :meth:`from_bytes`.  Layout documented in DESIGN.md.
        """
        p = self._scalar_modulus()
        chunks: list[bytes] = [WIRE_MAGIC]

        def put_point(pt: Point) -> None:
            chunks.append(pt.to_bytes())

        def put_scalar(s: int) -> None:
            chunks.append((s % p).to_bytes(SCALAR_BYTES, "little"))

        def put_count(c: int) -> None:
            chunks.append(c.to_bytes(4, "little"))

        def put_evals(evals: dict[tuple[int, int], int]) -> None:
            put_count(len(evals))
            for (col, rot), v in sorted(evals.items()):
                put_count(col)
                put_count(rot % (1 << 32))
                put_scalar(v)

        put_count(len(self.advice_commitments))
        for pt in self.advice_commitments:
            put_point(pt)
        put_count(len(self.lookup_parts))
        for part in self.lookup_parts:
            put_point(part.permuted_input_commitment)
            put_point(part.permuted_table_commitment)
            put_point(part.z_commitment)
            for s in (
                part.z_x,
                part.z_wx,
                part.permuted_input_x,
                part.permuted_input_winv_x,
                part.permuted_table_x,
            ):
                put_scalar(s)
        put_count(len(self.shuffle_parts))
        for sp in self.shuffle_parts:
            put_point(sp.z_commitment)
            put_scalar(sp.z_x)
            put_scalar(sp.z_wx)
        put_count(len(self.permutation_z_commitments))
        for pt in self.permutation_z_commitments:
            put_point(pt)
        put_count(len(self.h_commitments))
        for pt in self.h_commitments:
            put_point(pt)
        put_evals(self.advice_evals)
        put_evals(self.fixed_evals)
        put_count(len(self.sigma_evals))
        for v in self.sigma_evals:
            put_scalar(v)
        put_count(len(self.system_evals))
        for name in sorted(self.system_evals):
            put_scalar(self.system_evals[name])
        put_count(len(self.permutation_z_evals))
        for d in self.permutation_z_evals:
            for key in sorted(d):
                put_scalar(d[key])
        put_count(len(self.h_evals))
        for v in self.h_evals:
            put_scalar(v)
        put_count(len(self.openings))
        for point, ipa in self.openings:
            put_scalar(point)
            chunks.append(ipa.to_bytes())
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, vk, data: bytes) -> "Proof":
        """Strictly decode proof bytes against a verifying key.

        The vk pins the expected shape (commitment counts, evaluation
        key sets, quotient-chunk bound, IPA round count); any deviation
        raises :class:`~repro.wire.WireFormatError`.  This is the only
        path by which remote bytes become a :class:`Proof`.
        """
        from repro.proving.protocol import collect_queries

        curve = vk.params.curve
        p = vk.field.p
        cs = vk.cs
        point_size = point_wire_size(curve)
        queries = collect_queries(cs)

        reader = ByteReader(data)
        reader.expect(WIRE_MAGIC, "proof header")

        def exact_count(what: str, expected: int, element_size: int) -> int:
            got = reader.count(
                what, element_size=element_size, max_count=expected
            )
            if got != expected:
                raise WireFormatError(
                    f"{what} count {got} != expected {expected}"
                )
            return got

        def read_evals(
            what: str, expected_keys: list[tuple[int, int]]
        ) -> dict[tuple[int, int], int]:
            exact_count(what, len(expected_keys), 8 + SCALAR_BYTES)
            out: dict[tuple[int, int], int] = {}
            previous: tuple[int, int] | None = None
            for _ in expected_keys:
                key = (reader.u32(f"{what} column"), reader.i32(f"{what} rotation"))
                if previous is not None and key <= previous:
                    raise WireFormatError(f"{what} keys not strictly ascending")
                previous = key
                out[key] = reader.scalar(p, what)
            if sorted(out) != sorted(expected_keys):
                raise WireFormatError(f"{what} keys do not match the circuit")
            return out

        exact_count("advice commitments", len(cs.advice_columns), point_size)
        advice_commitments = [
            reader.point(curve, "advice commitment")
            for _ in cs.advice_columns
        ]

        exact_count(
            "lookup parts", len(cs.lookups), 3 * point_size + 5 * SCALAR_BYTES
        )
        lookup_parts = [
            LookupProofPart(
                permuted_input_commitment=reader.point(curve, "lookup A'"),
                permuted_table_commitment=reader.point(curve, "lookup S'"),
                z_commitment=reader.point(curve, "lookup z"),
                z_x=reader.scalar(p, "lookup z(x)"),
                z_wx=reader.scalar(p, "lookup z(wx)"),
                permuted_input_x=reader.scalar(p, "lookup A'(x)"),
                permuted_input_winv_x=reader.scalar(p, "lookup A'(x/w)"),
                permuted_table_x=reader.scalar(p, "lookup S'(x)"),
            )
            for _ in cs.lookups
        ]

        exact_count(
            "shuffle parts", len(cs.shuffles), point_size + 2 * SCALAR_BYTES
        )
        shuffle_parts = [
            ShuffleProofPart(
                z_commitment=reader.point(curve, "shuffle z"),
                z_x=reader.scalar(p, "shuffle z(x)"),
                z_wx=reader.scalar(p, "shuffle z(wx)"),
            )
            for _ in cs.shuffles
        ]

        n_chunks = len(vk.permutation_chunks)
        exact_count("permutation z commitments", n_chunks, point_size)
        permutation_z_commitments = [
            reader.point(curve, "permutation z commitment")
            for _ in range(n_chunks)
        ]

        # The quotient is split into at most 2^(extended_k - k) chunks of
        # degree < n; a count outside [1, bound] cannot come from an
        # honest prover and would let a cheat inflate the quotient degree.
        h_bound = 1 << (vk.extended_k - vk.k)
        n_h = reader.count(
            "h commitments", element_size=point_size, max_count=h_bound
        )
        if n_h < 1:
            raise WireFormatError("h commitments count must be at least 1")
        h_commitments = [
            reader.point(curve, "h commitment") for _ in range(n_h)
        ]

        advice_evals = read_evals("advice evals", queries.advice)
        fixed_evals = read_evals("fixed evals", queries.fixed)

        exact_count("sigma evals", len(vk.sigma_commitments), SCALAR_BYTES)
        sigma_evals = [
            reader.scalar(p, "sigma eval") for _ in vk.sigma_commitments
        ]

        system_names = sorted(vk.system_commitments)
        exact_count("system evals", len(system_names), SCALAR_BYTES)
        system_evals = {
            name: reader.scalar(p, f"system eval {name}")
            for name in system_names
        }

        exact_count("permutation z evals", n_chunks, 2 * SCALAR_BYTES)
        permutation_z_evals: list[dict[str, int]] = []
        for j in range(n_chunks):
            keys = ["wx", "x"]
            if n_chunks > 1 and j < n_chunks - 1:
                keys = ["chain", "wx", "x"]  # sorted order
            permutation_z_evals.append(
                {key: reader.scalar(p, f"permutation z eval {key}") for key in keys}
            )

        exact_count("h evals", n_h, SCALAR_BYTES)
        h_evals = [reader.scalar(p, "h eval") for _ in range(n_h)]

        ipa_size = 4 + 2 * vk.params.k * point_size + 2 * SCALAR_BYTES
        n_openings = reader.count(
            "openings",
            element_size=SCALAR_BYTES + ipa_size,
            max_count=max(1, reader.remaining // (SCALAR_BYTES + ipa_size)),
        )
        openings: list[tuple[int, IpaProof]] = []
        for _ in range(n_openings):
            point = reader.scalar(p, "opening point")
            openings.append(
                (point, IpaProof.read_from(reader, curve, vk.params.k))
            )

        reader.finish()
        return cls(
            advice_commitments=advice_commitments,
            lookup_parts=lookup_parts,
            shuffle_parts=shuffle_parts,
            permutation_z_commitments=permutation_z_commitments,
            h_commitments=h_commitments,
            advice_evals=advice_evals,
            fixed_evals=fixed_evals,
            sigma_evals=sigma_evals,
            system_evals=system_evals,
            permutation_z_evals=permutation_z_evals,
            h_evals=h_evals,
            openings=openings,
        )
