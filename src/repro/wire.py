"""Strict byte-level decoding for the proof wire format.

Proofs are non-interactive artifacts shipped over a wire: the verifier
must treat every byte as adversarial.  :class:`ByteReader` is the one
place the decoding rules live:

- every count is length-checked against the bytes actually remaining,
  so a hostile count can never trigger a huge allocation;
- scalars are rejected unless canonical (strictly below the field
  modulus) -- two encodings of the same residue would otherwise slip
  past commitment binding;
- points are rejected unless both affine coordinates are canonical and
  the point lies on the curve (the identity is the reserved ``(0, 0)``
  encoding, which is never on a ``b != 0`` short-Weierstrass curve);
- trailing bytes after the last field are an error (:meth:`finish`).

Every decoder in :mod:`repro.proving.proof`, :mod:`repro.commit.ipa`
and :mod:`repro.db.commitment` is built on this reader, so the
fault-injection harness (:mod:`repro.soundness`) exercises a single,
uniform rejection surface.
"""

from __future__ import annotations

from repro.ecc.curve import Curve, Point
from repro.errors import WireFormatError

#: Canonical scalar encoding width (Pasta scalars are < 2^255).
SCALAR_BYTES = 32

__all__ = ["ByteReader", "SCALAR_BYTES", "WireFormatError"]


class ByteReader:
    """A bounds-checked cursor over untrusted bytes."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.remaining < n:
            raise WireFormatError(
                f"truncated {what}: need {n} bytes, have {self.remaining}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def expect(self, magic: bytes, what: str) -> None:
        if self.take(len(magic), what) != magic:
            raise WireFormatError(f"bad {what}")

    def u32(self, what: str) -> int:
        return int.from_bytes(self.take(4, what), "little")

    def i32(self, what: str) -> int:
        value = self.u32(what)
        return value - (1 << 32) if value >= (1 << 31) else value

    def count(self, what: str, *, element_size: int, max_count: int) -> int:
        """Read a u32 element count; reject counts that exceed
        ``max_count`` or promise more elements than the remaining bytes
        could possibly hold."""
        value = self.u32(f"{what} count")
        if value > max_count:
            raise WireFormatError(
                f"{what} count {value} exceeds bound {max_count}"
            )
        if element_size > 0 and value * element_size > self.remaining:
            raise WireFormatError(
                f"{what} count {value} exceeds remaining bytes"
            )
        return value

    def blob(self, what: str, *, max_len: int) -> bytes:
        """Read a u32 length-prefixed byte string; reject lengths above
        ``max_len`` (hostile-allocation bound) before taking the bytes
        (which itself rejects lengths past the remaining data)."""
        n = self.u32(f"{what} length")
        if n > max_len:
            raise WireFormatError(
                f"{what} length {n} exceeds bound {max_len}"
            )
        return self.take(n, what)

    def string(self, what: str, *, max_len: int) -> str:
        """Read a u32 length-prefixed UTF-8 string (strictly decoded:
        invalid UTF-8 is a wire error, and valid UTF-8 re-encodes to the
        same bytes, so every string has one canonical encoding)."""
        raw = self.blob(what, max_len=max_len)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in {what}: {exc}") from None

    def scalar(self, modulus: int, what: str) -> int:
        value = int.from_bytes(self.take(SCALAR_BYTES, what), "little")
        if value >= modulus:
            raise WireFormatError(f"non-canonical scalar in {what}")
        return value

    def point(self, curve: Curve, what: str) -> Point:
        size = 2 * curve.field._byte_length
        try:
            return Point.from_bytes(curve, self.take(size, what))
        except ValueError as exc:
            raise WireFormatError(f"invalid point in {what}: {exc}") from None

    def finish(self) -> None:
        if self.remaining:
            raise WireFormatError(f"{self.remaining} trailing bytes")


def point_wire_size(curve: Curve) -> int:
    """Serialized size of one point on ``curve`` (uncompressed affine)."""
    return 2 * curve.field._byte_length
