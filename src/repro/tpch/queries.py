"""The six TPC-H evaluation queries (paper section 5.1).

Adaptations mirror the paper's (and ZKSQL's) evaluation setup:

- all decimals are 64-bit fixed-point integers (scale 100),
- Q9's string pattern-matching predicate (``p_name like '%green%'``) is
  excluded, "similar to ZKSQL's approach",
- nested subqueries (Q8, Q18) are flattened into the equivalent
  GROUP BY / HAVING form,
- the compound partsupp key joins through the packed ``ps_pskey``.
"""

Q1 = """
select
    l_returnflag,
    l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice) as sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
    avg(l_quantity) as avg_qty,
    avg(l_extendedprice) as avg_price,
    avg(l_discount) as avg_disc,
    count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval '90' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
"""

Q3 = """
select
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) as revenue,
    o_orderdate,
    o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10
"""

Q5 = """
select
    n_name,
    sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01'
  and o_orderdate < date '1994-01-01' + interval '1' year
group by n_name
order by revenue desc
"""

Q8 = """
select
    extract(year from o_orderdate) as o_year,
    sum(case when n2.n_name = 'BRAZIL'
             then l_extendedprice * (1 - l_discount) else 0 end)
      / sum(l_extendedprice * (1 - l_discount)) as mkt_share
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
where p_partkey = l_partkey
  and s_suppkey = l_suppkey
  and l_orderkey = o_orderkey
  and o_custkey = c_custkey
  and c_nationkey = n1.n_nationkey
  and n1.n_regionkey = r_regionkey
  and r_name = 'AMERICA'
  and s_nationkey = n2.n_nationkey
  and o_orderdate between date '1995-01-01' and date '1996-12-31'
  and p_type = 'ECONOMY ANODIZED STEEL'
group by o_year
order by o_year
"""

Q9 = """
select
    n_name,
    extract(year from o_orderdate) as o_year,
    sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)
        as sum_profit
from lineitem, supplier, partsupp, part, orders, nation
where s_suppkey = l_suppkey
  and ps_pskey = l_pskey
  and p_partkey = l_partkey
  and o_orderkey = l_orderkey
  and s_nationkey = n_nationkey
group by n_name, o_year
order by n_name, o_year desc
"""

Q18 = """
select
    c_custkey,
    o_orderkey,
    o_orderdate,
    o_totalprice,
    sum(l_quantity) as total_qty
from customer, orders, lineitem
where c_custkey = o_custkey
  and o_orderkey = l_orderkey
group by c_custkey, o_orderkey, o_orderdate, o_totalprice
having sum(l_quantity) > 300
order by o_totalprice desc, o_orderdate
limit 100
"""

QUERIES: dict[str, str] = {
    "Q1": Q1,
    "Q3": Q3,
    "Q5": Q5,
    "Q8": Q8,
    "Q9": Q9,
    "Q18": Q18,
}


def query(name: str) -> str:
    """Fetch a query by its paper identifier (Q1, Q3, Q5, Q8, Q9, Q18)."""
    if name not in QUERIES:
        raise KeyError(f"unknown query {name!r}; have {sorted(QUERIES)}")
    return QUERIES[name]
