"""TPC-H workload (paper section 5.1).

A deterministic, seedable data generator for all 8 TPC-H tables, scaled
by the lineitem row count exactly as the paper scales its experiments
(60k / 120k / 240k lineitem rows, dimension tables proportional), plus
the six evaluation queries Q1, Q3, Q5, Q8, Q9, Q18 adapted the same way
the paper adapts them (fixed-point integers, no string pattern
matching, flattened subqueries).
"""

from repro.tpch.datagen import generate, scale_for_lineitem_rows
from repro.tpch.queries import QUERIES, query

__all__ = ["generate", "scale_for_lineitem_rows", "QUERIES", "query"]
