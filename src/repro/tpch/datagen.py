"""Deterministic TPC-H data generator.

Faithful to the dbgen *distributions* that matter for the six
evaluation queries (uniform keys, date ranges, TPC-H vocabulary for
flags/segments/types) while staying pure Python and exactly
reproducible from a seed.  The database is scaled by the lineitem row
count, with dimension tables kept at TPC-H's standard ratios:

========== ===========================
table      rows per lineitem row
========== ===========================
orders     1 / 4
customer   1 / 40
part       1 / 30
partsupp   1 / 7.5
supplier   1 / 600
nation     25 (fixed)
region     5 (fixed)
========== ===========================

Composite keys: TPC-H's ``partsupp`` has a compound primary key
(ps_partkey, ps_suppkey).  The circuits join on single keys, so the
generator materializes the packed synthetic key ``ps_pskey`` (and the
matching ``l_pskey`` on lineitem) -- the standard adaptation for
single-key join operators.
"""

from __future__ import annotations

import datetime
import hashlib
import logging
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import telemetry
from repro.db.database import Database
from repro.db.schema import ColumnDef, TableSchema
from repro.db.types import DATE, DECIMAL, INT, STRING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import ArtifactCache

logger = logging.getLogger("repro.tpch.datagen")

#: Bump when the generator's output changes for the same (rows, seed) --
#: it is part of the artifact-cache description, so old cached databases
#: are invalidated automatically.
DATAGEN_VERSION = 1

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUS = ["F", "O"]
PART_TYPES = [
    "ECONOMY ANODIZED STEEL", "ECONOMY BURNISHED COPPER",
    "LARGE BRUSHED BRASS", "MEDIUM POLISHED TIN", "PROMO PLATED NICKEL",
    "SMALL ANODIZED NICKEL", "STANDARD BURNISHED STEEL",
    "STANDARD POLISHED BRASS",
]
PRIORITIES = [0, 1, 2]

#: packed-key shift for (partkey, suppkey) composites.
PS_KEY_SHIFT = 1 << 20


@dataclass(frozen=True)
class Scale:
    lineitem: int
    orders: int
    customer: int
    part: int
    partsupp: int
    supplier: int


def scale_for_lineitem_rows(lineitem_rows: int) -> Scale:
    """The paper's scaling rule: quantify by lineitem, scale dimensions
    proportionally (TPC-H SF ratios)."""
    if lineitem_rows < 8:
        raise ValueError("need at least 8 lineitem rows")
    orders = max(2, lineitem_rows // 4)
    return Scale(
        lineitem=lineitem_rows,
        orders=orders,
        customer=max(2, lineitem_rows // 40),
        part=max(2, lineitem_rows // 30),
        partsupp=max(2, int(lineitem_rows // 7.5)),
        supplier=max(2, lineitem_rows // 600),
    )


def _schemas() -> dict[str, TableSchema]:
    return {
        "region": TableSchema(
            "region",
            [ColumnDef("r_regionkey", INT), ColumnDef("r_name", STRING)],
            primary_key="r_regionkey",
        ),
        "nation": TableSchema(
            "nation",
            [
                ColumnDef("n_nationkey", INT),
                ColumnDef("n_name", STRING),
                ColumnDef("n_regionkey", INT),
            ],
            primary_key="n_nationkey",
            foreign_keys={"n_regionkey": ("region", "r_regionkey")},
        ),
        "supplier": TableSchema(
            "supplier",
            [
                ColumnDef("s_suppkey", INT),
                ColumnDef("s_nationkey", INT),
                ColumnDef("s_acctbal", DECIMAL),
            ],
            primary_key="s_suppkey",
            foreign_keys={"s_nationkey": ("nation", "n_nationkey")},
        ),
        "customer": TableSchema(
            "customer",
            [
                ColumnDef("c_custkey", INT),
                ColumnDef("c_nationkey", INT),
                ColumnDef("c_mktsegment", STRING),
                ColumnDef("c_acctbal", DECIMAL),
            ],
            primary_key="c_custkey",
            foreign_keys={"c_nationkey": ("nation", "n_nationkey")},
        ),
        "part": TableSchema(
            "part",
            [
                ColumnDef("p_partkey", INT),
                ColumnDef("p_type", STRING),
                ColumnDef("p_size", INT),
                ColumnDef("p_retailprice", DECIMAL),
            ],
            primary_key="p_partkey",
        ),
        "partsupp": TableSchema(
            "partsupp",
            [
                ColumnDef("ps_pskey", INT),
                ColumnDef("ps_partkey", INT),
                ColumnDef("ps_suppkey", INT),
                ColumnDef("ps_availqty", INT),
                ColumnDef("ps_supplycost", DECIMAL),
            ],
            primary_key="ps_pskey",
            foreign_keys={
                "ps_partkey": ("part", "p_partkey"),
                "ps_suppkey": ("supplier", "s_suppkey"),
            },
        ),
        "orders": TableSchema(
            "orders",
            [
                ColumnDef("o_orderkey", INT),
                ColumnDef("o_custkey", INT),
                ColumnDef("o_orderdate", DATE),
                ColumnDef("o_shippriority", INT),
                ColumnDef("o_totalprice", DECIMAL),
            ],
            primary_key="o_orderkey",
            foreign_keys={"o_custkey": ("customer", "c_custkey")},
        ),
        "lineitem": TableSchema(
            "lineitem",
            [
                ColumnDef("l_orderkey", INT),
                ColumnDef("l_partkey", INT),
                ColumnDef("l_suppkey", INT),
                ColumnDef("l_pskey", INT),
                ColumnDef("l_quantity", INT),
                ColumnDef("l_extendedprice", DECIMAL),
                ColumnDef("l_discount", DECIMAL),
                ColumnDef("l_tax", DECIMAL),
                ColumnDef("l_returnflag", STRING),
                ColumnDef("l_linestatus", STRING),
                ColumnDef("l_shipdate", DATE),
            ],
            foreign_keys={
                "l_orderkey": ("orders", "o_orderkey"),
                "l_partkey": ("part", "p_partkey"),
                "l_suppkey": ("supplier", "s_suppkey"),
                "l_pskey": ("partsupp", "ps_pskey"),
            },
        ),
    }


def generate(lineitem_rows: int, seed: int = 19920873) -> Database:
    """Generate a scaled TPC-H database.  Deterministic in
    (lineitem_rows, seed)."""
    with telemetry.span("tpch.datagen", lineitem_rows=lineitem_rows, seed=seed):
        db = _generate(lineitem_rows, seed)
    logger.debug(
        "generated tpch database: %d lineitem rows, seed=%d, %d tables",
        lineitem_rows, seed, len(db.tables),
    )
    return db


def _generate(lineitem_rows: int, seed: int) -> Database:
    scale = scale_for_lineitem_rows(lineitem_rows)
    rng = random.Random(seed)
    schemas = _schemas()
    db = Database()

    db.create_table(
        schemas["region"], [(i + 1, name) for i, name in enumerate(REGIONS)]
    )
    db.create_table(
        schemas["nation"],
        [
            (i + 1, name, region + 1)
            for i, (name, region) in enumerate(NATIONS)
        ],
    )
    db.create_table(
        schemas["supplier"],
        [
            (i + 1, rng.randrange(1, len(NATIONS) + 1),
             round(rng.uniform(-999.99, 9999.99), 2) + 1000.0)
            for i in range(scale.supplier)
        ],
    )
    db.create_table(
        schemas["customer"],
        [
            (
                i + 1,
                rng.randrange(1, len(NATIONS) + 1),
                rng.choice(SEGMENTS),
                round(rng.uniform(0.0, 9999.99), 2),
            )
            for i in range(scale.customer)
        ],
    )
    db.create_table(
        schemas["part"],
        [
            (
                i + 1,
                rng.choice(PART_TYPES),
                rng.randrange(1, 51),
                round(900 + (i % 1000) / 10.0, 2),
            )
            for i in range(scale.part)
        ],
    )

    # partsupp: each part is stocked by a few suppliers.  At tiny scales
    # the distinct (part, supplier) space caps the row count.
    partsupp_target = min(scale.partsupp, scale.part * scale.supplier)
    partsupp_rows = []
    seen = set()
    while len(partsupp_rows) < partsupp_target:
        part = rng.randrange(1, scale.part + 1)
        supp = rng.randrange(1, scale.supplier + 1)
        if (part, supp) in seen:
            continue
        seen.add((part, supp))
        partsupp_rows.append(
            (
                part * PS_KEY_SHIFT + supp,
                part,
                supp,
                rng.randrange(1, 10000),
                round(rng.uniform(1.0, 1000.0), 2),
            )
        )
    db.create_table(schemas["partsupp"], partsupp_rows)

    start = datetime.date(1992, 1, 1)
    span_days = (datetime.date(1998, 8, 2) - start).days
    order_dates = {}
    orders_rows = []
    for i in range(scale.orders):
        orderdate = start + datetime.timedelta(days=rng.randrange(span_days))
        order_dates[i + 1] = orderdate
        orders_rows.append(
            (
                i + 1,
                rng.randrange(1, scale.customer + 1),
                orderdate.isoformat(),
                rng.choice(PRIORITIES),
                round(rng.uniform(850.0, 55000.0), 2),
            )
        )
    db.create_table(schemas["orders"], orders_rows)

    lineitem_rows_out = []
    ps_by_index = partsupp_rows
    for i in range(scale.lineitem):
        orderkey = rng.randrange(1, scale.orders + 1)
        ps = ps_by_index[rng.randrange(len(ps_by_index))]
        orderdate = order_dates[orderkey]
        shipdate = orderdate + datetime.timedelta(days=rng.randrange(1, 122))
        quantity = rng.randrange(1, 51)
        extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
        lineitem_rows_out.append(
            (
                orderkey,
                ps[1],
                ps[2],
                ps[0],
                quantity,
                extended,
                round(rng.randrange(0, 11) / 100.0, 2),
                round(rng.randrange(0, 9) / 100.0, 2),
                rng.choice(RETURN_FLAGS),
                rng.choice(LINE_STATUS),
                shipdate.isoformat(),
            )
        )
    db.create_table(schemas["lineitem"], lineitem_rows_out)
    return db


# -- cacheable artifact -------------------------------------------------------


def dataset_fingerprint(lineitem_rows: int, seed: int = 19920873) -> str:
    """A stable identity for the dataset a ``generate`` call would
    produce.  Depends only on the generation inputs (plus
    :data:`DATAGEN_VERSION`), so it can be computed without generating
    anything -- it is the artifact-cache key for TPC-H databases."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"tpch:v{DATAGEN_VERSION}:{lineitem_rows}:{seed}".encode())
    return h.hexdigest()


def database_digest(db: Database) -> str:
    """A content hash over every table's encoded columns, row by row.
    Two databases with identical logical content agree; used by tests to
    check cached artifacts byte-for-byte match fresh generation."""
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(db.tables):
        table = db.tables[name]
        h.update(name.encode())
        h.update(b"\x00")
        for column in sorted(table.columns):
            h.update(column.encode())
            h.update(b"\x00")
            for value in table.columns[column]:
                h.update(value.to_bytes((value.bit_length() + 8) // 8, "big"))
                h.update(b"\x00")
    return h.hexdigest()


def generate_cached(
    lineitem_rows: int,
    seed: int = 19920873,
    cache: "ArtifactCache | None" = None,
) -> tuple[Database, bool]:
    """``generate``, but loading through the artifact cache.

    Returns ``(database, cache_hit)``.  The cache key is
    :func:`dataset_fingerprint`, so bumping the generator version or
    changing scale/seed transparently regenerates."""
    from repro.cache import resolve_cache

    store = resolve_cache(cache)
    return store.fetch(
        "tpch",
        (dataset_fingerprint(lineitem_rows, seed),),
        build=lambda: generate(lineitem_rows, seed),
    )
