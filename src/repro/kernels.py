"""Global switch for the algebraic kernel fast paths.

The kernel layer (batch-affine Pippenger, GLV scalar decomposition,
fixed-base window tables, cached NTT twiddles) produces group elements
and evaluation vectors identical to the reference paths -- proofs come
out byte-for-byte the same -- so the switch exists purely so benchmarks
and tests can measure or validate the reference implementations
in-process (``benchmarks/bench_kernels.py`` times both sides of every
kernel from one interpreter).

The flag is process-local.  Worker processes inherit the value at fork
time; the comparison benchmarks therefore run their reference passes
under the serial backend, where no stale worker state exists.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_FLAG = "REPRO_KERNEL_FASTPATH"

_fastpath: bool = os.environ.get(_ENV_FLAG, "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def fastpath_enabled() -> bool:
    """True when the optimized kernels are active (the default)."""
    return _fastpath


def set_fastpath(on: bool) -> bool:
    """Switch the kernel fast paths; returns the previous setting."""
    global _fastpath
    previous = _fastpath
    _fastpath = bool(on)
    return previous


@contextmanager
def fastpath(on: bool) -> Iterator[None]:
    """Temporarily force the fast paths on or off (tests, benchmarks)."""
    previous = set_fastpath(on)
    try:
        yield
    finally:
        set_fastpath(previous)
