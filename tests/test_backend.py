"""Field-arithmetic backends: selection, parity, byte-identical proofs.

The vectorized engines must be *invisible* except for speed: every hook
either declines or returns exactly what the reference loop would have
produced.  These tests pin that contract three ways:

- hypothesis parity of the limb engine's primitive ops against plain
  int arithmetic,
- hook-level parity (NTT, Lagrange basis, expression evaluation,
  column reduction) between the ``python`` and ``numpy`` backends,
- an end-to-end prove under ``deterministic_rng`` whose wire bytes must
  not depend on the backend, with telemetry counter totals equal too.

The engine thresholds (``MIN_NTT`` etc.) are monkeypatched down where
needed so the small circuit sizes used in tests actually route through
the vector code instead of being declined for being too short.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PoneglyphDB, ProverConfig, telemetry
from repro.algebra import backend
from repro.algebra.backend import numpy_backend, numpy_limb
from repro.algebra.backend.gmpy2_scalar import Gmpy2Backend
from repro.algebra.domain import EvaluationDomain
from repro.algebra.field import (
    BASE_FIELD,
    SCALAR_FIELD,
    deterministic_rng,
    montgomery_batch_inv,
)
from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import INT
from repro.errors import BatchInversionError, ConfigError
from repro.plonkish.expression import (
    ColumnQuery,
    Constant,
    Product,
    Scaled,
    Sum,
)
from repro.proving.evaluation import evaluate_expression_ext

NUMPY_OK = numpy_limb.available()
needs_numpy = pytest.mark.skipif(not NUMPY_OK, reason="numpy not installed")

P = SCALAR_FIELD.p

elements = st.integers(min_value=0, max_value=P - 1)


@pytest.fixture()
def small_thresholds(monkeypatch):
    """Route even test-sized vectors through the vector engine."""
    monkeypatch.setattr(numpy_limb, "MIN_NTT", 4)
    monkeypatch.setattr(numpy_limb, "MIN_INV", 4)
    monkeypatch.setattr(numpy_limb, "MIN_EXPR", 4)
    monkeypatch.setattr(numpy_backend, "MIN_REDUCE", 4)
    # Force the expression cost model to accept every tree so parity
    # tests exercise the vector walk even on shapes it would decline.
    monkeypatch.setattr(numpy_backend, "EXPR_MIN_GAIN", float("-inf"))


class TestSelection:
    def test_default_resolves_to_an_available_backend(self):
        assert backend.backend_name() in backend.available_backends()

    def test_python_always_available(self):
        assert "python" in backend.available_backends()

    def test_set_backend_returns_previous(self):
        previous = backend.set_backend("python")
        try:
            assert backend.backend_name() == "python"
        finally:
            backend.set_backend(previous)

    def test_context_manager_restores(self):
        before = backend.backend_name()
        with backend.backend("python"):
            assert backend.backend_name() == "python"
        assert backend.backend_name() == before

    def test_unknown_name_degrades_to_auto(self):
        """A typo'd REPRO_FIELD_BACKEND must not break anything."""
        with backend.backend("no-such-engine"):
            assert backend.backend_name() in backend.available_backends()

    def test_unavailable_backend_falls_back(self):
        """Requesting gmpy2 on a host without it degrades down the
        auto chain instead of crashing."""
        with backend.backend("gmpy2"):
            name = backend.backend_name()
            assert name in backend.available_backends()
            if not Gmpy2Backend.available():
                assert name != "gmpy2"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            ProverConfig(field_backend="cuda")

    def test_config_accepts_known_backends(self):
        for name in ("auto", "python", "numpy", "gmpy2"):
            assert ProverConfig(field_backend=name).field_backend == name


@needs_numpy
class TestLimbEngineParity:
    """The limb engine's primitives against plain int arithmetic."""

    @given(a=elements, b=elements)
    @settings(max_examples=30, deadline=None)
    def test_mul_matches_int(self, a, b):
        ctx = numpy_limb.ctx_for(P)
        got = ctx.lower(ctx.mul(ctx.lift([a]), ctx.lift([b])))
        assert got == [a * b % P]

    @given(vals=st.lists(elements, min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_lift_lower_roundtrip(self, vals):
        ctx = numpy_limb.ctx_for(P)
        assert ctx.lower(ctx.lift(vals)) == vals

    @given(vals=st.lists(st.integers(1, P - 1), min_size=1, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_tree_inv_matches_int(self, vals):
        ctx = numpy_limb.ctx_for(P)
        inv = ctx.tree_inv(vals)
        assert all(v * i % P == 1 for v, i in zip(vals, inv))

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=20, deadline=None)
    def test_add_mul_chain_matches_int(self, a, b, c):
        """(a*b + c) * (b + c) with non-canonical intermediates."""
        ctx = numpy_limb.ctx_for(P)
        A, B, C = ctx.lift([a]), ctx.lift([b]), ctx.lift([c])
        got = ctx.lower(ctx.mul(ctx.mul(A, B) + C, B + C))
        assert got == [(a * b + c) * (b + c) % P]

    def test_base_field_supported_too(self):
        ctx = numpy_limb.ctx_for(BASE_FIELD.p)
        assert ctx is not None
        rng = random.Random(5)
        vals = [rng.randrange(BASE_FIELD.p) for _ in range(9)]
        got = ctx.lower(ctx.mul(ctx.lift(vals), ctx.lift(vals)))
        assert got == [v * v % BASE_FIELD.p for v in vals]


@needs_numpy
class TestHookParity:
    def test_ntt_matches_reference(self):
        rng = random.Random(11)
        dom = EvaluationDomain(SCALAR_FIELD, 11)
        vals = [rng.randrange(P) for _ in range(dom.size)]
        with backend.backend("python"):
            ref = dom.fft(vals)
        with backend.backend("numpy"):
            fast = dom.fft(vals)
        assert fast == ref

    def test_fft_round_trip(self):
        rng = random.Random(12)
        dom = EvaluationDomain(SCALAR_FIELD, 11)
        coeffs = [rng.randrange(P) for _ in range(dom.size)]
        with backend.backend("numpy"):
            assert dom.ifft(dom.fft(coeffs)) == coeffs

    def test_coset_fft_matches_reference(self):
        rng = random.Random(13)
        dom = EvaluationDomain(SCALAR_FIELD, 11)
        coeffs = [rng.randrange(P) for _ in range(dom.size)]
        shift = SCALAR_FIELD.multiplicative_generator
        with backend.backend("python"):
            ref = dom.coset_fft(coeffs, shift)
        with backend.backend("numpy"):
            fast = dom.coset_fft(coeffs, shift)
        assert fast == ref

    def test_lagrange_evals_match(self, small_thresholds):
        rng = random.Random(10)
        dom = EvaluationDomain(SCALAR_FIELD, 5)
        for x in [0, 1, P - 1] + [rng.randrange(P) for _ in range(7)]:
            with backend.backend("python"):
                ref = dom.lagrange_basis_evals(x, dom.size)
            with backend.backend("numpy"):
                fast = dom.lagrange_basis_evals(x, dom.size)
            assert fast == ref, f"x={x}"

    def test_lagrange_point_inside_domain(self, small_thresholds):
        """z == 0 short-circuits before any backend dispatch."""
        dom = EvaluationDomain(SCALAR_FIELD, 5)
        inside = pow(dom.omega, 3, P)
        with backend.backend("numpy"):
            evals = dom.lagrange_basis_evals(inside, dom.size)
        assert evals == [1 if i == 3 else 0 for i in range(dom.size)]

    def test_expression_eval_matches(self, small_thresholds):
        rng = random.Random(14)
        ext_n = 64
        cols = {"a": object(), "b": object()}
        data = {
            id(c): [rng.randrange(P) for _ in range(ext_n)]
            for c in cols.values()
        }
        get = lambda c: data[id(c)]
        qa, qb = ColumnQuery(cols["a"]), ColumnQuery(cols["b"], rotation=1)
        # (a * b + 3) * (a<-2> + 7*b) -- rotations, products, a scaled
        # term, a constant, and enough depth to cross a normalize.
        expr = Product(
            Sum(Product(qa, qb), Constant(3)),
            Sum(ColumnQuery(cols["a"], rotation=-2), Scaled(qb, 7)),
        )
        with backend.backend("python"):
            ref = evaluate_expression_ext(expr, get, ext_n, 4, P)
        with backend.backend("numpy"):
            fast = evaluate_expression_ext(expr, get, ext_n, 4, P)
        assert fast == ref

    def test_expression_eval_deep_sum_chain(self, small_thresholds):
        """Many stacked sums force the magnitude-driven renormalization
        inside the vector walk; results must still match exactly."""
        rng = random.Random(15)
        ext_n = 32
        col = object()
        data = [rng.randrange(P) for _ in range(ext_n)]
        get = lambda c: data
        expr = ColumnQuery(col)
        for _ in range(40):
            expr = Sum(expr, ColumnQuery(col))
        expr = Product(expr, expr)
        with backend.backend("python"):
            ref = evaluate_expression_ext(expr, get, ext_n, 1, P)
        with backend.backend("numpy"):
            fast = evaluate_expression_ext(expr, get, ext_n, 1, P)
        assert fast == ref

    def test_expression_cost_model_declines_shallow_product_tree(
        self, monkeypatch
    ):
        """At the default margin the hook refuses trees where the
        lift/lower boundary tax outruns the per-node savings -- a
        shallow product over two columns is the canonical loser."""
        monkeypatch.setattr(numpy_limb, "MIN_EXPR", 4)
        engine = backend._registry()["numpy"]
        a, b = object(), object()
        expr = Product(ColumnQuery(a), ColumnQuery(b))
        data = [1] * 64
        got = engine.eval_expression_ext(expr, lambda c: data, 64, 1, P)
        assert got is None

    def test_expression_cost_model_accepts_sum_chain(self, monkeypatch):
        """A deep sum chain over one column is vector-favorable and is
        accepted at the *default* margin (no forced acceptance)."""
        monkeypatch.setattr(numpy_limb, "MIN_EXPR", 4)
        engine = backend._registry()["numpy"]
        rng = random.Random(21)
        ext_n = 64
        col = object()
        data = [rng.randrange(P) for _ in range(ext_n)]
        expr = ColumnQuery(col)
        for _ in range(16):
            expr = Sum(expr, ColumnQuery(col, rotation=1))
        got = engine.eval_expression_ext(
            expr, lambda c: data, ext_n, 1, P
        )
        assert got is not None
        with backend.backend("python"):
            ref = evaluate_expression_ext(
                expr, lambda c: data, ext_n, 1, P
            )
        assert got == ref

    def test_expression_eval_constant_only(self, small_thresholds):
        expr = Sum(Constant(41), Constant(1))
        with backend.backend("numpy"):
            got = evaluate_expression_ext(expr, lambda c: [], 16, 1, P)
        assert got == [42] * 16

    def test_reduce_column_identity_for_machine_ints(
        self, small_thresholds
    ):
        engine = backend._registry()["numpy"]
        vals = list(range(100))
        assert engine.reduce_column(vals, P) == vals

    def test_reduce_column_declines_out_of_range(self, small_thresholds):
        engine = backend._registry()["numpy"]
        assert engine.reduce_column([1, -5, 3] * 40, P) is None
        assert engine.reduce_column([1, P + 1, 3] * 40, P) is None
        assert engine.reduce_column([1, 1 << 70, 3] * 40, P) is None

    def test_batch_inv_routed_through_backend_still_matches(self):
        """montgomery_batch_inv dispatches to the active backend; the
        numpy engine declines (measured pessimization) so this pins
        that the fall-through still produces correct inverses."""
        rng = random.Random(16)
        vals = [rng.randrange(1, P) for _ in range(300)]
        with backend.backend("numpy"):
            out = montgomery_batch_inv(vals, P)
        assert all(v * i % P == 1 for v, i in zip(vals, out))

    def test_zero_error_index_backend_independent(self):
        for name in ("python", "numpy"):
            with backend.backend(name):
                with pytest.raises(BatchInversionError) as excinfo:
                    montgomery_batch_inv([4, 5, P, 7], P)
            assert excinfo.value.index == 2


@pytest.mark.skipif(
    not Gmpy2Backend.available(), reason="gmpy2 not installed"
)
class TestGmpy2Parity:  # pragma: no cover - needs the perf extra
    def test_batch_inv_matches_reference(self):
        rng = random.Random(17)
        vals = [rng.randrange(1, P) for _ in range(500)]
        with backend.backend("python"):
            ref = montgomery_batch_inv(vals, P)
        with backend.backend("gmpy2"):
            fast = montgomery_batch_inv(vals, P)
        assert fast == ref


def _make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [ColumnDef("a", INT), ColumnDef("v", INT)],
            primary_key="a",
        ),
        [(i, 10 * i % 70) for i in range(1, 9)],
    )
    return db


@needs_numpy
class TestEndToEnd:
    def test_proofs_byte_identical_and_counters_equal(
        self, small_thresholds
    ):
        """Same session (so the database-commitment blinding is shared),
        same pinned prover seed: the wire bytes and the telemetry
        counter totals must not depend on the backend."""
        config = ProverConfig(
            k=6,
            limb_bits=4,
            value_bits=16,
            key_bits=16,
            use_cache=False,
            telemetry=True,
        )
        with PoneglyphDB.open(_make_db(), config) as session:
            session.commit()
            results = {}
            for name in ("python", "numpy"):
                with backend.backend(name):
                    telemetry.reset()
                    with deterministic_rng(0xFEED):
                        response = session.prove(
                            "select sum(v) as s from t where v < 50"
                        )
                    counters = telemetry.counters_snapshot()
                    assert session.verify(response).accepted, (
                        f"proof rejected under backend {name}"
                    )
                    results[name] = (response.wire_bytes(), counters)
        assert results["numpy"][0] == results["python"][0]
        # Workload counters (inversions, fft calls/points, msm sizes,
        # ...) are incremented before backend dispatch and must agree
        # exactly.  The fft.twiddle_* pair is plan-cache bookkeeping --
        # the numpy engine keeps its own twiddle tables and bypasses
        # the plan cache, so those two (and only those two) may differ.
        def workload(counters):
            return {
                key: value
                for key, value in counters.items()
                if not key.startswith("fft.twiddle_")
            }

        assert workload(results["numpy"][1]) == workload(
            results["python"][1]
        )
        assert results["python"][1]["field.inversions"] > 0
        assert results["python"][1]["fft.calls"] > 0

    def test_session_restores_previous_backend(self):
        before = backend.backend_name()
        config = ProverConfig(k=6, use_cache=False, field_backend="python")
        with PoneglyphDB.open(_make_db(), config):
            assert backend.backend_name() == "python"
        assert backend.backend_name() == before
