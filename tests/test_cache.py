"""The artifact cache: round trips, invalidation, and the cached
builders for public parameters, proving keys, and TPC-H data.

Invalidation in this design is key derivation: the key embeds the full
artifact description (format version, curve, k, circuit fingerprint,
generator seed), so any change to the inputs lands in a different file
and the stale artifact is simply never read again.
"""

import pickle

import pytest

from repro.algebra import SCALAR_FIELD
from repro.cache import (
    ArtifactCache,
    CACHE_FORMAT_VERSION,
    NullCache,
    cache_key,
    default_cache_dir,
    resolve_cache,
)
from repro.commit.params import PublicParams, cached_setup, setup
from repro.plonkish.constraint_system import ConstraintSystem
from repro.proving.keygen import cached_keygen, keygen, keygen_fingerprint
from repro.tpch.datagen import (
    DATAGEN_VERSION,
    database_digest,
    dataset_fingerprint,
    generate,
    generate_cached,
)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestArtifactCache:
    def test_round_trip(self, cache):
        calls = []

        def build():
            calls.append(1)
            return {"answer": 42, "items": [1, 2, 3]}

        value1, hit1 = cache.fetch("demo", ("a", 1), build)
        value2, hit2 = cache.fetch("demo", ("a", 1), build)
        assert (hit1, hit2) == (False, True)
        assert value1 == value2
        assert len(calls) == 1  # the second fetch came from disk
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_description_change_invalidates(self, cache):
        cache.fetch("demo", ("a", 1), lambda: "old")
        value, hit = cache.fetch("demo", ("a", 2), lambda: "new")
        assert not hit and value == "new"
        assert cache_key("demo", "a", 1) != cache_key("demo", "a", 2)

    def test_key_embeds_format_version(self):
        key = cache_key("demo", "x")
        # Recompute what the key would be under a bumped format version
        # by checking the version string participates in the hash.
        assert key.startswith("demo-")
        assert f"v{CACHE_FORMAT_VERSION}" is not None
        assert cache_key("demo", "x") == key  # deterministic
        assert cache_key("other", "x") != key

    def test_corrupt_artifact_rebuilds(self, cache):
        cache.fetch("demo", ("k",), lambda: [1, 2, 3])
        key = cache_key("demo", "k")
        cache.path_for(key).write_bytes(b"not a pickle")
        value, hit = cache.fetch("demo", ("k",), lambda: [1, 2, 3])
        assert not hit and value == [1, 2, 3]
        # And the rebuild repaired the artifact on disk.
        assert pickle.loads(cache.get_bytes(key)) == [1, 2, 3]

    def test_bit_flip_detected_and_evicted(self, cache):
        """A single flipped payload bit fails the frame digest: the
        artifact is evicted, counted, and rebuilt -- it never reaches
        the deserializer (which might happily unpickle garbage)."""
        from repro import telemetry

        cache.fetch("demo", ("flip",), lambda: list(range(64)))
        key = cache_key("demo", "flip")
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40  # flip one bit mid-payload
        path.write_bytes(bytes(raw))
        was_enabled = telemetry.enable(True)
        try:
            before = telemetry.counters_snapshot().get(
                "cache.corrupt_evictions", 0
            )
            assert cache.get_bytes(key) is None
            assert not path.exists()  # evicted on sight
            after = telemetry.counters_snapshot().get(
                "cache.corrupt_evictions", 0
            )
        finally:
            telemetry.enable(was_enabled)
        assert after == before + 1
        value, hit = cache.fetch("demo", ("flip",), lambda: list(range(64)))
        assert not hit and value == list(range(64))
        assert cache.get_bytes(key) is not None  # repaired

    def test_truncated_artifact_evicted(self, cache):
        cache.fetch("demo", ("trunc",), lambda: b"x" * 1000)
        key = cache_key("demo", "trunc")
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:37])
        assert cache.get_bytes(key) is None
        assert not path.exists()

    def test_frame_round_trip_raw_bytes(self, cache):
        cache.put_bytes("raw-key", b"\x00\x01\x02payload")
        assert cache.get_bytes("raw-key") == b"\x00\x01\x02payload"
        # Empty payloads frame fine too.
        cache.put_bytes("empty", b"")
        assert cache.get_bytes("empty") == b""

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ArtifactCache(tmp_path, enabled=False)
        _, hit1 = cache.fetch("demo", (), lambda: 1)
        _, hit2 = cache.fetch("demo", (), lambda: 1)
        assert not hit1 and not hit2
        assert list(tmp_path.iterdir()) == []

    def test_env_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not ArtifactCache(tmp_path).enabled

    def test_clear_by_kind(self, cache):
        cache.fetch("a", (1,), lambda: 1)
        cache.fetch("b", (1,), lambda: 2)
        assert cache.clear("a") == 1
        assert cache.clear() == 1

    def test_null_cache(self):
        null = NullCache()
        assert not null.enabled
        assert resolve_cache(None, enabled=False).enabled is False

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"


class TestCachedParams:
    def test_params_serialization_round_trip(self):
        params = setup(4, label=b"serde")
        data = params.to_bytes()
        back = PublicParams.from_bytes(data)
        assert back.k == params.k and back.g == params.g
        assert back.w == params.w and back.u == params.u
        assert back.to_bytes() == data

    def test_params_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            PublicParams.from_bytes(b"\x06pallas\x04" + b"\x00" * 7)

    def test_cached_setup_round_trip(self, cache):
        params1, hit1 = cached_setup(cache, 4, label=b"t")
        params2, hit2 = cached_setup(cache, 4, label=b"t")
        assert (hit1, hit2) == (False, True)
        assert params1.g == params2.g and params1.w == params2.w
        # Different k or label = different artifact.
        _, hit3 = cached_setup(cache, 5, label=b"t")
        _, hit4 = cached_setup(cache, 4, label=b"other")
        assert not hit3 and not hit4


class TestCachedKeygen:
    def _tiny_cs(self, selector_value=1):
        cs = ConstraintSystem()
        sel = cs.selector("s")
        a = cs.advice_column("a")
        cs.create_gate("square", [sel.cur() * (a.cur() * a.cur() - a.next())])
        return cs

    def test_fingerprint_is_stable_and_shape_sensitive(self, params_k6):
        cs1, cs2 = self._tiny_cs(), self._tiny_cs()
        fp1 = keygen_fingerprint(params_k6, cs1, SCALAR_FIELD, 4)
        assert fp1 == keygen_fingerprint(params_k6, cs2, SCALAR_FIELD, 4)
        cs2.advice_column("extra")
        assert fp1 != keygen_fingerprint(params_k6, cs2, SCALAR_FIELD, 4)
        assert fp1 != keygen_fingerprint(params_k6, cs1, SCALAR_FIELD, 5)

    def test_cached_keygen_matches_fresh(self, cache, params_k6):
        cs = self._tiny_cs()
        fresh = keygen(params_k6, cs, SCALAR_FIELD, 4)
        pk1, hit1 = cached_keygen(cache, params_k6, cs, SCALAR_FIELD, 4)
        pk2, hit2 = cached_keygen(cache, params_k6, cs, SCALAR_FIELD, 4)
        assert (hit1, hit2) == (False, True)
        for pk in (pk1, pk2):
            # keygen is deterministic (fixed-base commitments carry no
            # blinding), so the cached key matches a fresh one exactly.
            assert pk.vk.fixed_commitments == fresh.vk.fixed_commitments
            assert pk.vk.sigma_commitments == fresh.vk.sigma_commitments
            assert pk.vk.system_commitments == fresh.vk.system_commitments
        # The two cache loads are independent objects (finalize_fixed
        # mutates its argument; a shared instance would corrupt later
        # fetches).
        assert pk1 is not pk2

    def test_circuit_change_invalidates(self, cache, params_k6):
        cs = self._tiny_cs()
        cached_keygen(cache, params_k6, cs, SCALAR_FIELD, 4)
        cs.advice_column("extra")
        _, hit = cached_keygen(cache, params_k6, cs, SCALAR_FIELD, 4)
        assert not hit


class TestCachedTpch:
    def test_fingerprint_depends_on_inputs_only(self):
        assert dataset_fingerprint(16, 1) == dataset_fingerprint(16, 1)
        assert dataset_fingerprint(16, 1) != dataset_fingerprint(16, 2)
        assert dataset_fingerprint(16, 1) != dataset_fingerprint(32, 1)
        assert DATAGEN_VERSION >= 1

    def test_generate_cached_round_trip(self, cache):
        db1, hit1 = generate_cached(16, seed=7, cache=cache)
        db2, hit2 = generate_cached(16, seed=7, cache=cache)
        assert (hit1, hit2) == (False, True)
        assert database_digest(db1) == database_digest(db2)
        assert database_digest(db1) == database_digest(generate(16, seed=7))
        # Different scale regenerates.
        _, hit3 = generate_cached(24, seed=7, cache=cache)
        assert not hit3
