"""SQL lexer, parser, planner and plaintext executor."""

import pytest

from repro.db import ColumnDef, Database, TableSchema
from repro.db.types import DATE, DECIMAL, INT, STRING
from repro.sql.ast import Agg, AggFunc, Between, BinOp, BinOpKind, ColRef, Literal
from repro.sql.executor import ExecError, Executor
from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse
from repro.sql.plan import AggregateNode, JoinNode, LimitNode, describe, walk
from repro.sql.planner import PlanError, Planner


@pytest.fixture()
def db():
    db = Database()
    db.create_table(
        TableSchema(
            "customers",
            [
                ColumnDef("c_id", INT),
                ColumnDef("c_name", STRING),
                ColumnDef("c_age", INT),
            ],
            primary_key="c_id",
        ),
        [(1, "alice", 34), (2, "bob", 28), (3, "carol", 41), (4, "dave", 30)],
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                ColumnDef("o_id", INT),
                ColumnDef("o_cid", INT),
                ColumnDef("o_amount", DECIMAL),
                ColumnDef("o_date", DATE),
            ],
            primary_key="o_id",
            foreign_keys={"o_cid": ("customers", "c_id")},
        ),
        [
            (1, 1, 120.50, "1995-01-10"),
            (2, 1, 30.25, "1995-02-11"),
            (3, 2, 99.99, "1995-03-12"),
            (4, 3, 12.00, "1996-01-05"),
            (5, 7, 55.00, "1996-06-06"),
        ],
    )
    return db


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("select a, b from t where x <= 1.5 -- comment\n")
        texts = [t.text for t in tokens]
        assert "select" in texts and "<=" in texts and "1.5" in texts
        assert "comment" not in texts

    def test_string_and_date(self):
        tokens = tokenize("where s = 'BUILDING' and d < date '1995-03-15'")
        strings = [t.text for t in tokens if t.kind.value == "string"]
        assert strings == ["BUILDING", "1995-03-15"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("select 'oops")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("select a ? b")

    def test_ne_variants(self):
        assert [t.text for t in tokenize("a <> b")][1] == "<>"
        assert [t.text for t in tokenize("a != b")][1] == "<>"


class TestParser:
    def test_select_structure(self):
        q = parse("select a, sum(b) as total from t group by a "
                  "having sum(b) > 10 order by total desc limit 5")
        assert len(q.select) == 2
        assert q.select[1].alias == "total"
        assert isinstance(q.having, BinOp)
        assert q.order_by[0].descending
        assert q.limit == 5

    def test_interval_folding(self):
        q = parse("select a from t where d <= date '1998-12-01' - interval '90' day")
        lit = q.where.right
        assert isinstance(lit, Literal) and lit.kind == "date"
        assert lit.value == "1998-09-02"

    def test_interval_year_and_month(self):
        q = parse("select a from t where d < date '1994-01-01' + interval '1' year")
        assert q.where.right.value == "1995-01-01"
        q = parse("select a from t where d < date '1994-11-15' + interval '3' month")
        assert q.where.right.value == "1995-02-15"

    def test_between_and_in(self):
        q = parse("select a from t where x between 1 and 5 and y in (1, 2)")
        assert isinstance(q.where.terms[0], Between)

    def test_case_expression(self):
        q = parse("select sum(case when n = 'X' then v else 0 end) from t")
        agg = q.select[0].expr
        assert isinstance(agg, Agg) and agg.func is AggFunc.SUM

    def test_extract_year(self):
        q = parse("select extract(year from d) as y from t")
        assert q.select[0].alias == "y"

    def test_operator_precedence(self):
        q = parse("select a + b * c from t")
        expr = q.select[0].expr
        assert expr.op is BinOpKind.ADD
        assert expr.right.op is BinOpKind.MUL

    def test_unary_minus(self):
        q = parse("select a from t where x > -5")
        assert q.where.right == Literal(-5, "int")

    def test_like_rejected(self):
        with pytest.raises(ParseError, match="LIKE"):
            parse("select a from t where s like '%x%'")

    def test_count_star_only(self):
        with pytest.raises(ParseError):
            parse("select sum(*) from t")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("select a from t zzz qqq")

    def test_table_aliases(self):
        q = parse("select n1.name from nation n1, nation as n2")
        assert q.tables[0].binding == "n1"
        assert q.tables[1].binding == "n2"


class TestPlanner:
    def test_join_orientation(self, db):
        plan = Planner(db).plan(
            parse("select c_name from orders, customers where o_cid = c_id")
        )
        joins = [n for n in walk(plan) if isinstance(n, JoinNode)]
        assert len(joins) == 1
        assert joins[0].fk_column == "orders.o_cid"
        assert joins[0].pk_column == "customers.c_id"

    def test_unknown_table(self, db):
        with pytest.raises(PlanError):
            Planner(db).plan(parse("select a from nope"))

    def test_unknown_column_fails_at_execution(self, db):
        # Unresolvable plain columns survive planning (they might be
        # HAVING/ORDER BY aliases) and fail at evaluation time.
        plan = Planner(db).plan(parse("select c_missing from customers"))
        with pytest.raises(ExecError):
            Executor(db).execute(plan)

    def test_ambiguous_column(self, db):
        db.create_table(
            TableSchema("c2", [ColumnDef("c_age", INT)]), [(5,)]
        )
        with pytest.raises(PlanError, match="ambiguous"):
            Planner(db).plan(
                parse("select c_age from customers, c2 where c_id = c_age")
            )

    def test_cross_join_rejected(self, db):
        with pytest.raises(PlanError):
            Planner(db).plan(parse("select c_name from customers, orders"))

    def test_describe_renders(self, db):
        plan = Planner(db).plan(
            parse("select o_cid, sum(o_amount) as s from orders group by o_cid")
        )
        text = describe(plan)
        assert "Aggregate" in text and "Scan(orders" in text

    def test_limit_node(self, db):
        plan = Planner(db).plan(parse("select c_name from customers limit 2"))
        assert isinstance(plan, LimitNode) and plan.count == 2

    def test_scale_inference_on_outputs(self, db):
        plan = Planner(db).plan(
            parse("select sum(o_amount) as s, avg(o_amount) as a, "
                  "count(*) as c from orders group by o_cid")
        )
        out = {c.name: c.scale for c in plan.outputs}
        assert out["s"] == 100       # decimal scale carried through SUM
        assert out["a"] == 100 * 100  # AVG adds a factor of 100
        assert out["c"] == 1


class TestExecutor:
    def run(self, db, sql):
        plan = Planner(db).plan(parse(sql))
        return Executor(db).execute(plan), plan

    def test_filter_comparisons(self, db):
        rel, _ = self.run(db, "select c_id from customers where c_age >= 30")
        assert sorted(rel.columns["customers.c_id"]) == [1, 3, 4]

    def test_string_predicate(self, db):
        rel, _ = self.run(db, "select c_id from customers where c_name = 'bob'")
        assert rel.columns["customers.c_id"] == [2]

    def test_unknown_string_literal_matches_nothing(self, db):
        rel, _ = self.run(
            db, "select c_id from customers where c_name = 'nobody'"
        )
        assert rel.num_rows == 0

    def test_join_drops_orphans(self, db):
        rel, _ = self.run(
            db,
            "select c_name, o_amount from orders, customers where o_cid = c_id",
        )
        assert rel.num_rows == 4  # order 5 references a missing customer

    def test_aggregates_fixed_point(self, db):
        rel, _ = self.run(
            db,
            "select o_cid, sum(o_amount) as s, avg(o_amount) as a, "
            "count(*) as n from orders group by o_cid order by o_cid",
        )
        # customer 1: 120.50 + 30.25 = 150.75 -> 15075 at scale 100
        assert rel.columns["s"][0] == 15075
        assert rel.columns["n"][0] == 2
        # avg = floor(15075 * 100 / 2) = 753750 at scale 10000
        assert rel.columns["a"][0] == 753750

    def test_order_and_limit(self, db):
        rel, _ = self.run(
            db,
            "select o_id, o_amount from orders order by o_amount desc limit 2",
        )
        assert rel.columns["orders.o_id"] == [1, 3]

    def test_between_dates(self, db):
        rel, _ = self.run(
            db,
            "select o_id from orders where o_date between "
            "date '1995-01-01' and date '1995-12-31'",
        )
        assert sorted(rel.columns["orders.o_id"]) == [1, 2, 3]

    def test_division_semantics(self, db):
        rel, _ = self.run(
            db,
            "select sum(o_amount) / count(*) as ratio from orders group by o_cid "
            "order by ratio desc limit 1",
        )
        # customer 2: 99.99 / 1 -> scale 100 result 9999
        assert rel.columns["ratio"][0] == 9999

    def test_case_expression(self, db):
        rel, _ = self.run(
            db,
            "select sum(case when o_cid = 1 then o_amount else 0 end) as s "
            "from orders group by o_cid order by s desc limit 1",
        )
        assert rel.columns["s"][0] == 15075

    def test_extract_year(self, db):
        rel, _ = self.run(
            db,
            "select extract(year from o_date) as y, count(*) as n "
            "from orders group by y order by y",
        )
        assert rel.columns["y"] == [1995, 1996]
        assert rel.columns["n"] == [3, 2]

    def test_having(self, db):
        rel, _ = self.run(
            db,
            "select o_cid, count(*) as n from orders group by o_cid "
            "having count(*) > 1",
        )
        assert rel.columns["orders.o_cid"] == [1]

    def test_division_by_zero(self, db):
        with pytest.raises(ExecError):
            self.run(db, "select o_amount / (o_id - o_id) from orders")
