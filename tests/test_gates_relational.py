"""Relational gates: sort (4.2), group-by (4.3), join (4.4),
aggregation/compaction (4.5), set operations, strings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import SCALAR_FIELD as F
from repro.gates import (
    CompactChip,
    DivModChip,
    GroupByChip,
    PkFkJoinChip,
    RangeTable,
    RunningAggChip,
    SortChip,
    SqrtChip,
)
from repro.gates.join import DisjointChip
from repro.gates.setops import DedupChip, SetOpsChip
from repro.gates.strings import CharTable, StringMatchChip, encode_dictionary
from repro.plonkish import Assignment, ConstraintSystem, MockProver

K = 6


def _cs():
    cs = ConstraintSystem()
    table = RangeTable(cs, bits=4)
    return cs, table


class TestSortChip:
    @given(values=st.lists(st.integers(0, 200), min_size=1, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_sorts_any_multiset(self, values):
        cs, table = _cs()
        v = cs.advice_column("v")
        valid = cs.advice_column("valid")
        sort = SortChip(
            cs, "s", [valid.cur() * v.cur(), valid.cur()], 0, table, 2
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for i, value in enumerate(values):
            asg.assign(v, i, value)
            asg.assign(valid, i, 1)
        out = sort.assign(asg, [(value, 1) for value in values])
        assert [r[0] for r in out] == sorted(values)
        MockProver(cs, asg, F).assert_satisfied()

    def test_descending(self):
        cs, table = _cs()
        v = cs.advice_column("v")
        sort = SortChip(cs, "s", [v.cur()], 0, table, 2, descending=True)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        data = [5, 1, 9, 3]
        asg.assign_column(v, data)
        out = sort.assign(asg, [(x,) for x in data])
        assert [r[0] for r in out] == sorted(data, reverse=True)
        MockProver(cs, asg, F).assert_satisfied()

    def test_swapped_output_breaks_shuffle(self):
        cs, table = _cs()
        v = cs.advice_column("v")
        sort = SortChip(cs, "s", [v.cur()], 0, table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign_column(v, [4, 2])
        sort.assign(asg, [(4,), (2,)])
        asg.assign(sort.out[0], 0, 3)  # not a permutation any more
        failures = MockProver(cs, asg, F).verify()
        assert any(f.kind == "shuffle" for f in failures)

    def test_unsorted_output_breaks_order_constraint(self):
        cs, table = _cs()
        v = cs.advice_column("v")
        sort = SortChip(cs, "s", [v.cur()], 0, table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign_column(v, [4, 2])
        sort.assign(asg, [(4,), (2,)])
        # swap the two sorted outputs: still a permutation
        asg.assign(sort.out[0], 0, 4)
        asg.assign(sort.out[0], 1, 2)
        failures = MockProver(cs, asg, F).verify()
        assert failures, "sortedness (Eq. 4 adjacent check) must fail"

    def test_composite_key_preserves_lexicographic_order(self):
        rows = [(3, 9), (3, 1), (1, 5), (2, 2)]
        keys = [SortChip.composite_key(r, 8) for r in rows]
        assert sorted(range(4), key=lambda i: keys[i]) == sorted(
            range(4), key=lambda i: rows[i]
        )
        with pytest.raises(ValueError):
            SortChip.composite_key([300], 8)

    def test_key_index_validation(self):
        cs, table = _cs()
        v = cs.advice_column("v")
        with pytest.raises(ValueError):
            SortChip(cs, "s", [v.cur()], 2, table, 2)


class TestGroupByChip:
    def test_bins_match_python_groupby(self):
        cs, table = _cs()
        key = cs.advice_column("key")
        gb = GroupByChip(cs, "g", key.cur(), key.prev())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        keys = [1, 1, 2, 5, 5, 5, 9]
        asg.assign_column(key, keys)
        bins = gb.assign(asg, keys)
        assert bins == [(0, 1), (2, 2), (3, 5), (6, 6)]
        MockProver(cs, asg, F).assert_satisfied()

    def test_single_group(self):
        cs, table = _cs()
        key = cs.advice_column("key")
        gb = GroupByChip(cs, "g", key.cur(), key.prev())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign_column(key, [7, 7, 7])
        assert gb.assign(asg, [7, 7, 7]) == [(0, 2)]
        MockProver(cs, asg, F).assert_satisfied()

    def test_forged_boundary_caught(self):
        cs, table = _cs()
        key = cs.advice_column("key")
        gb = GroupByChip(cs, "g", key.cur(), key.prev())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        keys = [1, 1, 2]
        asg.assign_column(key, keys)
        gb.assign(asg, keys)
        asg.assign(gb.same, 1, 0)  # claim row 1 starts a new bin
        assert MockProver(cs, asg, F).verify()


class TestRunningAggAndCompact:
    def test_figure5_sums(self):
        cs, table = _cs()
        key = cs.advice_column("key")
        val = cs.advice_column("val")
        gb = GroupByChip(cs, "g", key.cur(), key.prev())
        agg = RunningAggChip(
            cs, "sum", gb.q_first.cur(), gb.q_rest.cur(), gb.same.cur(),
            val.cur(),
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        keys = [1, 1, 2, 3]
        vals = [2, 10, 8, 6]
        asg.assign_column(key, keys)
        asg.assign_column(val, vals)
        bins = gb.assign(asg, keys)
        same = [0, 1, 0, 0]
        running = agg.assign(asg, vals, same)
        assert [running[e] for _, e in bins] == [12, 8, 6]
        MockProver(cs, asg, F).assert_satisfied()

    def test_compact_moves_flagged_rows(self):
        cs, table = _cs()
        flag = cs.advice_column("flag")
        val = cs.advice_column("val")
        q_all = cs.fixed_column("q_all")
        compact = CompactChip(
            cs, "c", flag.cur(), [flag.cur() * val.cur()], q_all.cur()
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for row in range(asg.usable_rows):
            asg.assign(q_all, row, 1)
        data = [(0, 5), (1, 7), (0, 2), (1, 9)]
        for i, (fl, v) in enumerate(data):
            asg.assign(flag, i, fl)
            asg.assign(val, i, v)
        compact.assign(asg, [(7,), (9,)])
        MockProver(cs, asg, F).assert_satisfied()

    def test_compact_wrong_count_caught(self):
        cs, table = _cs()
        flag = cs.advice_column("flag")
        val = cs.advice_column("val")
        q_all = cs.fixed_column("q_all")
        compact = CompactChip(
            cs, "c", flag.cur(), [flag.cur() * val.cur()], q_all.cur()
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for row in range(asg.usable_rows):
            asg.assign(q_all, row, 1)
        asg.assign(flag, 0, 1)
        asg.assign(val, 0, 7)
        compact.assign(asg, [(7,), (7,)])  # claims two rows, only one real
        failures = MockProver(cs, asg, F).verify()
        assert any(f.kind == "shuffle" for f in failures)

    def test_density_prefix_enforced(self):
        cs, table = _cs()
        flag = cs.advice_column("flag")
        q_all = cs.fixed_column("q_all")
        compact = CompactChip(cs, "c", flag.cur(), [], q_all.cur())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for row in range(asg.usable_rows):
            asg.assign(q_all, row, 1)
        # q_out = [0, 1, ...]: a gap -- violates the prefix constraint.
        asg.assign(compact.q_out, 1, 1)
        asg.assign(flag, 0, 1)
        failures = MockProver(cs, asg, F).verify()
        assert any("density" in f.name for f in failures)


class TestDivModSqrt:
    @given(dividend=st.integers(0, 10_000), divisor=st.integers(1, 255))
    @settings(max_examples=20, deadline=None)
    def test_divmod(self, dividend, divisor):
        cs, table = _cs()
        q = cs.selector("q")
        a = cs.advice_column("a")
        b = cs.advice_column("b")
        chip = DivModChip(cs, "d", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, dividend)
        asg.assign(b, 0, divisor)
        quot, rem = chip.assign_row(asg, 0, dividend, divisor)
        assert (quot, rem) == divmod(dividend, divisor)
        MockProver(cs, asg, F).assert_satisfied()

    def test_division_by_zero_rejected(self):
        cs, table = _cs()
        q = cs.selector("q")
        a = cs.advice_column("a")
        b = cs.advice_column("b")
        chip = DivModChip(cs, "d", q.cur(), a.cur(), b.cur(), table, 2)
        asg = Assignment(cs, F, K)
        with pytest.raises(ValueError):
            chip.assign_row(asg, 0, 5, 0)

    @given(x=st.integers(0, 60_000))
    @settings(max_examples=15, deadline=None)
    def test_sqrt(self, x):
        import math

        cs, table = _cs()
        q = cs.selector("q")
        a = cs.advice_column("a")
        chip = SqrtChip(cs, "s", q.cur(), a.cur(), table, 4)
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(q, 0, 1)
        asg.assign(a, 0, x)
        assert chip.assign_row(asg, 0, x) == math.isqrt(x)
        MockProver(cs, asg, F).assert_satisfied()


class TestJoin:
    def _setup(self, t1, t2):
        cs, table = _cs()
        fk = cs.advice_column("fk")
        t1v = cs.advice_column("t1v")
        pk = cs.advice_column("pk")
        val = cs.advice_column("val")
        t2v = cs.advice_column("t2v")
        chip = PkFkJoinChip(
            cs, "j", fk.cur(), t1v.cur(),
            [t2v.cur() * pk.cur(), t2v.cur() * val.cur()], t2v.cur(),
            table, 2,
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for i, key in enumerate(t1):
            asg.assign(fk, i, key)
            asg.assign(t1v, i, 1)
        for i, (key, value) in enumerate(t2):
            asg.assign(pk, i, key)
            asg.assign(val, i, value)
            asg.assign(t2v, i, 1)
        return cs, asg, chip

    def test_figure6_flags(self):
        cs, asg, chip = self._setup(
            [1, 3, 6, 1, 6], [(3, 11), (1, 12), (5, 13), (4, 14), (7, 15)]
        )
        flags = chip.assign(
            asg, [(1, 1), (3, 1), (6, 1), (1, 1), (6, 1)],
            [(3, 11), (1, 12), (5, 13), (4, 14), (7, 15)],
        )
        assert flags == [1, 1, 0, 1, 0]
        MockProver(cs, asg, F).assert_satisfied()

    def test_invented_partner_caught(self):
        cs, asg, chip = self._setup([6], [(3, 11)])
        chip.assign(asg, [(6, 1)], [(3, 11)])
        # Prover fabricates a match for key 6.
        asg.assign(chip.part, 0, 1)
        asg.assign(chip.match[0], 0, 6)
        asg.assign(chip.match[1], 0, 999)
        failures = MockProver(cs, asg, F).verify()
        assert any(f.kind == "lookup" for f in failures)

    def test_hidden_match_caught(self):
        # fk=3 matches, but prover claims non-contributing: the
        # disjointness column cannot contain 3 with both tags.
        cs, asg, chip = self._setup([3], [(3, 11)])
        chip.assign(asg, [(3, 1)], [(3, 11)])
        asg.assign(chip.part, 0, 1)  # honest
        MockProver(cs, asg, F).assert_satisfied()
        asg.assign(chip.part, 0, 0)  # now hide the match
        for col in chip.match:
            asg.assign(col, 0, 0)
        failures = MockProver(cs, asg, F).verify()
        assert failures

    def test_dummy_rows_do_not_join(self):
        cs, asg, chip = self._setup([3, 4], [(3, 11)])
        asg.assign(cs.advice_columns[1], 1, 0)  # t1v row 1 -> dummy
        flags = chip.assign(asg, [(3, 1), (4, 0)], [(3, 11)])
        assert flags == [1, 0]
        MockProver(cs, asg, F).assert_satisfied()


class TestDisjoint:
    def test_disjoint_sets_pass(self):
        cs, table = _cs()
        a = cs.advice_column("a")
        af = cs.advice_column("af")
        b = cs.advice_column("b")
        bf = cs.advice_column("bf")
        chip = DisjointChip(
            cs, "d", a.cur(), af.cur(), b.cur(), bf.cur(), table, 2
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        for i, v in enumerate([1, 5, 5]):
            asg.assign(a, i, v)
            asg.assign(af, i, 1)
        for i, v in enumerate([2, 9]):
            asg.assign(b, i, v)
            asg.assign(bf, i, 1)
        chip.assign(asg, [1, 5, 5], [2, 9])
        MockProver(cs, asg, F).assert_satisfied()

    def test_overlap_unprovable(self):
        cs, table = _cs()
        a = cs.advice_column("a")
        af = cs.advice_column("af")
        b = cs.advice_column("b")
        bf = cs.advice_column("bf")
        chip = DisjointChip(
            cs, "d", a.cur(), af.cur(), b.cur(), bf.cur(), table, 2
        )
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign(a, 0, 5)
        asg.assign(af, 0, 1)
        asg.assign(b, 0, 5)
        asg.assign(bf, 0, 1)
        chip.assign(asg, [5], [5])  # overlapping!
        failures = MockProver(cs, asg, F).verify()
        assert failures, "equal values with different tags must violate"


class TestSetOps:
    def test_multiset_equality(self):
        cs, table = _cs()
        ops = SetOpsChip(cs, table, 2)
        a = cs.advice_column("a")
        b = cs.advice_column("b")
        ops.assert_equal([a.cur()], [b.cur()])
        asg = Assignment(cs, F, K)
        table.assign(asg)
        asg.assign_column(a, [3, 1, 2])
        asg.assign_column(b, [1, 2, 3])
        MockProver(cs, asg, F).assert_satisfied()
        asg.assign(b, 0, 9)
        assert MockProver(cs, asg, F).verify()

    def test_dedup_flags(self):
        cs, table = _cs()
        q_first = cs.fixed_column("qf")
        q_rest = cs.fixed_column("qr")
        key = cs.advice_column("key")
        chip = DedupChip(cs, "dd", q_first.cur(), q_rest.cur(),
                         key.cur(), key.prev())
        asg = Assignment(cs, F, K)
        table.assign(asg)
        keys = [1, 1, 2, 2, 2, 7]
        asg.assign_column(key, keys)
        asg.assign(q_first, 0, 1)
        for i in range(1, len(keys)):
            asg.assign(q_rest, i, 1)
        flags = chip.assign(asg, keys)
        assert flags == [1, 0, 1, 0, 0, 1]
        MockProver(cs, asg, F).assert_satisfied()


class TestStrings:
    def test_substring_match(self):
        cs, table = _cs()
        chars = CharTable(cs)
        q = cs.selector("q")
        code = cs.advice_column("code")
        chip = StringMatchChip(cs, "m", q.cur(), code.cur(), "een", chars)
        dictionary = {1: "green", 2: "blue"}
        asg = Assignment(cs, F, K)
        table.assign(asg)
        chars.assign(asg, dictionary)
        asg.assign(q, 0, 1)
        asg.assign(code, 0, 1)
        pos = chip.assign_row(asg, 0, 1, "green")
        assert pos == 3  # 'een' at 1-based position 3
        MockProver(cs, asg, F).assert_satisfied()

    def test_missing_pattern_rejected(self):
        cs, table = _cs()
        chars = CharTable(cs)
        q = cs.selector("q")
        code = cs.advice_column("code")
        chip = StringMatchChip(cs, "m", q.cur(), code.cur(), "xyz", chars)
        asg = Assignment(cs, F, K)
        with pytest.raises(ValueError):
            chip.assign_row(asg, 0, 1, "green")

    def test_dictionary_order(self):
        codes = encode_dictionary(["pear", "apple", "fig", "apple"])
        assert codes == {"apple": 1, "fig": 2, "pear": 3}
