"""The parallel backend: work splitting, the pool, and bit-identical
serial/parallel equality for the crypto hot spots (MSM, FFT, batch
inversion, generator derivation, batched commitments).

The worker pool forks real processes, so the equality tests here are
the guarantee the rest of the stack leans on: a proof computed with
``workers=N`` is byte-for-byte the proof computed serially.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parallel
from repro.algebra import SCALAR_FIELD
from repro.algebra.domain import EvaluationDomain
from repro.commit.ipa import commit_polynomial, commit_polynomials
from repro.commit.params import setup
from repro.ecc import PALLAS, msm
from repro.ecc.msm import PARALLEL_THRESHOLD


def _mul(a, b):
    return a * b


@pytest.fixture(autouse=True)
def _serial_after():
    """Every test leaves the global backend serial again."""
    yield
    parallel.configure(0)
    parallel.shutdown()


class TestWorkSplitting:
    @given(n=st.integers(0, 300), parts=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_chunk_bounds_partition_the_range(self, n, parts):
        bounds = parallel.chunk_bounds(n, parts)
        # Contiguous, ordered, non-empty (except the n=0 single chunk),
        # and covering exactly range(n).
        flat = [i for lo, hi in bounds for i in range(lo, hi)]
        assert flat == list(range(n))
        assert len(bounds) <= parts
        sizes = [hi - lo for lo, hi in bounds]
        if n:
            assert all(sizes)
            assert max(sizes) - min(sizes) <= 1  # balanced

    def test_chunked_round_trips(self):
        items = list(range(17))
        chunks = parallel.chunked(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_pmap_serial_fallback_preserves_order(self):
        parallel.configure(0)
        assert parallel.pmap(_mul, [(i, i) for i in range(6)]) == [
            i * i for i in range(6)
        ]
        assert not parallel.is_parallel()

    def test_pmap_with_workers_preserves_order(self):
        parallel.configure(2)
        assert parallel.is_parallel()
        tasks = [(i, 3) for i in range(20)]
        assert parallel.pmap(_mul, tasks) == [i * 3 for i in range(20)]

    def test_parallelism_context_restores(self):
        parallel.configure(0)
        with parallel.parallelism(3):
            assert parallel.workers() == 3
        assert parallel.workers() == 0


class TestCryptoEquality:
    """Parallel results must be bit-identical to serial ones."""

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=3, deadline=None)
    def test_msm_parallel_matches_serial(self, seed):
        rng = random.Random(seed)
        n = PARALLEL_THRESHOLD + 16
        points = [PALLAS.generator * rng.randrange(1, 2**64) for _ in range(n)]
        scalars = [rng.randrange(SCALAR_FIELD.p) for _ in range(n)]
        serial = msm(points, scalars)
        with parallel.parallelism(2):
            par = msm(points, scalars)
        assert serial == par
        assert serial.to_affine() == par.to_affine()

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=3, deadline=None)
    def test_fft_parallel_matches_serial(self, seed):
        rng = random.Random(seed)
        domain = EvaluationDomain(SCALAR_FIELD, 9)  # 512 >= PARALLEL_MIN_SIZE
        vectors = [
            [rng.randrange(SCALAR_FIELD.p) for _ in range(domain.size)]
            for _ in range(3)
        ]
        serial_fft = [domain.fft(list(v)) for v in vectors]
        serial_ifft = [domain.ifft(list(v)) for v in vectors]
        shift = 5
        serial_coset = [domain.coset_fft(list(v), shift) for v in vectors]
        with parallel.parallelism(2):
            assert domain.fft_many([list(v) for v in vectors]) == serial_fft
            assert domain.ifft_many([list(v) for v in vectors]) == serial_ifft
            assert (
                domain.coset_fft_many([list(v) for v in vectors], shift)
                == serial_coset
            )

    def test_fft_round_trip_under_workers(self):
        rng = random.Random(7)
        domain = EvaluationDomain(SCALAR_FIELD, 9)
        vectors = [
            [rng.randrange(SCALAR_FIELD.p) for _ in range(domain.size)]
            for _ in range(2)
        ]
        with parallel.parallelism(2):
            back = domain.fft_many(domain.ifft_many([list(v) for v in vectors]))
        assert back == vectors

    def test_batch_inv_parallel_matches_serial(self):
        from repro.algebra.field import _PARALLEL_INV_MIN

        rng = random.Random(11)
        values = [
            rng.randrange(1, SCALAR_FIELD.p) for _ in range(_PARALLEL_INV_MIN)
        ]
        serial = SCALAR_FIELD.batch_inv(values)
        with parallel.parallelism(2):
            assert SCALAR_FIELD.batch_inv(values) == serial
        assert all(
            SCALAR_FIELD.mul(v, i) == 1 for v, i in zip(values[:32], serial[:32])
        )

    def test_setup_parallel_matches_serial(self):
        serial = setup(7, label=b"par-test")
        with parallel.parallelism(2):
            par = setup(7, label=b"par-test")
        assert serial.g == par.g
        assert serial.w == par.w and serial.u == par.u

    def test_batched_commitments_match_individual(self, params_k6):
        rng = random.Random(3)
        items = [
            (
                [rng.randrange(SCALAR_FIELD.p) for _ in range(params_k6.n)],
                rng.randrange(SCALAR_FIELD.p),
            )
            for _ in range(4)
        ]
        individual = [
            commit_polynomial(params_k6, coeffs, blind)
            for coeffs, blind in items
        ]
        assert commit_polynomials(params_k6, items) == individual
        with parallel.parallelism(2):
            assert commit_polynomials(params_k6, items) == individual


class TestPoolSafety:
    def test_nested_pool_degrades_to_serial(self):
        """A pmap running inside a worker must not touch the inherited
        pool (the parent-PID guard)."""
        parallel.configure(2)
        results = parallel.pmap(_nested_pmap_probe, [(2,), (3,)])
        assert results == [4, 9]

    def test_env_workers_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert parallel._env_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "garbage")
        assert parallel._env_workers() == 0


def _nested_pmap_probe(x):
    # Runs inside a worker: the module-level pool global is inherited
    # from the parent, but its parent-PID guard makes it unusable, so
    # this inner pmap must run inline instead of deadlocking.
    assert not parallel.is_parallel()
    return parallel.pmap(_mul, [(x, x), (x, 1)])[0]
